"""Regularity classification of runtime profiles.

The empirical study's first mining step (§III-A) marked each profile
"contains regularity" or "contains no regularity" before drilling into
the source.  A profile is *regular* when it exhibits recurring access
patterns: either the same pattern type repeats, or a single long pattern
dominates the profile.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events.profile import RuntimeProfile
from .detector import DetectorConfig, PatternDetector
from .model import PatternAnalysis, PatternType


@dataclass(frozen=True, slots=True)
class RegularityConfig:
    """Thresholds for calling a profile regular.

    ``repeat_threshold``
        A pattern type occurring at least this many times counts as a
        recurring regularity.
    ``dominance_fraction``
        Alternatively, one classified pattern covering at least this
        share of the profile's events counts (a single long scan or
        insertion phase is a regularity even if it happens once).
    ``min_events``
        Profiles shorter than this are never regular -- too little
        signal to call anything recurring.
    """

    repeat_threshold: int = 3
    dominance_fraction: float = 0.3
    min_events: int = 10


@dataclass(frozen=True, slots=True)
class RegularityVerdict:
    """Outcome of the regularity check for one profile."""

    profile: RuntimeProfile
    analysis: PatternAnalysis
    is_regular: bool
    recurring_types: tuple[PatternType, ...]
    dominant_type: PatternType | None

    def describe(self) -> str:
        if not self.is_regular:
            return "contains no regularity"
        parts = [t.value for t in self.recurring_types]
        if self.dominant_type and self.dominant_type not in self.recurring_types:
            parts.append(f"dominant {self.dominant_type.value}")
        return "contains regularity: " + ", ".join(parts) if parts else "contains regularity"


class RegularityClassifier:
    """Applies :class:`RegularityConfig` on top of pattern detection."""

    def __init__(
        self,
        config: RegularityConfig | None = None,
        detector: PatternDetector | None = None,
    ) -> None:
        self.config = config if config is not None else RegularityConfig()
        self.detector = detector if detector is not None else PatternDetector(
            DetectorConfig()
        )

    def classify(self, profile: RuntimeProfile) -> RegularityVerdict:
        analysis = self.detector.detect(profile)
        cfg = self.config

        recurring: list[PatternType] = []
        dominant: PatternType | None = None

        if len(profile) >= cfg.min_events:
            histogram = analysis.histogram()
            recurring = [
                t
                for t, n in sorted(histogram.items(), key=lambda kv: -kv[1])
                if t is not PatternType.UNCLASSIFIED and n >= cfg.repeat_threshold
            ]
            total = len(profile)
            best_share = 0.0
            for p in analysis.patterns:
                if p.pattern_type is PatternType.UNCLASSIFIED:
                    continue
                share = p.length / total
                if share > best_share:
                    best_share = share
                    if share >= cfg.dominance_fraction:
                        dominant = p.pattern_type

        return RegularityVerdict(
            profile=profile,
            analysis=analysis,
            is_regular=bool(recurring) or dominant is not None,
            recurring_types=tuple(recurring),
            dominant_type=dominant,
        )

    def count_regular(self, profiles: list[RuntimeProfile]) -> int:
        """Number of profiles marked regular (Table II's per-program
        'Recurring Regularities' column counts these locations)."""
        return sum(1 for p in profiles if self.classify(p).is_regular)
