"""Profile statistics: quantitative summaries of access behaviour.

The mining workflow needs more than pattern lists: end affinity (how
much activity hits the front/back), stride distribution (sequential vs
jumping access), phase structure, and the operation mix.  These metrics
feed the explanation engine (`repro.usecases.explain`) and give tests a
vocabulary for asserting profile *shapes*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..events.profile import NO_POSITION, RuntimeProfile
from ..events.types import AccessKind, OperationKind


@dataclass(frozen=True, slots=True)
class EndAffinity:
    """Share of positional events touching the structure's ends."""

    front: float
    back: float

    @property
    def ends_total(self) -> float:
        # Front and back can overlap on size-1 structures; clamp.
        return min(self.front + self.back, 1.0)


@dataclass(frozen=True, slots=True)
class StrideStats:
    """Distribution of |Δposition| between consecutive positional events.

    ``sequential_share`` (|Δ| ≤ 1) is what separates scan-heavy profiles
    from jump-heavy ones (hash probing, tree walking), and is the
    quantitative backbone of "contains regularity".
    """

    sequential_share: float
    mean_stride: float
    max_stride: int


@dataclass(frozen=True, slots=True)
class ProfileStats:
    """Full quantitative summary of one runtime profile."""

    events: int
    read_share: float
    write_share: float
    op_mix: dict[OperationKind, float]
    end_affinity: EndAffinity
    stride: StrideStats
    distinct_positions: int
    max_size: int
    growth: int  # final size − initial size

    def describe(self) -> str:
        mix = ", ".join(
            f"{op.name.lower()} {share:.0%}"
            for op, share in sorted(self.op_mix.items(), key=lambda kv: -kv[1])[:4]
        )
        return (
            f"{self.events} events ({mix}); reads {self.read_share:.0%}; "
            f"ends {self.end_affinity.ends_total:.0%} "
            f"(front {self.end_affinity.front:.0%} / back {self.end_affinity.back:.0%}); "
            f"sequential strides {self.stride.sequential_share:.0%}"
        )


def compute_stats(profile: RuntimeProfile) -> ProfileStats:
    """All summary statistics in one pass over the vectorized views."""
    n = len(profile)
    if n == 0:
        return ProfileStats(
            events=0,
            read_share=0.0,
            write_share=0.0,
            op_mix={},
            end_affinity=EndAffinity(front=0.0, back=0.0),
            stride=StrideStats(0.0, 0.0, 0),
            distinct_positions=0,
            max_size=0,
            growth=0,
        )

    kinds = profile.kinds
    read_share = float(np.count_nonzero(kinds == AccessKind.READ)) / n

    op_values, op_counts = np.unique(profile.ops, return_counts=True)
    op_mix = {
        OperationKind(int(v)): int(c) / n for v, c in zip(op_values, op_counts)
    }

    positions = profile.positions
    sizes = profile.sizes
    has_pos = positions != NO_POSITION
    positional = int(np.count_nonzero(has_pos))
    if positional:
        front = int(np.count_nonzero(has_pos & (positions == 0))) / positional
        back = int(
            np.count_nonzero(has_pos & (positions >= sizes - 1))
        ) / positional
        pos_only = positions[has_pos]
        distinct = int(np.unique(pos_only).size)
        if pos_only.size >= 2:
            strides = np.abs(np.diff(pos_only))
            sequential_share = float(np.count_nonzero(strides <= 1)) / strides.size
            mean_stride = float(strides.mean())
            max_stride = int(strides.max())
        else:
            sequential_share, mean_stride, max_stride = 1.0, 0.0, 0
    else:
        front = back = 0.0
        distinct = 0
        sequential_share, mean_stride, max_stride = 0.0, 0.0, 0

    return ProfileStats(
        events=n,
        read_share=read_share,
        write_share=1.0 - read_share,
        op_mix=op_mix,
        end_affinity=EndAffinity(front=front, back=back),
        stride=StrideStats(
            sequential_share=sequential_share,
            mean_stride=mean_stride,
            max_stride=max_stride,
        ),
        distinct_positions=distinct,
        max_size=profile.max_size,
        growth=int(profile.sizes[-1]) - int(profile.sizes[0]),
    )
