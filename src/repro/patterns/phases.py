"""Phase segmentation: splitting an event stream into consistent runs.

DSspy "executes the phase detection on the access profiles" after the
instrumented program terminates (§IV).  A *run* is a maximal sequence of
consecutive same-thread events of one operation category whose target
positions move consistently: adjacent steps (|Δpos| ≤ ``max_gap``) in a
single direction.  Runs are the raw material the
:mod:`~repro.patterns.detector` classifies into the eight pattern types.

Whole-structure events (``Clear``, ``Sort``, ``Reverse``, ``Copy``,
``Resize``) terminate the current run of their thread; ``Init`` and
``ForAll`` markers are transparent (a ``ForAll`` is immediately followed
by the per-element reads that *are* the pattern); ``Search`` events are
opaque single operations counted separately by the use-case rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..events.profile import RuntimeProfile
from ..events.types import OperationKind

#: Operation categories that can form positional runs.
_RUN_OPS = {
    OperationKind.READ: "read",
    OperationKind.WRITE: "write",
    OperationKind.INSERT: "insert",
    OperationKind.DELETE: "delete",
}

#: Operations that are transparent to segmentation.
_TRANSPARENT = {OperationKind.FORALL, OperationKind.INIT}

#: Operations that end the current run of their thread.
_BREAKERS = {
    OperationKind.CLEAR,
    OperationKind.SORT,
    OperationKind.REVERSE,
    OperationKind.COPY,
    OperationKind.RESIZE,
    OperationKind.SEARCH,
}


@dataclass(slots=True)
class Run:
    """A maximal consistent event run, before classification."""

    category: str
    thread_id: int
    start: int
    stop: int
    length: int
    direction: int  # +1 forward, -1 backward, 0 stationary
    first_position: int
    last_position: int
    positions: set[int] = field(default_factory=set)
    size_at_end: int = 0
    all_front: bool = True  # every position == 0
    all_back: bool = True  # every event targeted the (then-)back

    @property
    def distinct_positions(self) -> int:
        return len(self.positions)


class _RunBuilder:
    """Per-thread incremental run construction."""

    __slots__ = ("run", "max_gap")

    def __init__(self, max_gap: int) -> None:
        self.run: Run | None = None
        self.max_gap = max_gap

    def feed(
        self,
        index: int,
        category: str,
        position: int,
        size: int,
        targets_back: bool,
        thread_id: int,
    ) -> Run | None:
        """Add one event; returns a finished run when a break occurs."""
        finished: Run | None = None
        run = self.run
        if run is not None:
            delta = position - run.last_position
            compatible = (
                category == run.category
                and abs(delta) <= self.max_gap
                and (
                    delta == 0
                    or run.direction == 0
                    or (delta > 0) == (run.direction > 0)
                )
            )
            if not compatible:
                finished = run
                run = None
            else:
                if delta != 0 and run.direction == 0:
                    run.direction = 1 if delta > 0 else -1
        if run is None:
            run = Run(
                category=category,
                thread_id=thread_id,
                start=index,
                stop=index + 1,
                length=1,
                direction=0,
                first_position=position,
                last_position=position,
            )
            self.run = run
        else:
            run.length += 1
            run.stop = index + 1
            run.last_position = position
        run.positions.add(position)
        run.size_at_end = size
        run.all_front = run.all_front and position == 0
        run.all_back = run.all_back and targets_back
        return finished

    def flush(self) -> Run | None:
        run, self.run = self.run, None
        return run


def segment(profile: RuntimeProfile, max_gap: int = 1) -> list[Run]:
    """Split ``profile`` into maximal consistent runs.

    Runs are returned in order of completion; each covers events of a
    single thread.  Single-event runs are included -- the detector
    filters by minimum length.
    """
    builders: dict[int, _RunBuilder] = {}
    out: list[Run] = []

    for index, event in enumerate(profile):
        op = event.op
        if op in _TRANSPARENT:
            continue
        builder = builders.get(event.thread_id)
        if builder is None:
            builder = builders[event.thread_id] = _RunBuilder(max_gap)
        if op in _BREAKERS or event.position is None:
            finished = builder.flush()
            if finished is not None:
                out.append(finished)
            continue
        category = _RUN_OPS.get(op)
        if category is None:
            continue
        finished = builder.feed(
            index,
            category,
            event.position,
            event.size,
            event.targets_back,
            event.thread_id,
        )
        if finished is not None:
            out.append(finished)

    for builder in builders.values():
        finished = builder.flush()
        if finished is not None:
            out.append(finished)

    out.sort(key=lambda r: r.start)
    return out
