"""Profile comparison: did a code change remove the smell?

The DSspy workflow ends with the engineer transforming code; this
module closes the loop by diffing two captures of the same program —
before and after a migration — at the pattern and use-case level.
``compare_profiles`` answers "what changed in this structure's
behaviour", ``compare_reports`` answers "which diagnoses disappeared,
persisted, or appeared".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events.profile import RuntimeProfile
from .detector import PatternDetector
from .model import PatternType
from .statistics import ProfileStats, compute_stats


@dataclass(frozen=True)
class ProfileDiff:
    """Pattern-level and statistics-level delta between two profiles."""

    before: RuntimeProfile
    after: RuntimeProfile
    pattern_delta: dict[PatternType, int]
    stats_before: ProfileStats
    stats_after: ProfileStats

    @property
    def event_delta(self) -> int:
        return len(self.after) - len(self.before)

    @property
    def read_share_delta(self) -> float:
        return self.stats_after.read_share - self.stats_before.read_share

    def removed_types(self) -> list[PatternType]:
        return [t for t, d in self.pattern_delta.items() if d < 0]

    def added_types(self) -> list[PatternType]:
        return [t for t, d in self.pattern_delta.items() if d > 0]

    def describe(self) -> str:
        lines = [
            f"events {len(self.before)} -> {len(self.after)} "
            f"({self.event_delta:+d})"
        ]
        for pattern_type, delta in sorted(
            self.pattern_delta.items(), key=lambda kv: kv[0].value
        ):
            if delta:
                lines.append(f"  {pattern_type.value}: {delta:+d} patterns")
        if not any(self.pattern_delta.values()):
            lines.append("  (pattern mix unchanged)")
        return "\n".join(lines)


def compare_profiles(
    before: RuntimeProfile,
    after: RuntimeProfile,
    detector: PatternDetector | None = None,
) -> ProfileDiff:
    """Diff two profiles of (conceptually) the same structure."""
    detector = detector if detector is not None else PatternDetector()
    hist_before = detector.detect(before).histogram()
    hist_after = detector.detect(after).histogram()
    delta = {
        t: hist_after.get(t, 0) - hist_before.get(t, 0)
        for t in set(hist_before) | set(hist_after)
    }
    return ProfileDiff(
        before=before,
        after=after,
        pattern_delta=delta,
        stats_before=compute_stats(before),
        stats_after=compute_stats(after),
    )


@dataclass(frozen=True)
class ReportDiff:
    """Use-case-level delta between two capture sessions.

    Diagnoses are keyed by (label-or-instance, use-case kind), so the
    comparison survives instance-id renumbering across runs as long as
    structures are labelled (or created in the same order).
    """

    resolved: tuple[tuple[str, str], ...]
    persisting: tuple[tuple[str, str], ...]
    introduced: tuple[tuple[str, str], ...]

    @property
    def fully_resolved(self) -> bool:
        return not self.persisting and not self.introduced

    def describe(self) -> str:
        lines = []
        for title, entries in (
            ("resolved", self.resolved),
            ("persisting", self.persisting),
            ("introduced", self.introduced),
        ):
            lines.append(f"{title}: {len(entries)}")
            for label, kind in entries:
                lines.append(f"  {kind} on {label}")
        return "\n".join(lines)


def _keys(report) -> set[tuple[str, str]]:
    out = set()
    for use_case in report.use_cases:
        label = use_case.profile.label or f"#{use_case.instance_id}"
        out.add((label, use_case.kind.label))
    return out


def compare_reports(before, after) -> ReportDiff:
    """Diff two :class:`~repro.usecases.engine.UseCaseReport` objects."""
    keys_before = _keys(before)
    keys_after = _keys(after)
    return ReportDiff(
        resolved=tuple(sorted(keys_before - keys_after)),
        persisting=tuple(sorted(keys_before & keys_after)),
        introduced=tuple(sorted(keys_after - keys_before)),
    )
