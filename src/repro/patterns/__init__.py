"""Access-pattern detection (§III/§IV of the paper).

Segments runtime profiles into consistent runs, classifies them into the
eight primitive pattern types, and judges whether a profile "contains
regularity".
"""

from .compare import ProfileDiff, ReportDiff, compare_profiles, compare_reports
from .detector import DetectorConfig, PatternDetector, classify_run, detect
from .model import AccessPattern, PatternAnalysis, PatternType
from .phases import Run, segment
from .regularity import RegularityClassifier, RegularityConfig, RegularityVerdict
from .statistics import (
    EndAffinity,
    ProfileStats,
    StrideStats,
    compute_stats,
)

__all__ = [
    "AccessPattern",
    "ProfileDiff",
    "ReportDiff",
    "compare_profiles",
    "compare_reports",
    "EndAffinity",
    "ProfileStats",
    "StrideStats",
    "compute_stats",
    "DetectorConfig",
    "PatternAnalysis",
    "PatternDetector",
    "PatternType",
    "RegularityClassifier",
    "RegularityConfig",
    "RegularityVerdict",
    "Run",
    "classify_run",
    "detect",
    "segment",
]
