"""Classification of runs into the eight access-pattern types.

``detect(profile)`` = segmentation (:mod:`~repro.patterns.phases`) +
classification (this module) and yields a
:class:`~repro.patterns.model.PatternAnalysis` ready for the use-case
engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events.profile import RuntimeProfile
from .model import AccessPattern, PatternAnalysis, PatternType
from .phases import Run, segment


@dataclass(frozen=True, slots=True)
class DetectorConfig:
    """Tunables of the pattern detector.

    Attributes
    ----------
    max_gap:
        Maximum |Δposition| between consecutive events of a run; 1
        means strictly adjacent elements as in the paper's pattern
        definitions.
    min_run_length:
        Runs shorter than this are discarded ("adjacent element*s*" --
        a pattern needs at least two accesses).
    keep_unclassified:
        Whether runs matching none of the eight types survive as
        ``UNCLASSIFIED`` patterns (useful for exploration; the use-case
        rules ignore them either way).
    """

    max_gap: int = 1
    min_run_length: int = 2
    keep_unclassified: bool = True


def classify_run(run: Run) -> PatternType:
    """Map a consistent run onto one of the eight pattern types.

    Front/back checks take precedence for insert/delete runs (an
    insert-front run has stationary positions, an append run ascends);
    read/write runs classify purely by direction.  Stationary read or
    write runs (re-touching one index) match none of the paper's types.
    """
    if run.category == "insert":
        if run.all_front:
            return PatternType.INSERT_FRONT
        if run.direction >= 0 and (run.all_back or run.direction > 0):
            return PatternType.INSERT_BACK
        return PatternType.UNCLASSIFIED
    if run.category == "delete":
        if run.all_front:
            return PatternType.DELETE_FRONT
        if run.direction <= 0 and (run.all_back or run.direction < 0):
            return PatternType.DELETE_BACK
        return PatternType.UNCLASSIFIED
    if run.category == "read":
        if run.direction > 0:
            return PatternType.READ_FORWARD
        if run.direction < 0:
            return PatternType.READ_BACKWARD
        return PatternType.UNCLASSIFIED
    if run.category == "write":
        if run.direction > 0:
            return PatternType.WRITE_FORWARD
        if run.direction < 0:
            return PatternType.WRITE_BACKWARD
        return PatternType.UNCLASSIFIED
    return PatternType.UNCLASSIFIED


class PatternDetector:
    """Stateless pattern detector configured once, applied to many
    profiles (DSspy "loads the patterns ... and maps them onto each
    runtime profile", §IV)."""

    def __init__(self, config: DetectorConfig | None = None) -> None:
        self.config = config if config is not None else DetectorConfig()

    def detect(self, profile: RuntimeProfile) -> PatternAnalysis:
        """Segment and classify one profile."""
        cfg = self.config
        patterns: list[AccessPattern] = []
        for run in segment(profile, max_gap=cfg.max_gap):
            if run.length < cfg.min_run_length:
                continue
            pattern_type = classify_run(run)
            if pattern_type is PatternType.UNCLASSIFIED and not cfg.keep_unclassified:
                continue
            patterns.append(
                AccessPattern(
                    pattern_type=pattern_type,
                    start=run.start,
                    stop=run.stop,
                    length=run.length,
                    first_position=run.first_position,
                    last_position=run.last_position,
                    distinct_positions=run.distinct_positions,
                    size_at_end=run.size_at_end,
                    thread_id=run.thread_id,
                )
            )
        return PatternAnalysis(profile=profile, patterns=tuple(patterns))

    def detect_all(
        self, profiles: list[RuntimeProfile]
    ) -> list[PatternAnalysis]:
        """Analyze a batch of profiles (one DSspy capture session)."""
        return [self.detect(p) for p in profiles]


def detect(
    profile: RuntimeProfile, config: DetectorConfig | None = None
) -> PatternAnalysis:
    """Convenience one-shot detection with an optional config."""
    return PatternDetector(config).detect(profile)
