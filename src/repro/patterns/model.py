"""Pattern-detection data model.

The paper derives eight primitive access-pattern types from 81 manually
inspected regularities (§III-A):

========================  ====================================================
``Read-Forward``          read adjacent elements, positions increase in time
``Write-Forward``         write adjacent elements, positions increase in time
``Read-Backward``         read adjacent elements, positions decrease in time
``Write-Backward``        write adjacent elements, positions decrease in time
``Insert-Front``          adjacent inserts, always at the front
``Insert-Back``           adjacent inserts, always from the end
``Delete-Front``          adjacent deletes, always at the front
``Delete-Back``           adjacent deletes, always from the end
========================  ====================================================

A detected pattern instance is an :class:`AccessPattern`: a maximal run
of consecutive events of one category whose positions move consistently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..events.profile import RuntimeProfile


class PatternType(enum.Enum):
    """The eight primitive access-pattern types, plus a bucket for runs
    that form a consistent phase without matching any of the eight
    (e.g. ascending inserts into the middle of a list)."""

    READ_FORWARD = "Read-Forward"
    WRITE_FORWARD = "Write-Forward"
    READ_BACKWARD = "Read-Backward"
    WRITE_BACKWARD = "Write-Backward"
    INSERT_FRONT = "Insert-Front"
    INSERT_BACK = "Insert-Back"
    DELETE_FRONT = "Delete-Front"
    DELETE_BACK = "Delete-Back"
    UNCLASSIFIED = "Unclassified"

    @property
    def is_read(self) -> bool:
        return self in (PatternType.READ_FORWARD, PatternType.READ_BACKWARD)

    @property
    def is_write(self) -> bool:
        return self in (PatternType.WRITE_FORWARD, PatternType.WRITE_BACKWARD)

    @property
    def is_insert(self) -> bool:
        return self in (PatternType.INSERT_FRONT, PatternType.INSERT_BACK)

    @property
    def is_delete(self) -> bool:
        return self in (PatternType.DELETE_FRONT, PatternType.DELETE_BACK)

    @property
    def touches_front(self) -> bool:
        return self in (PatternType.INSERT_FRONT, PatternType.DELETE_FRONT)

    @property
    def touches_back(self) -> bool:
        return self in (PatternType.INSERT_BACK, PatternType.DELETE_BACK)


@dataclass(frozen=True, slots=True)
class AccessPattern:
    """One detected pattern instance (a maximal consistent run).

    Attributes
    ----------
    pattern_type:
        Which of the eight primitive types (or ``UNCLASSIFIED``).
    start, stop:
        Bounding event-index range ``[start, stop)`` within the profile.
        In multithreaded profiles the range may interleave with events
        of other threads; ``length`` counts only the run's own events.
    length:
        Number of events belonging to the run.
    first_position, last_position:
        Target positions of the first and last event of the run.
    distinct_positions:
        How many distinct indices the run touched.
    size_at_end:
        Structure size when the run ended; together with
        ``distinct_positions`` this gives the run's *coverage*, which
        the Frequent-Long-Read rule thresholds at 50%.
    thread_id:
        The thread whose consecutive accesses form this run.
    """

    pattern_type: PatternType
    start: int
    stop: int
    length: int
    first_position: int
    last_position: int
    distinct_positions: int
    size_at_end: int
    thread_id: int

    @property
    def coverage(self) -> float:
        """Fraction of the structure the run touched (0 when empty)."""
        if self.size_at_end <= 0:
            return 0.0
        return min(self.distinct_positions / self.size_at_end, 1.0)

    @property
    def span(self) -> int:
        """Width of the position interval the run traversed.

        For a strict-adjacency directional run (``max_gap=1``) this
        equals ``distinct_positions``; under a decimated capture with a
        widened ``max_gap`` it keeps estimating the *original* extent
        of the run, because sampling drops events but not distance."""
        return abs(self.last_position - self.first_position) + 1

    @property
    def span_coverage(self) -> float:
        """Fraction of the structure the run *traversed* (by span).

        Identical to :attr:`coverage` for strict-adjacency directional
        runs; the sampling-robust estimator for decimated captures,
        where ``distinct_positions`` undercounts by the stride."""
        if self.size_at_end <= 0:
            return 0.0
        return min(self.span / self.size_at_end, 1.0)

    def describe(self) -> str:
        return (
            f"{self.pattern_type.value} events[{self.start}:{self.stop}] "
            f"len={self.length} pos {self.first_position}->{self.last_position} "
            f"coverage={self.coverage:.0%}"
        )


@dataclass(frozen=True, slots=True)
class PatternAnalysis:
    """Everything the use-case engine needs to know about one profile."""

    profile: RuntimeProfile
    patterns: tuple[AccessPattern, ...]

    def by_type(self, pattern_type: PatternType) -> list[AccessPattern]:
        return [p for p in self.patterns if p.pattern_type is pattern_type]

    def count(self, pattern_type: PatternType) -> int:
        return sum(1 for p in self.patterns if p.pattern_type is pattern_type)

    @property
    def total_events(self) -> int:
        return len(self.profile)

    def events_in(self, predicate) -> int:
        """Total events across patterns selected by ``predicate``."""
        return sum(p.length for p in self.patterns if predicate(p))

    def fraction_in(self, predicate) -> float:
        """Share of the profile's events inside matching patterns.

        The paper expresses thresholds like "insertion phases >30% of
        runtime"; with logical time, runtime share is event share.
        """
        if not self.profile:
            return 0.0
        return self.events_in(predicate) / len(self.profile)

    def histogram(self) -> dict[PatternType, int]:
        out: dict[PatternType, int] = {}
        for p in self.patterns:
            out[p.pattern_type] = out.get(p.pattern_type, 0) + 1
        return out
