"""Sequential-fraction analysis and per-case speedups (Table VI + §V prose).

Table VI explains why CPU Benchmarks only reaches 1.20: its sequential
fraction is 94.29%, against 3.89% (GPdotNET), 9.09% (Mandelbrot) and
28.21% (WordWheelSolver).  This module measures the fractions from the
workloads' declared decompositions, computes the resulting program
speedups on the simulated machine, and verifies the paper's qualitative
claim — the lower the sequential fraction, the higher the speedup.

:func:`run_whatif_validation` closes the causal-profiling loop: on
every Table V workload it takes the *top-ranked* what-if prediction,
really executes the recommended transform
(:func:`repro.parallel.transforms.execute_transform`), and checks that
the measured end-to-end speedup lands within :data:`WHATIF_TOLERANCE`
of the prediction.  Both sides share the same serial remainder, so the
band isolates exactly the modeling gaps the prediction accepts by
design: per-task spawn overhead, chunk-size rounding, and LPT placement
versus the analytic equal split.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.machine import SimulatedMachine, amdahl
from ..workloads import Workload, workload_by_name
from .harness import EVAL_MACHINE

#: Table VI rows: (workload name, sequential ms, parallelizable ms).
TABLE6_PAPER_ROWS: tuple[tuple[str, float, float], ...] = (
    ("CPU Benchmarks", 7_600.0, 460.0),
    ("Gpdotnet", 7_000.0, 173_000.0),
    ("Mandelbrot", 50.0, 500.0),
    ("WordWheelSolver", 55.0, 140.0),
)


@dataclass(frozen=True)
class FractionRow:
    """One Table VI row, measured vs paper."""

    name: str
    measured_fraction: float
    paper_fraction: float
    program_speedup: float
    amdahl_limit: float

    @property
    def fraction_error(self) -> float:
        return abs(self.measured_fraction - self.paper_fraction)


def paper_fraction(name: str) -> float:
    for row_name, seq, par in TABLE6_PAPER_ROWS:
        if row_name == name:
            return seq / (seq + par)
    raise KeyError(name)


def run_fraction_analysis(
    machine: SimulatedMachine = EVAL_MACHINE, scale: float = 1.0
) -> list[FractionRow]:
    """Measure Table VI for its four workloads."""
    rows = []
    for name, seq, par in TABLE6_PAPER_ROWS:
        workload = workload_by_name(name)
        decomposition = workload.decomposition(scale=scale)
        fraction = decomposition.sequential_fraction
        rows.append(
            FractionRow(
                name=name,
                measured_fraction=fraction,
                paper_fraction=seq / (seq + par),
                program_speedup=decomposition.speedup(machine),
                amdahl_limit=amdahl(fraction, machine.cores),
            )
        )
    return rows


def fractions_explain_speedups(rows: list[FractionRow]) -> bool:
    """The paper's claim: speedup order is the reverse of the
    sequential-fraction order."""
    by_fraction = sorted(rows, key=lambda r: r.measured_fraction)
    speedups = [r.program_speedup for r in by_fraction]
    return all(a >= b for a, b in zip(speedups, speedups[1:]))


@dataclass(frozen=True)
class ProseCase:
    """One §V prose speedup claim and how we reproduce it."""

    description: str
    workload: str
    paper_speedup: float
    measured_speedup: float

    @property
    def same_verdict(self) -> bool:
        """Both agree on whether parallelization paid (>1.1)."""
        return (self.paper_speedup > 1.1) == (self.measured_speedup > 1.1)


def run_prose_cases(
    machine: SimulatedMachine = EVAL_MACHINE, scale: float = 1.0
) -> list[ProseCase]:
    """Reproduce the per-location speedups narrated in §V.

    Each case maps to one use case detected in the corresponding
    workload; the measured number is the simulated transform outcome.
    """
    from ..events.collector import collecting
    from ..parallel.transforms import apply_recommendation
    from ..usecases.engine import UseCaseEngine
    from ..usecases.rules import PARALLEL_RULES

    engine = UseCaseEngine(rules=PARALLEL_RULES)

    def outcome_for(workload: Workload, label: str, kind_abbrev: str):
        with collecting() as session:
            workload.run_tracked(scale=scale)
        report = engine.analyze_collector(session)
        for use_case in report.use_cases:
            if (
                use_case.profile.label == label
                and use_case.kind.abbreviation == kind_abbrev
            ):
                return apply_recommendation(use_case, machine)
        raise LookupError(f"{workload.name}: no {kind_abbrev} on {label!r}")

    cases = [
        (
            "Algorithmia: random-value list initialization (Long-Insert)",
            "Algorithmia", "random_list", "LI", 1.35,
        ),
        (
            "Algorithmia: priority-queue-as-list search (Frequent-Long-Read)",
            "Algorithmia", "priority_queue", "FLR", 2.30,
        ),
        (
            "Mandelbrot: main render loop (use case one)",
            "Mandelbrot", "image", "LI", 2.90,
        ),
        (
            "Mandelbrot: axis initialization (use cases two/three)",
            "Mandelbrot", "real_axis", "LI", 1.77,
        ),
        (
            "GPdotNET: population fitness search (use case two)",
            "Gpdotnet", "population", "FLR", 2.88,
        ),
        (
            "GPdotNET: terminal-set aggregate (use case one, no speedup)",
            "Gpdotnet", "terminals", "FLR", 1.0,
        ),
    ]
    out = []
    for description, wl_name, label, kind, paper_speedup in cases:
        outcome = outcome_for(workload_by_name(wl_name), label, kind)
        out.append(
            ProseCase(
                description=description,
                workload=wl_name,
                paper_speedup=paper_speedup,
                measured_speedup=outcome.speedup,
            )
        )
    return out


#: Measured speedup must land within this relative band of the
#: prediction — the committed accuracy contract of the what-if profiler.
WHATIF_TOLERANCE = 0.15


@dataclass(frozen=True)
class WhatIfRow:
    """Measured vs predicted speedup for one workload's top-ranked
    recommendation."""

    workload: str
    use_case: str
    predicted: float
    measured: float
    matches_sequential: bool
    note: str = ""

    @property
    def relative_error(self) -> float:
        if self.predicted <= 0:
            return 0.0
        return abs(self.measured - self.predicted) / self.predicted

    @property
    def within_band(self) -> bool:
        """Inside the committed tolerance AND the real parallel
        execution produced the sequential result."""
        return self.matches_sequential and self.relative_error <= WHATIF_TOLERANCE


def run_whatif_validation(
    machine: SimulatedMachine = EVAL_MACHINE, scale: float = 1.0
) -> list[WhatIfRow]:
    """Measured-vs-predicted differential over all 7 Table V workloads.

    For each workload: record the tracked run, rank the flagged use
    cases by predicted speedup, *execute* the top recommendation on a
    real thread pool, and compare.  Workloads with no flagged parallel
    use case contribute a trivially-in-band 1.0/1.0 row (there is
    nothing to transform), flagged loudly in the note.
    """
    from ..events.collector import collecting
    from ..parallel.transforms import execute_transform
    from ..usecases.engine import UseCaseEngine
    from ..usecases.rules import PARALLEL_RULES
    from ..whatif.predict import (
        annotate_report,
        end_to_end_speedup,
        predict_use_case,
        rank_report,
        workspans_from_profiles,
    )
    from ..workloads import EVALUATION_WORKLOADS

    engine = UseCaseEngine(rules=PARALLEL_RULES)
    rows: list[WhatIfRow] = []
    for workload in EVALUATION_WORKLOADS:
        with collecting() as session:
            workload.run_tracked(scale=scale)
        workspans = workspans_from_profiles(session.profiles())
        report = rank_report(
            annotate_report(engine.analyze_collector(session), machine, workspans)
        )
        top = next((u for u in report.use_cases if u.parallel), None)
        if top is None or not top.predicted_speedup or top.predicted_speedup <= 1.0:
            rows.append(
                WhatIfRow(
                    workload=workload.name,
                    use_case="-",
                    predicted=1.0,
                    measured=1.0,
                    matches_sequential=True,
                    note="no parallel use case with predicted payoff",
                )
            )
            continue
        prediction = predict_use_case(
            top, machine, workspans.get(top.instance_id)
        )
        executed = execute_transform(top, machine)
        measured = end_to_end_speedup(
            prediction.serial_rest,
            executed.sequential_time,
            executed.parallel_time,
        )
        label = top.profile.label or f"#{top.instance_id}"
        rows.append(
            WhatIfRow(
                workload=workload.name,
                use_case=f"{top.kind.abbreviation} on {label}",
                predicted=top.predicted_speedup,
                measured=measured,
                matches_sequential=executed.matches_sequential,
            )
        )
    return rows
