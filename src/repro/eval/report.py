"""One-shot reproduction report builder.

Bundles every study and evaluation stage into a single markdown
document (tables rendered as fenced text blocks, with paper-vs-measured
summaries), which the CLI's ``dsspy report`` writes to disk.  This is
the artifact a reviewer reads to audit the reproduction in one place.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from ..study.occurrence import run_occurrence_study
from ..study.regularities import run_regularity_study
from ..study.usecase_survey import run_usecase_survey
from .harness import EvaluationSummary, evaluate_all
from .speedup_eval import fractions_explain_speedups, run_fraction_analysis
from .tables import (
    render_figure1,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table6,
    render_table7,
)


@dataclass(frozen=True)
class ReproductionReport:
    """All measured sections plus the headline verdicts."""

    markdown: str
    evaluation: EvaluationSummary
    ordering_holds: bool

    @property
    def headline_ok(self) -> bool:
        return (
            self.evaluation.total_instances == 104
            and self.evaluation.total_use_cases == 24
            and self.evaluation.total_true_positives == 16
            and self.ordering_holds
        )


def _block(text: str) -> str:
    return "```\n" + text + "\n```"


def build_report(
    scale: float = 0.3,
    loc_scale: float = 0.05,
    measure_slowdown: bool = True,
) -> ReproductionReport:
    """Run everything and assemble the markdown document."""
    started = time.perf_counter()

    occurrence = run_occurrence_study(loc_scale=loc_scale)
    regularity = run_regularity_study()
    survey = run_usecase_survey()
    evaluation = evaluate_all(scale=scale, measure_slowdown=measure_slowdown)
    fractions = run_fraction_analysis()
    ordering = fractions_explain_speedups(fractions)

    sections = [
        "# DSspy reproduction report",
        "",
        f"Workload scale {scale}; corpus LOC scale {loc_scale}; "
        f"generated in {time.perf_counter() - started:.1f}s.",
        "",
        "## Headline",
        "",
        f"- instances analyzed: **{evaluation.total_instances}** (paper: 104)",
        f"- use cases: **{evaluation.total_use_cases}** (paper: 24)",
        f"- true positives: **{evaluation.total_true_positives}** (paper: 16)",
        f"- search-space reduction: **{evaluation.total_reduction:.2%}** "
        "(paper: 76.92%)",
        f"- precision: **{evaluation.precision:.2%}** (paper: 66.67%)",
        f"- mean instrumentation slowdown: **{evaluation.mean_slowdown:.1f}x** "
        "(paper: 47.13x)",
        f"- sequential fractions order the speedups: **{ordering}**",
        "",
        "## Empirical study (§II–III)",
        "",
        _block(render_table1(occurrence)),
        "",
        _block(render_figure1(occurrence)),
        "",
        _block(render_table2(regularity)),
        "",
        _block(render_table3(survey)),
        "",
        "## Evaluation (§V)",
        "",
        _block(render_table4(evaluation)),
        "",
        _block(render_table6(fractions)),
        "",
        "## Related work (Table VII)",
        "",
        _block(render_table7()),
        "",
    ]
    return ReproductionReport(
        markdown="\n".join(sections),
        evaluation=evaluation,
        ordering_holds=ordering,
    )


def write_report(path: str | Path, **kwargs) -> ReproductionReport:
    report = build_report(**kwargs)
    Path(path).write_text(report.markdown, encoding="utf-8")
    return report
