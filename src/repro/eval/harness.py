"""End-to-end DSspy evaluation harness (§V: Table IV).

For each of the seven benchmark programs: run the tracked variant,
derive use cases with the paper's thresholds, apply every recommended
action on the simulated 8-core machine, and measure the
instrumentation slowdown against the plain variant.  The result rows
carry the same columns as Table IV.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..events.collector import collecting
from ..parallel.machine import MachineConfig, SimulatedMachine
from ..parallel.transforms import TransformOutcome, apply_all
from ..usecases.engine import UseCaseEngine, UseCaseReport
from ..usecases.rules import PARALLEL_RULES
from ..workloads import EVALUATION_WORKLOADS, Workload

#: The evaluation machine: the paper's 8-core AMD FX, as a cost model.
EVAL_MACHINE = SimulatedMachine(MachineConfig(cores=8))


@dataclass(frozen=True)
class WorkloadEvaluation:
    """One Table IV row, measured."""

    workload: Workload
    report: UseCaseReport
    outcomes: tuple[TransformOutcome, ...]
    plain_seconds: float
    tracked_seconds: float
    program_speedup: float
    sequential_fraction: float

    # -- Table IV columns -------------------------------------------------

    @property
    def name(self) -> str:
        return self.workload.name

    @property
    def instances(self) -> int:
        return self.report.instances_analyzed

    @property
    def use_cases(self) -> int:
        return len(self.report.use_cases)

    @property
    def true_positives(self) -> int:
        return sum(1 for o in self.outcomes if o.is_true_positive)

    @property
    def search_space_reduction(self) -> float:
        """1 − use cases / instances, as the paper computes it."""
        if self.instances == 0:
            return 0.0
        return 1.0 - self.use_cases / self.instances

    @property
    def slowdown(self) -> float:
        if self.plain_seconds <= 0:
            return float("inf")
        return self.tracked_seconds / self.plain_seconds

    def matches_paper_counts(self) -> bool:
        paper = self.workload.paper
        return (
            self.instances == paper.instances
            and self.use_cases == paper.use_cases
            and self.true_positives == paper.true_positives
        )


def evaluate_workload(
    workload: Workload,
    scale: float = 1.0,
    machine: SimulatedMachine = EVAL_MACHINE,
    engine: UseCaseEngine | None = None,
    measure_slowdown: bool = True,
    repeats: int = 1,
) -> WorkloadEvaluation:
    """Run the full DSspy pipeline on one workload."""
    engine = engine if engine is not None else UseCaseEngine(rules=PARALLEL_RULES)

    plain_seconds = 0.0
    if measure_slowdown:
        for _ in range(repeats):
            start = time.perf_counter()
            workload.run_plain(scale=scale)
            plain_seconds += time.perf_counter() - start
        plain_seconds /= repeats

    tracked_seconds = 0.0
    session = None
    for _ in range(repeats):
        start = time.perf_counter()
        with collecting() as session:
            workload.run_tracked(scale=scale)
        tracked_seconds += time.perf_counter() - start
    tracked_seconds /= repeats

    report = engine.analyze_collector(session)
    outcomes = tuple(apply_all(list(report.use_cases), machine))
    decomposition = workload.decomposition(scale=scale)

    return WorkloadEvaluation(
        workload=workload,
        report=report,
        outcomes=outcomes,
        plain_seconds=plain_seconds,
        tracked_seconds=tracked_seconds,
        program_speedup=decomposition.speedup(machine),
        sequential_fraction=decomposition.sequential_fraction,
    )


@dataclass(frozen=True)
class EvaluationSummary:
    """The full Table IV, measured."""

    rows: tuple[WorkloadEvaluation, ...]

    @property
    def total_instances(self) -> int:
        return sum(r.instances for r in self.rows)

    @property
    def total_use_cases(self) -> int:
        return sum(r.use_cases for r in self.rows)

    @property
    def total_true_positives(self) -> int:
        return sum(r.true_positives for r in self.rows)

    @property
    def total_reduction(self) -> float:
        """The paper's headline 76.92%."""
        if self.total_instances == 0:
            return 0.0
        return 1.0 - self.total_use_cases / self.total_instances

    @property
    def precision(self) -> float:
        """The paper's 66.67% (16 of 24)."""
        if self.total_use_cases == 0:
            return 0.0
        return self.total_true_positives / self.total_use_cases

    @property
    def mean_speedup(self) -> float:
        if not self.rows:
            return 1.0
        return sum(r.program_speedup for r in self.rows) / len(self.rows)

    @property
    def mean_slowdown(self) -> float:
        finite = [r.slowdown for r in self.rows if r.plain_seconds > 0]
        if not finite:
            return 0.0
        return sum(finite) / len(finite)

    @property
    def all_counts_match(self) -> bool:
        return all(r.matches_paper_counts() for r in self.rows)


def evaluate_all(
    scale: float = 1.0,
    machine: SimulatedMachine = EVAL_MACHINE,
    measure_slowdown: bool = True,
    repeats: int = 1,
) -> EvaluationSummary:
    """Evaluate the whole seven-program benchmark (Table IV)."""
    rows = tuple(
        evaluate_workload(
            w,
            scale=scale,
            machine=machine,
            measure_slowdown=measure_slowdown,
            repeats=repeats,
        )
        for w in EVALUATION_WORKLOADS
    )
    return EvaluationSummary(rows=rows)
