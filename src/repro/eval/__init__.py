"""The evaluation harness (§V): Tables IV–VII."""

from .detection_quality import (
    DetectionQuality,
    KindScore,
    build_labeled_corpus,
    evaluate_detection_quality,
)
from .harness import (
    EVAL_MACHINE,
    EvaluationSummary,
    WorkloadEvaluation,
    evaluate_all,
    evaluate_workload,
)
from .report import ReproductionReport, build_report, write_report
from .speedup_eval import (
    TABLE6_PAPER_ROWS,
    WHATIF_TOLERANCE,
    FractionRow,
    ProseCase,
    WhatIfRow,
    fractions_explain_speedups,
    paper_fraction,
    run_fraction_analysis,
    run_prose_cases,
    run_whatif_validation,
)
from .tables import (
    TABLE7_MATRIX,
    render_figure1,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table6,
    render_table7,
)

__all__ = [
    "DetectionQuality",
    "EVAL_MACHINE",
    "KindScore",
    "build_labeled_corpus",
    "evaluate_detection_quality",
    "EvaluationSummary",
    "FractionRow",
    "ProseCase",
    "ReproductionReport",
    "TABLE6_PAPER_ROWS",
    "build_report",
    "write_report",
    "TABLE7_MATRIX",
    "WorkloadEvaluation",
    "evaluate_all",
    "evaluate_workload",
    "fractions_explain_speedups",
    "paper_fraction",
    "render_figure1",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table6",
    "render_table7",
    "run_fraction_analysis",
    "run_prose_cases",
    "run_whatif_validation",
    "WHATIF_TOLERANCE",
    "WhatIfRow",
]
