"""Detection quality: precision AND recall on labeled profiles.

The paper could not report recall — it had no ground truth for the
structures DSspy did *not* flag (§VII).  Our synthetic profile
generators come with labels, so this module builds a labeled corpus
(K positive profiles per use-case kind + N negative noise profiles),
runs the real engine, and scores per-kind precision, recall and F1 —
the measurement the paper lists as future work.

Negatives are adversarial, not just random: stack/queue-shaped
sequential profiles, sub-threshold phases, and irregular noise — the
shapes most likely to cause false fires.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events.collector import collecting
from ..events.profile import RuntimeProfile
from ..usecases.engine import UseCaseEngine
from ..usecases.model import UseCaseKind
from ..usecases.rules import PARALLEL_RULES
from ..workloads import generators as gen

#: Kind → generator producing a profile that must fire exactly it.
_POSITIVE_MAKERS = {
    UseCaseKind.LONG_INSERT: lambda i: gen.gen_long_insert(
        400 + 30 * i, label=f"pos_li_{i}"
    ),
    UseCaseKind.IMPLEMENT_QUEUE: lambda i: gen.gen_queue_usage(
        80 + i, label=f"pos_iq_{i}"
    ),
    UseCaseKind.SORT_AFTER_INSERT: lambda i: gen.gen_sort_after_insert(
        200 + 20 * i, label=f"pos_sai_{i}"
    ),
    UseCaseKind.FREQUENT_SEARCH: lambda i: gen.gen_frequent_search(
        1100 + 50 * i, 100, label=f"pos_fs_{i}"
    ),
    UseCaseKind.FREQUENT_LONG_READ: lambda i: gen.gen_frequent_long_read(
        12 + i, 60, label=f"pos_flr_{i}"
    ),
}

#: Adversarial negatives: profiles that must fire NO parallel rule.
_NEGATIVE_MAKERS = (
    lambda i: gen.gen_irregular(150, 60, seed=100 + i, label=f"neg_noise_{i}"),
    lambda i: gen.gen_stack_usage(20, 4, label=f"neg_stack_{i}"),
    lambda i: gen.gen_write_without_read(40, label=f"neg_wwr_{i}"),
    lambda i: gen.gen_insert_back_read_forward(50, 4, label=f"neg_cycle_{i}"),
    lambda i: gen.gen_long_insert(60, label=f"neg_short_li_{i}"),  # sub-threshold
    lambda i: gen.gen_frequent_long_read(6, 60, label=f"neg_few_scans_{i}"),
    lambda i: gen.gen_frequent_search(300, 100, label=f"neg_few_search_{i}"),
    # Boundary negatives: just under the published thresholds.
    lambda i: gen.gen_long_insert(95, label=f"neg_li_95_{i}"),
    lambda i: gen.gen_frequent_long_read(10, 60, label=f"neg_flr_10_{i}"),
    lambda i: gen.gen_frequent_search(1000, 100, label=f"neg_fs_1000_{i}"),
)

#: Boundary positives: just over the published thresholds — these are
#: what separates a tuned threshold from a sloppy one.
_BOUNDARY_POSITIVE_MAKERS = {
    UseCaseKind.LONG_INSERT: lambda i: gen.gen_long_insert(
        105, label=f"pos_li_105_{i}"
    ),
    UseCaseKind.FREQUENT_LONG_READ: lambda i: gen.gen_frequent_long_read(
        11, 60, label=f"pos_flr_11_{i}"
    ),
    UseCaseKind.FREQUENT_SEARCH: lambda i: gen.gen_frequent_search(
        1001, 100, label=f"pos_fs_1001_{i}"
    ),
}


@dataclass(frozen=True)
class KindScore:
    """Per-kind detection quality."""

    kind: UseCaseKind
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


@dataclass(frozen=True)
class DetectionQuality:
    """Scores over the whole labeled corpus."""

    scores: tuple[KindScore, ...]
    negatives_total: int
    negatives_clean: int

    def score_for(self, kind: UseCaseKind) -> KindScore:
        for score in self.scores:
            if score.kind is kind:
                return score
        raise KeyError(kind)

    @property
    def macro_f1(self) -> float:
        return sum(s.f1 for s in self.scores) / len(self.scores)

    @property
    def negative_specificity(self) -> float:
        """Share of adversarial negatives that stayed unflagged."""
        if self.negatives_total == 0:
            return 1.0
        return self.negatives_clean / self.negatives_total

    def describe(self) -> str:
        lines = [
            f"{'kind':<20}{'P':>7}{'R':>7}{'F1':>7}",
        ]
        for score in self.scores:
            lines.append(
                f"{score.kind.label:<20}{score.precision:>7.2f}"
                f"{score.recall:>7.2f}{score.f1:>7.2f}"
            )
        lines.append(
            f"macro-F1 {self.macro_f1:.3f}; specificity on adversarial "
            f"negatives {self.negative_specificity:.2%} "
            f"({self.negatives_clean}/{self.negatives_total})"
        )
        return "\n".join(lines)


def build_labeled_corpus(
    positives_per_kind: int = 5,
    negatives_per_maker: int = 3,
    include_boundary: bool = True,
) -> tuple[list[RuntimeProfile], dict[int, UseCaseKind | None]]:
    """Profiles + ground-truth labels (None = no parallel use case).

    ``include_boundary`` adds positives *just over* and negatives *just
    under* the published thresholds, so detection quality actually
    discriminates between threshold configurations.
    """
    labels: dict[int, UseCaseKind | None] = {}
    with collecting() as session:
        for kind, maker in _POSITIVE_MAKERS.items():
            for i in range(positives_per_kind):
                structure = maker(i)
                labels[structure.instance_id] = kind
        if include_boundary:
            for kind, maker in _BOUNDARY_POSITIVE_MAKERS.items():
                structure = maker(0)
                labels[structure.instance_id] = kind
        for maker in _NEGATIVE_MAKERS:
            for i in range(negatives_per_maker):
                structure = maker(i)
                labels[structure.instance_id] = None
    return session.profiles(), labels


def evaluate_detection_quality(
    positives_per_kind: int = 5,
    negatives_per_maker: int = 3,
    engine: UseCaseEngine | None = None,
    include_boundary: bool = True,
) -> DetectionQuality:
    """Score the engine on the labeled corpus."""
    engine = engine if engine is not None else UseCaseEngine(rules=PARALLEL_RULES)
    profiles, labels = build_labeled_corpus(
        positives_per_kind, negatives_per_maker, include_boundary
    )

    detected: dict[int, set[UseCaseKind]] = {p.instance_id: set() for p in profiles}
    for profile in profiles:
        for use_case in engine.analyze_profile(profile):
            detected[profile.instance_id].add(use_case.kind)

    scores = []
    for kind in UseCaseKind.parallel_kinds():
        tp = fp = fn = 0
        for instance_id, truth in labels.items():
            fired = kind in detected[instance_id]
            if truth is kind and fired:
                tp += 1
            elif truth is kind and not fired:
                fn += 1
            elif truth is not kind and fired:
                fp += 1
        scores.append(
            KindScore(
                kind=kind,
                true_positives=tp,
                false_positives=fp,
                false_negatives=fn,
            )
        )

    negatives = [iid for iid, truth in labels.items() if truth is None]
    clean = sum(1 for iid in negatives if not detected[iid])
    return DetectionQuality(
        scores=tuple(scores),
        negatives_total=len(negatives),
        negatives_clean=clean,
    )
