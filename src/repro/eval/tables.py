"""Text rendering of every paper table, measured-vs-paper.

Each ``render_table*`` function takes the measured results from the
corresponding study/eval module and prints rows in the published
layout, so benchmark output can be eyeballed against the paper
directly.  Table VII is the qualitative related-work matrix, a static
capability table.
"""

from __future__ import annotations

from ..study.occurrence import OccurrenceStudy
from ..study.regularities import RegularityStudy
from ..study.usecase_survey import UseCaseSurvey
from .harness import EvaluationSummary
from .speedup_eval import FractionRow


def _rule(width: int = 72) -> str:
    return "-" * width


def render_table1(study: OccurrenceStudy) -> str:
    """Table I: benchmark distribution across domains."""
    lines = [
        "Table I — Empirical study: distribution across domains",
        _rule(),
        f"{'Application Domain':<22}{'#Instances':>12}{'LOC':>12}",
        _rule(),
    ]
    for domain, instances, loc in study.table1_rows():
        lines.append(f"{domain:<22}{instances:>12}{loc:>12}")
    lines.append(_rule())
    lines.append(
        f"{'Total':<22}{study.total_instances:>12}{study.total_loc:>12}"
    )
    lines.append(
        f"list share {study.list_share:.2%} (paper: 65.05%); "
        f"list/dictionary {study.list_to_dictionary_ratio:.2f}x (paper: 3.94x); "
        f"lists+arrays {study.lists_and_arrays_share:.2%} (paper: >75%)"
    )
    return "\n".join(lines)


def render_figure1(study: OccurrenceStudy, width: int = 30) -> str:
    """Figure 1: per-program occurrence, as a horizontal text chart."""
    names, series = study.figure1_series()
    kinds = list(series)
    lines = [
        "Figure 1 — Data structure occurrence per program",
        "legend: " + ", ".join(k.value for k in kinds),
        _rule(),
    ]
    peak = max((max(v) for v in series.values() if v), default=1) or 1
    for i, name in enumerate(names):
        total = sum(series[k][i] for k in kinds)
        bar = "#" * max(int(series[kinds[0]][i] / peak * width), 0)
        lines.append(f"{name:<22}{total:>5}  {bar}")
    return "\n".join(lines)


def render_table2(study: RegularityStudy) -> str:
    """Table II: recurring regularities in 15 programs."""
    lines = [
        "Table II — Access pattern predominance (15 programs)",
        _rule(),
        f"{'Application':<20}{'Domain':<14}{'LOC':>8}{'Regular.':>10}{'Parallel':>10}",
        _rule(),
    ]
    for name, domain, loc, regularities, parallel in study.rows():
        lines.append(
            f"{name:<20}{domain:<14}{loc:>8}{regularities:>10}{parallel:>10}"
        )
    lines.append(_rule())
    lines.append(
        f"{'Total':<42}{study.total_regularities:>10}"
        f"{study.total_parallel_use_cases:>10}"
        "   (paper: 81 / 41)"
    )
    return "\n".join(lines)


def render_table3(survey: UseCaseSurvey) -> str:
    """Table III: 66 use cases by category."""
    lines = [
        "Table III — Use cases by category",
        _rule(),
        f"{'Application':<20}{'LI':>5}{'IQ':>5}{'SAI':>5}{'FS':>5}{'FLR':>5}{'Σ':>5}",
        _rule(),
    ]
    for name, li, iq, sai, fs, flr, total in survey.rows():
        lines.append(
            f"{name:<20}{li:>5}{iq:>5}{sai:>5}{fs:>5}{flr:>5}{total:>5}"
        )
    totals = survey.totals()
    from ..usecases.model import UseCaseKind

    lines.append(_rule())
    lines.append(
        f"{'Total':<20}"
        f"{totals.get(UseCaseKind.LONG_INSERT, 0):>5}"
        f"{totals.get(UseCaseKind.IMPLEMENT_QUEUE, 0):>5}"
        f"{totals.get(UseCaseKind.SORT_AFTER_INSERT, 0):>5}"
        f"{totals.get(UseCaseKind.FREQUENT_SEARCH, 0):>5}"
        f"{totals.get(UseCaseKind.FREQUENT_LONG_READ, 0):>5}"
        f"{survey.total_use_cases:>5}"
        "   (paper: 49/3/1/3/10 = 66)"
    )
    return "\n".join(lines)


def render_table4(summary: EvaluationSummary) -> str:
    """Table IV: the seven-program evaluation."""
    lines = [
        "Table IV — Evaluation of DSspy",
        _rule(96),
        f"{'Name':<17}{'Slowdown':>9}{'DS':>5}{'UC':>4}{'TP':>4}"
        f"{'Reduction':>11}{'Speedup':>9}{'paper-UC':>9}{'paper-TP':>9}"
        f"{'paper-Spd':>10}",
        _rule(96),
    ]
    for row in summary.rows:
        paper = row.workload.paper
        slowdown = f"{row.slowdown:.2f}" if row.plain_seconds > 0 else "n/a"
        lines.append(
            f"{row.name:<17}{slowdown:>9}{row.instances:>5}{row.use_cases:>4}"
            f"{row.true_positives:>4}{row.search_space_reduction:>10.2%}"
            f"{row.program_speedup:>9.2f}"
            f"{paper.use_cases:>9}{paper.true_positives:>9}"
            f"{paper.speedup:>10.2f}"
        )
    lines.append(_rule(96))
    lines.append(
        f"{'Total':<17}{summary.mean_slowdown:>9.2f}"
        f"{summary.total_instances:>5}{summary.total_use_cases:>4}"
        f"{summary.total_true_positives:>4}{summary.total_reduction:>10.2%}"
        f"{summary.mean_speedup:>9.2f}"
    )
    lines.append(
        f"precision {summary.precision:.2%} (paper: 66.67%); "
        f"reduction (paper: 76.92%); 16 of 24 true positives (paper)"
    )
    return "\n".join(lines)


def render_table6(rows: list[FractionRow]) -> str:
    """Table VI: sequential vs parallelizable runtime fractions."""
    lines = [
        "Table VI — Sequential and parallel runtime fractions",
        _rule(80),
        f"{'Name':<18}{'Seq. fraction':>14}{'Paper':>10}{'Speedup':>10}"
        f"{'Amdahl@8':>10}",
        _rule(80),
    ]
    for row in rows:
        lines.append(
            f"{row.name:<18}{row.measured_fraction:>13.2%}"
            f"{row.paper_fraction:>9.2%}{row.program_speedup:>10.2f}"
            f"{row.amdahl_limit:>10.2f}"
        )
    return "\n".join(lines)


#: Table VII: related-work capability matrix (static, from the paper).
#: Rows are capabilities, columns approaches; values "+", "o" or "-".
TABLE7_MATRIX: dict[str, dict[str, str]] = {
    "Chronological order of data": {
        "Parallel Libraries": "+", "Programming Assistance": "-",
        "Software Visualization": "+", "Data Layout Optimization": "o",
        "Memory Access Analysis": "+", "Data Structure Optimization": "-",
        "Automatic Parallelization": "-", "This work": "o",
    },
    "Collection of data accesses": {
        "Parallel Libraries": "-", "Programming Assistance": "-",
        "Software Visualization": "o", "Data Layout Optimization": "+",
        "Memory Access Analysis": "-", "Data Structure Optimization": "-",
        "Automatic Parallelization": "-", "This work": "+",
    },
    "Detection of parallel potential": {
        "Parallel Libraries": "-", "Programming Assistance": "-",
        "Software Visualization": "-", "Data Layout Optimization": "-",
        "Memory Access Analysis": "-", "Data Structure Optimization": "+",
        "Automatic Parallelization": "+", "This work": "+",
    },
    "Deduction of use cases": {
        "Parallel Libraries": "-", "Programming Assistance": "-",
        "Software Visualization": "-", "Data Layout Optimization": "-",
        "Memory Access Analysis": "-", "Data Structure Optimization": "-",
        "Automatic Parallelization": "-", "This work": "+",
    },
}


def render_table7() -> str:
    """Table VII: comparison of related work."""
    approaches = list(next(iter(TABLE7_MATRIX.values())))
    lines = ["Table VII — Comparison of related work", _rule(100)]
    header = f"{'Capability':<34}" + "".join(f"{a[:10]:>11}" for a in approaches)
    lines.append(header)
    lines.append(_rule(100))
    for capability, row in TABLE7_MATRIX.items():
        lines.append(
            f"{capability:<34}" + "".join(f"{row[a]:>11}" for a in approaches)
        )
    return "\n".join(lines)
