"""Event transport channels.

DSspy keeps the execution slowdown low by *only recording* access events
at runtime and analyzing them post-mortem; events flow to the analysis
module over an asynchronous channel rather than through file-based or
in-memory logs (§IV).  This module provides three interchangeable
transports:

``SynchronousChannel``
    Direct in-memory append.  Lowest latency, used for deterministic
    tests and single-threaded workloads.

``AsyncChannel``
    A background drainer thread consuming a thread-safe queue -- the
    in-process analog of the paper's separate analysis process fed via
    asynchronous intra-process communication.

``ProcessChannel``
    A ``multiprocessing`` queue drained by a child process.  Provided
    for fidelity with the paper's design; not the default because the
    evaluation container has a single core and pickling costs dominate.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import threading
from typing import Protocol

from .event import RawEvent


class Channel(Protocol):
    """Transport for raw event tuples from producers to the collector."""

    def post(self, raw: RawEvent) -> None:
        """Enqueue one raw event (hot path; must be cheap)."""

    def drain(self) -> list[RawEvent]:
        """Stop accepting events and return everything posted, in order."""

    def snapshot(self) -> list[RawEvent]:
        """Everything posted so far, without closing the channel.

        Lets the collector assemble profiles mid-session (e.g. a tracked
        structure's ``profile()`` while the workload is still running).
        """

    @property
    def pending(self) -> int:
        """Events posted so far (approximate for async transports)."""


class SynchronousChannel:
    """Direct append to an in-memory buffer."""

    __slots__ = ("_buffer", "_closed")

    def __init__(self) -> None:
        self._buffer: list[RawEvent] = []
        self._closed = False

    def post(self, raw: RawEvent) -> None:
        if self._closed:
            raise RuntimeError("channel already drained")
        self._buffer.append(raw)

    def drain(self) -> list[RawEvent]:
        self._closed = True
        return self._buffer

    def snapshot(self) -> list[RawEvent]:
        return self._buffer

    @property
    def pending(self) -> int:
        return len(self._buffer)


class _FlushMarker:
    """In-band snapshot barrier for queue-drained channels.

    Posted onto the event queue; because the queue is FIFO, by the time
    the drainer reaches the marker every event posted before it has been
    absorbed into the buffer.  The drainer sets ``done`` instead of
    appending — no polling, no per-event bookkeeping.
    """

    __slots__ = ("done",)

    def __init__(self) -> None:
        self.done = threading.Event()


class AsyncChannel:
    """Queue + background drainer thread.

    The producer side does a single ``SimpleQueue.put`` per event; the
    drainer thread accumulates events into a private buffer.  ``drain``
    posts a sentinel, joins the drainer, and hands the buffer over.
    """

    _SENTINEL = None

    def __init__(self) -> None:
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._buffer: list[RawEvent] = []
        self._posted = 0
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="dsspy-collector", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        buffer = self._buffer
        get = self._queue.get
        while True:
            item = get()
            if item is self._SENTINEL:
                return
            if type(item) is _FlushMarker:
                item.done.set()
                continue
            buffer.append(item)

    def post(self, raw: RawEvent) -> None:
        if self._closed:
            raise RuntimeError("channel already drained")
        self._posted += 1
        self._queue.put(raw)

    def _after_fork_child(self, policy: str) -> None:  # noqa: ARG002
        """Reinitialize in a fork child: the drainer thread did not
        survive the fork and the inherited queue may hold the parent's
        in-flight events.  The child starts with a fresh queue/buffer
        and its own drainer; the parent owns the pre-fork events."""
        self._queue = queue.SimpleQueue()
        self._buffer = []
        self._posted = 0
        if not self._closed:
            self._thread = threading.Thread(
                target=self._run, name="dsspy-collector", daemon=True
            )
            self._thread.start()

    def drain(self) -> list[RawEvent]:
        if not self._closed:
            self._closed = True
            self._queue.put(self._SENTINEL)
            self._thread.join()
        return self._buffer

    def snapshot(self) -> list[RawEvent]:
        """Copy of everything posted so far, synchronized via an in-band
        flush marker (the drainer signals when it reaches it) rather
        than a sleep-poll loop."""
        if self._closed:
            return self._buffer
        marker = _FlushMarker()
        self._queue.put(marker)
        if not marker.done.wait(timeout=5.0):  # pragma: no cover - defensive
            raise TimeoutError("async channel drainer did not catch up")
        return list(self._buffer)

    @property
    def pending(self) -> int:
        return self._posted


class ProcessChannel:
    """Queue drained by a child process (paper-faithful transport).

    Events are accumulated in the child and shipped back in one batch on
    ``drain``.  Use only for long-running multi-core captures; on a
    single-core host :class:`AsyncChannel` is strictly faster.
    """

    _SENTINEL = ("__dsspy_sentinel__",)

    def __init__(self, drain_timeout: float = 30.0) -> None:
        ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
        self._queue: mp.Queue = ctx.Queue()
        self._result: mp.Queue = ctx.Queue()
        self._posted = 0
        self._closed = False
        self._drain_timeout = drain_timeout
        self._process = ctx.Process(target=self._run, args=(self._queue, self._result), daemon=True)
        self._process.start()

    @staticmethod
    def _run(q, result) -> None:
        buffer: list[RawEvent] = []
        while True:
            item = q.get()
            if isinstance(item, tuple) and item == ProcessChannel._SENTINEL:
                break
            buffer.append(item)
        result.put(buffer)

    def post(self, raw: RawEvent) -> None:
        if self._closed:
            raise RuntimeError("channel already drained")
        self._posted += 1
        self._queue.put(raw)

    def drain(self) -> list[RawEvent]:
        """Ship the child's buffer back, with a bounded wait.

        A child that died (OOM-killed, crashed unpickling an event)
        would make a bare ``result.get()`` block forever; instead the
        wait is bounded by ``drain_timeout`` and a dead or wedged child
        raises a diagnosable ``RuntimeError``.
        """
        if self._closed:
            raise RuntimeError("channel already drained")
        self._closed = True
        self._queue.put(self._SENTINEL)
        try:
            buffer = self._result.get(timeout=self._drain_timeout)
        except queue.Empty:
            alive = self._process.is_alive()
            exitcode = self._process.exitcode
            self._process.terminate()
            self._process.join(timeout=5.0)
            if alive:
                raise RuntimeError(
                    f"ProcessChannel drainer did not return within "
                    f"{self._drain_timeout}s with {self._posted} events posted; "
                    f"child terminated"
                ) from None
            raise RuntimeError(
                f"ProcessChannel drainer died before drain (exit code "
                f"{exitcode}); {self._posted} posted events are lost"
            ) from None
        self._process.join(timeout=self._drain_timeout)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join(timeout=5.0)
        return buffer

    def snapshot(self) -> list[RawEvent]:
        raise NotImplementedError(
            "ProcessChannel buffers in a child process; snapshots are only "
            "available after drain() — use an AsyncChannel for mid-session "
            "inspection"
        )

    @property
    def pending(self) -> int:
        return self._posted
