"""Merging capture archives from multiple processes or runs.

A parallel program profiled per-process (one collector each) produces
several archives; mining them together requires globally unique
instance ids and disjoint thread ids.  :func:`merge_profiles` renumbers
both and returns one combined profile list, preserving each profile's
internal event order.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from .event import AccessEvent
from .profile import RuntimeProfile
from .serialize import read_profiles


def merge_profiles(
    groups: Sequence[Iterable[RuntimeProfile]],
) -> list[RuntimeProfile]:
    """Combine profile groups with renumbered instance and thread ids.

    Instance ids become dense (0..n-1 over the merged set); thread ids
    get a per-group offset so two processes' thread 0 stay distinct.
    Sequence numbers are kept group-local — cross-group event order is
    not meaningful without a shared clock, and no analysis compares
    seqs across instances.
    """
    merged: list[RuntimeProfile] = []
    next_instance = 0
    thread_offset = 0
    for group in groups:
        max_thread = -1
        for profile in group:
            renumbered = RuntimeProfile(
                next_instance,
                kind=profile.kind,
                site=profile.site,
                label=profile.label,
            )
            for event in profile:
                max_thread = max(max_thread, event.thread_id)
                renumbered.append(
                    AccessEvent(
                        seq=event.seq,
                        kind=event.kind,
                        op=event.op,
                        position=event.position,
                        size=event.size,
                        thread_id=event.thread_id + thread_offset,
                        instance_id=next_instance,
                        wall_time=event.wall_time,
                    )
                )
            merged.append(renumbered)
            next_instance += 1
        thread_offset += max_thread + 1
    return merged


def merge_archives(paths: Sequence[str | Path]) -> list[RuntimeProfile]:
    """Load several JSONL archives and merge them."""
    return merge_profiles([read_profiles(p) for p in paths])
