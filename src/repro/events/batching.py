"""Batched event transport: per-thread buffers, periodic harvest, spill.

:class:`~repro.events.channel.AsyncChannel` pays one queue put per
event *and* one Python-loop iteration on its drainer thread per event —
on the single-core hosts this reproduction targets, both halves
serialize and the per-event cost roughly doubles over a plain append.
PROMPT and TASKPROF attack exactly this with per-thread buffering: the
hot path becomes a bare ``list.append`` and everything batchable is
batched.

:class:`BatchingChannel` takes the idea to its CPython limit.  Each
producer thread owns a flat list of event tuples that is **never
replaced**: the drainer thread harvests it every ``flush_interval``
with a GIL-atomic slice-and-delete (``batch = buf[:n]; del buf[:n]``),
so producers can cache the buffer's *bound* ``append`` and record an
event for the cost of a single C call (~25 ns, vs ~200 ns through the
async queue).  :meth:`producer` hands out that cached fast path; the
generic :meth:`post` resolves the calling thread's producer through a
``threading.local`` and stays protocol-compatible with the other
channels.

Backpressure is explicit: ``max_buffered`` bounds the events held in
RAM, and ``policy`` picks what happens at the bound — ``"block"``
(lossless: producers gate on a cell flag and wait; a capture that
overruns the bound without a spill consumer eventually raises instead
of eating all memory) or ``"drop"`` (bounded memory: the drainer
discards harvested overflow and counts it in :attr:`dropped`; drop-mode
producers are a bare bound append, the fastest configuration).  With a
``spill`` path the drainer streams every harvested batch to the compact
binary format of :mod:`~repro.events.spill` instead of RAM, so the
bound is effectively never hit and million-event captures cost a file,
not a heap.

Ordering: events from one thread always stay in posting order; threads
interleave at harvest granularity rather than event granularity.  The
collector's logical timestamps therefore remain a valid serialization
of every per-thread history — which is all the analyses consume
(profiles are split per thread before pattern detection).
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Callable

from .event import RawEvent
from .spill import SpillWriter, read_spill_raw


class BatchingChannel:
    """Per-thread buffering with a harvesting drainer thread.

    Parameters
    ----------
    batch_size:
        Upper bound on events per flushed batch (one spill write or one
        master-buffer extend); harvests larger than this are chunked.
    flush_interval:
        Seconds between drainer harvests.  Also bounds how stale
        :meth:`snapshot` data can be before the snapshot barrier flushes.
    max_buffered:
        Backpressure bound: events resident in RAM (master buffer)
        before the policy engages.  Thread buffers can briefly overshoot
        by up to one harvest interval of production — the bound is a
        watermark, not a hard ceiling.
    policy:
        ``"block"``: producers wait at the bound (and raise after
        ``block_timeout`` if nothing ever drains — without a spill file
        the bound can only be relieved by ``drain()``).
        ``"drop"``: harvested events beyond the bound are discarded and
        counted in :attr:`dropped`; the producer fast path is a bare
        ``list.append``.
    spill:
        Optional path; harvested batches stream to this binary spill
        file instead of RAM, and :meth:`drain` reads the file back.
    block_timeout:
        Seconds a gated producer waits before raising — turns a wedged
        pipeline into a diagnosable error instead of a silent hang.
    sink:
        Optional callable invoked *on the drainer thread* with each
        absorbed batch, after the batch landed in the master buffer (or
        spill file).  This is the hook subclasses like
        :class:`~repro.service.client.RemoteChannel` use to forward
        events as they are harvested.  A raising sink never kills the
        drainer: the exception is stashed in :attr:`sink_error` and
        harvesting continues (the events are still retained locally).
    """

    def __init__(
        self,
        batch_size: int = 4096,
        flush_interval: float = 0.005,
        max_buffered: int = 1_000_000,
        policy: str = "block",
        spill: str | Path | None = None,
        block_timeout: float = 30.0,
        sink: Callable[[list[RawEvent]], None] | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if max_buffered < 1:
            raise ValueError(f"max_buffered must be >= 1, got {max_buffered}")
        if policy not in ("block", "drop"):
            raise ValueError(f"policy must be 'block' or 'drop', got {policy!r}")
        self._batch_size = batch_size
        self._flush_interval = flush_interval
        self._max_buffered = max_buffered
        self._policy = policy
        self._block_timeout = block_timeout
        self._writer = SpillWriter(spill) if spill is not None else None
        self.spill_path = Path(spill) if spill is not None else None

        self._buffers: dict[int, list[RawEvent]] = {}
        self._registry_lock = threading.Lock()
        self._tls = threading.local()
        self._master: list[RawEvent] = []
        self._sink = sink
        self._sink_error: BaseException | None = None
        self._drainer_error: BaseException | None = None
        self._failed_open = False
        self._absorbed = 0
        self._dropped = 0
        self._closed = False
        self._stopping = False

        # Fast-path gate: a one-slot list read by block-mode producers
        # (a C subscript, far cheaper than Event.is_set); the Event is
        # what gated producers actually sleep on.
        self._open = [True]
        self._gate = threading.Event()
        self._gate.set()

        self._wake = threading.Event()
        self._flush_done: threading.Event | None = None
        self._snapshot_lock = threading.Lock()
        self._drainer = threading.Thread(
            target=self._run, name="dsspy-batch-drainer", daemon=True
        )
        self._drainer.start()

    # -- producer side ---------------------------------------------------

    def producer(self):
        """The calling thread's hot-path recording callable.

        Registers (or reuses) this thread's buffer and returns a
        callable of one argument that appends a raw event.  Under the
        ``drop`` policy this is literally the buffer's bound
        ``list.append``; under ``block`` it is a closure that checks the
        backpressure gate first.  The callable stays valid for the
        channel's whole lifetime — harvesting never replaces the buffer
        object — but must only be invoked from the thread that obtained
        it.
        """
        buf = self._register_thread()
        append = buf.append
        if self._policy == "drop":
            return append
        open_cell = self._open
        blocked = self._blocked_append

        def produce(raw, _open=open_cell, _append=append, _blocked=blocked):
            if _open[0]:
                _append(raw)
            else:
                _blocked(_append, raw)

        return produce

    def post(self, raw: RawEvent) -> None:
        """Protocol-compatible single-event path (resolves the calling
        thread's producer through a ``threading.local``)."""
        if self._closed:
            raise RuntimeError("channel already drained")
        tls = self._tls
        try:
            produce = tls.produce
        except AttributeError:
            produce = tls.produce = self.producer()
        produce(raw)

    def _register_thread(self) -> list[RawEvent]:
        ident = threading.get_ident()
        with self._registry_lock:
            buf = self._buffers.get(ident)
            if buf is None:
                buf = self._buffers[ident] = []
        return buf

    def _blocked_append(self, append, raw: RawEvent) -> None:
        if not self._gate.wait(self._block_timeout):
            raise RuntimeError(
                f"backpressure: more than {self._max_buffered} events buffered "
                f"and nothing drained them within {self._block_timeout}s "
                f"(use a spill file or the 'drop' policy for unbounded captures)"
            )
        append(raw)

    # -- drainer ---------------------------------------------------------

    def _run(self) -> None:
        wake = self._wake
        interval = self._flush_interval
        while True:
            wake.wait(interval)
            wake.clear()
            stopping = self._stopping
            # Latch the flush request BEFORE harvesting: a request that
            # lands mid-harvest must wait for the next full cycle, or
            # the barrier would acknowledge events it never collected.
            done = self._flush_done
            if done is not None:
                self._flush_done = None
            try:
                self._harvest_all()
            except Exception as exc:
                # A dying drainer must never leave producers gated on a
                # backpressure bound nothing will ever relieve, nor a
                # snapshot barrier waiting forever: record the error,
                # open the gate permanently, release any waiter, exit.
                self._drainer_error = exc
                self.fail_open()
                if done is not None:
                    done.set()
                return
            if done is not None:
                done.set()
            if stopping:
                if self._writer is not None:
                    try:
                        self._writer.flush()
                    except Exception as exc:
                        self._drainer_error = exc
                        self.fail_open()
                return

    def _harvest_all(self) -> None:
        with self._registry_lock:
            buffers = list(self._buffers.values())
        batch_size = self._batch_size
        for buf in buffers:
            n = len(buf)
            if not n:
                continue
            harvested = buf[:n]
            del buf[:n]
            for i in range(0, n, batch_size):
                self._absorb(harvested[i:i + batch_size])
        if self._policy == "block" and self._writer is None and not self._failed_open:
            over = len(self._master) > self._max_buffered
            if over and self._open[0]:
                self._open[0] = False
                self._gate.clear()
            elif not over and not self._open[0]:
                self._open[0] = True
                self._gate.set()

    def _absorb(self, batch: list[RawEvent]) -> None:
        if self._writer is not None:
            self._writer.write_batch(batch)
            self._absorbed += len(batch)
            self._notify_sink(batch)
            return
        if self._policy == "drop":
            room = self._max_buffered - len(self._master)
            if room <= 0:
                self._dropped += len(batch)
                return
            if len(batch) > room:
                self._dropped += len(batch) - room
                batch = batch[:room]
        self._master.extend(batch)
        self._absorbed += len(batch)
        self._notify_sink(batch)

    def _notify_sink(self, batch: list[RawEvent]) -> None:
        if self._sink is None or not batch:
            return
        try:
            self._sink(batch)
        except Exception as exc:
            self._sink_error = exc

    # -- fail-open / fork safety -----------------------------------------

    def fail_open(self) -> None:
        """Permanently open the backpressure gate so no producer can
        ever block on this channel again.

        Called when a :class:`~repro.runtime.guard.RuntimeGuard` trips
        (via ``watch_channel``) or when the drainer thread dies: in
        pass-through mode events may be lost, but the host program must
        never wait on a transport that will not recover."""
        self._failed_open = True
        self._open[0] = True
        self._gate.set()

    def _after_fork_child(self, policy: str) -> None:  # noqa: ARG002
        """Reinitialize in a fork child (threads do not survive fork).

        Every synchronization primitive is replaced — its state at the
        fork point is arbitrary — and the child starts with empty
        buffers: the parent owns the pre-fork events.  The inherited
        spill writer shares a file offset with the parent, so the child
        must never touch it; spilling is simply disabled in the child.
        The drainer is restarted so the child's own recording keeps
        flowing."""
        self._registry_lock = threading.Lock()
        self._snapshot_lock = threading.Lock()
        self._tls = threading.local()
        self._buffers = {}
        self._master = []
        self._absorbed = 0
        self._dropped = 0
        self._sink_error = None
        self._drainer_error = None
        self._failed_open = False
        self._open = [True]
        self._gate = threading.Event()
        self._gate.set()
        self._wake = threading.Event()
        self._flush_done = None
        self._writer = None
        self.spill_path = None
        if not self._closed:
            self._drainer = threading.Thread(
                target=self._run, name="dsspy-batch-drainer", daemon=True
            )
            self._drainer.start()

    # -- drain / snapshot ------------------------------------------------

    def drain(self) -> list[RawEvent]:
        """Final harvest; producers must be quiescent (same contract as
        every other channel — a racing ``post`` raises or is lost)."""
        if not self._closed:
            self._closed = True
            self._stopping = True
            self._open[0] = True
            self._gate.set()
            self._wake.set()
            # Bounded join: a wedged drainer becomes a diagnosable
            # error instead of a silent hang (and under the fail-open
            # guard, finish_with_deadline contains even that).
            self._drainer.join(timeout=max(self._block_timeout, 1.0))
            if self._drainer.is_alive():
                raise RuntimeError(
                    f"batching drainer did not stop within "
                    f"{max(self._block_timeout, 1.0):.1f}s during drain"
                )
            if self._drainer_error is not None:
                # The drainer died mid-run; salvage whatever is still
                # sitting in thread buffers, best-effort.
                try:
                    self._harvest_all()
                except Exception:
                    pass
            if self._writer is not None:
                self._writer.close()
                self._master = read_spill_raw(self.spill_path)
        return self._master

    def snapshot(self) -> list[RawEvent]:
        """Everything posted so far: triggers a harvest barrier, waits
        for the drainer to signal it absorbed all pre-barrier events."""
        if self._closed:
            return self._master
        if not self._drainer.is_alive():
            # The drainer died (its error is in drainer_error); harvest
            # inline rather than waiting on a barrier nobody will serve.
            try:
                self._harvest_all()
            except Exception:
                pass
            return list(self._master)
        with self._snapshot_lock:
            done = threading.Event()
            self._flush_done = done
            self._wake.set()
            if not done.wait(self._block_timeout):
                raise TimeoutError(
                    "batching drainer did not complete the snapshot harvest"
                )
        if self._writer is not None:
            self._writer.flush()
            return read_spill_raw(self.spill_path)
        return list(self._master)

    # -- introspection ---------------------------------------------------

    @property
    def pending(self) -> int:
        """Events posted so far (approximate while producers race)."""
        with self._registry_lock:
            unharvested = sum(len(b) for b in self._buffers.values())
        return self._absorbed + self._dropped + unharvested

    @property
    def dropped(self) -> int:
        """Events discarded under the ``drop`` backpressure policy."""
        return self._dropped

    @property
    def sink_error(self) -> BaseException | None:
        """Last exception a ``sink`` callback raised, if any."""
        return self._sink_error

    @property
    def drainer_error(self) -> BaseException | None:
        """Exception that killed the drainer thread, if any (the
        channel fails open when this is set)."""
        return self._drainer_error

    @property
    def failed_open(self) -> bool:
        """True once the backpressure gate was permanently opened."""
        return self._failed_open

    @property
    def batch_size(self) -> int:
        return self._batch_size

    @property
    def policy(self) -> str:
        return self._policy


def make_channel(
    name: str,
    batch_size: int = 4096,
    spill: str | Path | None = None,
):
    """Channel factory behind the CLI's ``--channel`` flag.

    ``sync`` | ``async`` | ``batch`` | ``packed`` | ``process``;
    ``spill`` and ``batch_size`` only apply to ``batch``/``packed``.
    ``packed`` is the encode-at-record fast path
    (:class:`~repro.events.fastpath.PackedBatchingChannel`).
    """
    from .channel import AsyncChannel, ProcessChannel, SynchronousChannel
    from .fastpath import PackedBatchingChannel

    key = name.strip().lower()
    if key in ("sync", "synchronous"):
        return SynchronousChannel()
    if key in ("async", "asynchronous"):
        return AsyncChannel()
    if key in ("batch", "batching"):
        return BatchingChannel(batch_size=batch_size, spill=spill)
    if key in ("packed", "fast", "fastpath"):
        return PackedBatchingChannel(batch_size=batch_size, spill=spill)
    if key == "process":
        return ProcessChannel()
    raise ValueError(
        f"unknown channel {name!r}; expected sync, async, batch, packed, or process"
    )
