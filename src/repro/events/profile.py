"""Per-instance runtime profiles.

A runtime profile is the chronological sequence of all access events to
one data structure instance, from initialization to deallocation (§II-B).
Profiles are the unit of all downstream analysis: pattern detection,
use-case derivation and visualization all consume a
:class:`RuntimeProfile`.

Analysis is vectorized: the profile exposes parallel numpy arrays
(sequence numbers, op codes, kinds, positions, sizes, thread ids) built
lazily and cached, so detectors scan even multi-million-event profiles
in milliseconds.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from .event import AccessEvent
from .types import AccessKind, OperationKind, StructureKind

#: Sentinel stored in the positions array for whole-structure events.
NO_POSITION = -1


@dataclass(frozen=True, slots=True)
class AllocationSite:
    """Where a data structure instance was created.

    DSspy binds every event to its instantiation location so the
    engineer can navigate from a use case back to source code
    (Table V lists class/method/position per use case).
    """

    filename: str
    lineno: int
    function: str = "<module>"
    variable: str = ""

    def __str__(self) -> str:
        var = f" ({self.variable})" if self.variable else ""
        return f"{self.filename}:{self.lineno} in {self.function}{var}"


class RuntimeProfile:
    """Chronologically ordered access events of one instance.

    Parameters
    ----------
    instance_id:
        Collector-unique id of the instance.
    kind:
        Container species, e.g. :attr:`StructureKind.LIST`.
    site:
        Allocation site, if known.
    label:
        Optional human-readable name (variable name or workload role).
    """

    __slots__ = (
        "instance_id",
        "kind",
        "site",
        "label",
        "_events",
        "_arrays",
    )

    def __init__(
        self,
        instance_id: int,
        kind: StructureKind = StructureKind.LIST,
        site: AllocationSite | None = None,
        label: str = "",
    ) -> None:
        self.instance_id = instance_id
        self.kind = kind
        self.site = site
        self.label = label
        self._events: list[AccessEvent] = []
        self._arrays: dict[str, np.ndarray] | None = None

    # -- construction -------------------------------------------------

    def append(self, event: AccessEvent) -> None:
        """Add an event; events must arrive in non-decreasing ``seq``."""
        self._events.append(event)
        self._arrays = None

    def extend(self, events: Iterable[AccessEvent]) -> None:
        self._events.extend(events)
        self._arrays = None

    @classmethod
    def from_events(
        cls,
        events: Sequence[AccessEvent],
        kind: StructureKind = StructureKind.LIST,
        site: AllocationSite | None = None,
        label: str = "",
    ) -> "RuntimeProfile":
        """Build a profile from a pre-assembled event sequence."""
        instance_id = events[0].instance_id if events else 0
        profile = cls(instance_id, kind=kind, site=site, label=label)
        profile.extend(events)
        return profile

    # -- sequence protocol --------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[AccessEvent]:
        return iter(self._events)

    def __getitem__(self, index):
        return self._events[index]

    def __repr__(self) -> str:
        where = f" @ {self.site}" if self.site else ""
        return (
            f"RuntimeProfile(#{self.instance_id} {self.kind.value}, "
            f"{len(self._events)} events{where})"
        )

    @property
    def events(self) -> Sequence[AccessEvent]:
        return self._events

    # -- vectorized views ----------------------------------------------

    def _build_arrays(self) -> dict[str, np.ndarray]:
        n = len(self._events)
        seqs = np.empty(n, dtype=np.int64)
        ops = np.empty(n, dtype=np.int8)
        kinds = np.empty(n, dtype=np.int8)
        positions = np.empty(n, dtype=np.int64)
        sizes = np.empty(n, dtype=np.int64)
        threads = np.empty(n, dtype=np.int64)
        for i, ev in enumerate(self._events):
            seqs[i] = ev.seq
            ops[i] = ev.op
            kinds[i] = ev.kind
            positions[i] = NO_POSITION if ev.position is None else ev.position
            sizes[i] = ev.size
            threads[i] = ev.thread_id
        return {
            "seq": seqs,
            "op": ops,
            "kind": kinds,
            "position": positions,
            "size": sizes,
            "thread": threads,
        }

    def _array(self, name: str) -> np.ndarray:
        if self._arrays is None:
            self._arrays = self._build_arrays()
        return self._arrays[name]

    @property
    def seqs(self) -> np.ndarray:
        """Logical timestamps, one per event."""
        return self._array("seq")

    @property
    def ops(self) -> np.ndarray:
        """:class:`OperationKind` codes as ``int8``."""
        return self._array("op")

    @property
    def kinds(self) -> np.ndarray:
        """:class:`AccessKind` codes as ``int8``."""
        return self._array("kind")

    @property
    def positions(self) -> np.ndarray:
        """Target indices; ``NO_POSITION`` for whole-structure events."""
        return self._array("position")

    @property
    def sizes(self) -> np.ndarray:
        """Structure size at each access."""
        return self._array("size")

    @property
    def threads(self) -> np.ndarray:
        """Thread id per event."""
        return self._array("thread")

    # -- simple aggregate queries ---------------------------------------

    def count(self, op: OperationKind) -> int:
        """Number of events with the given compound operation kind."""
        return int(np.count_nonzero(self.ops == op))

    def count_kind(self, kind: AccessKind) -> int:
        """Number of events with the given trivial read/write kind."""
        return int(np.count_nonzero(self.kinds == kind))

    @property
    def read_fraction(self) -> float:
        """Share of events that are reads; 0.0 on an empty profile."""
        if not self._events:
            return 0.0
        return self.count_kind(AccessKind.READ) / len(self._events)

    @property
    def write_fraction(self) -> float:
        if not self._events:
            return 0.0
        return self.count_kind(AccessKind.WRITE) / len(self._events)

    @property
    def max_size(self) -> int:
        """Largest element count the structure reached."""
        if not self._events:
            return 0
        return int(self.sizes.max())

    @property
    def final_size(self) -> int:
        return int(self.sizes[-1]) if self._events else 0

    @property
    def thread_ids(self) -> list[int]:
        """Distinct thread ids observed, ascending."""
        if not self._events:
            return []
        return [int(t) for t in np.unique(self.threads)]

    @property
    def is_multithreaded(self) -> bool:
        return len(self.thread_ids) > 1

    def split_by_thread(self) -> dict[int, "RuntimeProfile"]:
        """Per-thread sub-profiles, preserving chronological order.

        Pattern detection treats interleaved threads separately (§IV
        captures thread ids precisely to recover successive accesses of
        each thread).
        """
        out: dict[int, RuntimeProfile] = {}
        for ev in self._events:
            sub = out.get(ev.thread_id)
            if sub is None:
                sub = RuntimeProfile(
                    self.instance_id,
                    kind=self.kind,
                    site=self.site,
                    label=f"{self.label}[t{ev.thread_id}]" if self.label else "",
                )
                out[ev.thread_id] = sub
            sub.append(ev)
        return out

    def slice(self, start: int, stop: int) -> "RuntimeProfile":
        """Sub-profile covering events ``start:stop`` (by index)."""
        sub = RuntimeProfile(
            self.instance_id, kind=self.kind, site=self.site, label=self.label
        )
        sub.extend(self._events[start:stop])
        return sub

    def op_histogram(self) -> dict[OperationKind, int]:
        """Event count per compound operation kind (zero entries omitted)."""
        if not self._events:
            return {}
        values, counts = np.unique(self.ops, return_counts=True)
        return {OperationKind(int(v)): int(c) for v, c in zip(values, counts)}
