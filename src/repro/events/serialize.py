"""Profile persistence: JSON-lines export/import.

DSspy analyzes profiles post-mortem (§IV); persisting them decouples
capture from analysis entirely — capture on one machine, mine on
another, or archive a profile corpus for regression runs.  The format
is one JSON object per line: a header line per profile followed by its
events, so arbitrarily large captures stream without loading whole
files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from .collector import EventCollector
from .event import AccessEvent
from .profile import AllocationSite, RuntimeProfile
from .types import AccessKind, OperationKind, StructureKind

FORMAT_VERSION = 1


def _profile_header(profile: RuntimeProfile) -> dict:
    header: dict = {
        "type": "profile",
        "version": FORMAT_VERSION,
        "instance_id": profile.instance_id,
        "kind": profile.kind.value,
        "label": profile.label,
        "events": len(profile),
    }
    if profile.site is not None:
        header["site"] = {
            "filename": profile.site.filename,
            "lineno": profile.site.lineno,
            "function": profile.site.function,
            "variable": profile.site.variable,
        }
    return header


def _event_record(event: AccessEvent) -> list:
    """Compact positional encoding: [seq, op, kind, position, size, thread]."""
    return [
        event.seq,
        int(event.op),
        int(event.kind),
        event.position,
        event.size,
        event.thread_id,
    ]


def dump_profiles(profiles: Iterable[RuntimeProfile], fh: TextIO) -> int:
    """Write profiles as JSON lines; returns the profile count."""
    count = 0
    for profile in profiles:
        fh.write(json.dumps(_profile_header(profile)) + "\n")
        for event in profile:
            fh.write(json.dumps(_event_record(event)) + "\n")
        count += 1
    return count


def save_profiles(
    profiles: Iterable[RuntimeProfile], path: str | Path
) -> Path:
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        dump_profiles(profiles, fh)
    return path


def save_collector(collector: EventCollector, path: str | Path) -> Path:
    """Persist everything a (finished) collector captured."""
    return save_profiles(collector.profiles(), path)


def _parse_site(raw: dict | None) -> AllocationSite | None:
    if raw is None:
        return None
    return AllocationSite(
        filename=raw["filename"],
        lineno=raw["lineno"],
        function=raw.get("function", "<module>"),
        variable=raw.get("variable", ""),
    )


def load_profiles(fh: TextIO) -> Iterator[RuntimeProfile]:
    """Stream profiles back from a JSON-lines file."""
    current: RuntimeProfile | None = None
    remaining = 0
    for lineno, line in enumerate(fh, start=1):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if isinstance(record, dict):
            if record.get("type") != "profile":
                raise ValueError(f"line {lineno}: unexpected header {record!r}")
            if record.get("version") != FORMAT_VERSION:
                raise ValueError(
                    f"line {lineno}: unsupported version {record.get('version')!r}"
                )
            if current is not None:
                if remaining:
                    raise ValueError("truncated profile: missing events")
                yield current
            current = RuntimeProfile(
                record["instance_id"],
                kind=StructureKind(record["kind"]),
                site=_parse_site(record.get("site")),
                label=record.get("label", ""),
            )
            remaining = record["events"]
        else:
            if current is None:
                raise ValueError(f"line {lineno}: event before any header")
            if remaining <= 0:
                raise ValueError(f"line {lineno}: more events than declared")
            seq, op, kind, position, size, thread_id = record
            current.append(
                AccessEvent(
                    seq=seq,
                    kind=AccessKind(kind),
                    op=OperationKind(op),
                    position=position,
                    size=size,
                    thread_id=thread_id,
                    instance_id=current.instance_id,
                )
            )
            remaining -= 1
    if current is not None:
        if remaining:
            raise ValueError("truncated profile: missing events")
        yield current


def read_profiles(path: str | Path) -> list[RuntimeProfile]:
    with Path(path).open("r", encoding="utf-8") as fh:
        return list(load_profiles(fh))
