"""The access event record.

DSspy gathers five facts per access event (§IV): a timestamp, whether the
event read or wrote, the target position, the structure size at the
moment of access, and the id of the thread that raised the event.  We add
the compound operation kind and the owning instance id so that events can
be routed to per-instance profiles after collection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .types import AccessKind, OperationKind


@dataclass(frozen=True, slots=True)
class AccessEvent:
    """One interaction with a data structure instance.

    Attributes
    ----------
    seq:
        Logical timestamp -- a strictly increasing collector-wide
        sequence number.  Profiles only need ordering (the paper's
        x-axes are "temporal order"), and logical time keeps every
        experiment deterministic.
    kind:
        Trivial read/write classification.
    op:
        Compound access type derived from the interface method.
    position:
        Index targeted inside the structure, or ``None`` for whole-
        structure operations (``Clear``, ``Sort``, ``Copy`` ...).
    size:
        Number of elements held at the moment of access.
    thread_id:
        Identifier of the thread that raised the event; used to split
        interleaved profiles of multithreaded programs.
    instance_id:
        Id of the data structure instance the event belongs to.
    wall_time:
        Optional wall-clock timestamp (seconds); populated only when
        the collector is configured with ``capture_wall_time=True``.
    """

    seq: int
    kind: AccessKind
    op: OperationKind
    position: int | None
    size: int
    thread_id: int
    instance_id: int
    wall_time: float | None = field(default=None, compare=False)

    @property
    def is_read(self) -> bool:
        return self.kind is AccessKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is AccessKind.WRITE

    @property
    def targets_front(self) -> bool:
        """Whether the event touched the first slot of the structure."""
        return self.position == 0

    @property
    def targets_back(self) -> bool:
        """Whether the event touched the last slot (at event time).

        Insertions that *append* report the position of the new element,
        i.e. ``size - 1`` after growth; both conventions are accepted.
        """
        if self.position is None or self.size == 0:
            return False
        return self.position >= self.size - 1

    def describe(self) -> str:
        """Human-readable one-line rendering used by reports and logs."""
        pos = "-" if self.position is None else str(self.position)
        return (
            f"#{self.seq} {self.op.name.lower()}({self.kind.name.lower()}) "
            f"pos={pos} size={self.size} thread={self.thread_id}"
        )


#: Compact tuple layout used on the hot recording path.  The channel
#: transports plain tuples and the collector materializes
#: :class:`AccessEvent` objects post-mortem, keeping per-access overhead
#: to one tuple allocation and one queue put.
RawEvent = tuple  # (instance_id, op_value, kind_value, position, size, thread_id, wall_time)


def materialize(seq: int, raw: RawEvent) -> AccessEvent:
    """Convert a raw on-the-wire tuple into an :class:`AccessEvent`."""
    instance_id, op_value, kind_value, position, size, thread_id, wall_time = raw
    return AccessEvent(
        seq=seq,
        kind=AccessKind(kind_value),
        op=OperationKind(op_value),
        position=position,
        size=size,
        thread_id=thread_id,
        instance_id=instance_id,
        wall_time=wall_time,
    )
