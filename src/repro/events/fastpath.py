"""Encode-at-record fast path: pack events at the hook, batch bytes.

The legacy pipeline allocates one tuple per event, buffers tuples, and
only encodes them (to spill or wire) on the drainer thread.  This
module removes the intermediate object entirely: the record hook packs
the event straight into the calling thread's ``bytearray`` in the
39-byte spill layout of :mod:`repro.events.spill`, so the hot path is
one kernel call and one buffer extend — nothing to garbage-collect,
nothing to re-encode downstream.

Two kernels implement the same call signature and byte output:

- :data:`repro._fastrecord.Recorder` — a small C extension
  (vectorcall, one-slot thread cache) built opportunistically by
  ``setup.py``; roughly 3× faster than the pure-python kernel.
- :class:`PyRecorder` — the pure-python fallback, a per-thread
  ``struct.pack`` closure cached in a ``threading.local``.

:func:`make_recorder` auto-selects at import time; :data:`KERNEL`
names the winner (``"c"`` or ``"python"``).

Both kernels resolve their per-thread buffer through a *bind*
callable — the slow boundary.  The collector's bind registers the
thread and asks the channel for the thread's buffer via
:meth:`PackedBatchingChannel.acquire_buffer`, which is where the
backpressure gate and (when armed) the runtime guard live: the
per-event store itself is unconditional and ungated.  When the channel
closes its gate it *invalidates* every registered kernel, forcing each
thread's next record back through bind — gate enforcement at rebind
granularity instead of a per-event check.

The legacy tuple path remains fully supported (``fastpath="off"`` on
the collector, or any non-packed channel); the differential oracle
compares the two encoders' spill bytes for equality.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Callable

from .batching import BatchingChannel
from .event import RawEvent
from .spill import MAGIC as SPILL_MAGIC
from .spill import RECORD_SIZE, _RECORD, pack_record, read_spill_raw, unpack_records

try:  # pragma: no cover - exercised only where the extension was built
    from repro._fastrecord import Recorder as _CRecorder
except ImportError:  # pure-python fallback
    _CRecorder = None

#: Which record kernel this process uses: ``"c"`` or ``"python"``.
KERNEL: str = "c" if _CRecorder is not None else "python"


def kernel_name() -> str:
    """Name of the active record kernel (``"c"`` or ``"python"``)."""
    return KERNEL


class PyRecorder:
    """Pure-python record kernel: same signature and byte output as the
    compiled ``Recorder``, one ``struct.pack`` + ``bytearray`` extend
    per event through a thread-local closure.

    ``invalidate()`` swaps the ``threading.local`` wholesale, so every
    thread's next call re-enters ``bind`` (the channel's gate)."""

    __slots__ = ("_bind", "_tls")

    def __init__(self, bind: Callable[[], tuple[int, bytearray]]) -> None:
        self._bind = bind
        self._tls = threading.local()

    def __call__(self, instance_id, op, kind, position, size) -> None:
        try:
            pack = self._tls.pack
        except AttributeError:
            pack = self._rebind()
        pack(instance_id, op, kind, position, size)

    def _rebind(self):
        tid, buf = self._bind()

        def pack(
            instance_id,
            op,
            kind,
            position,
            size,
            _buf=buf,
            _tid=tid,
            _pack=_RECORD.pack,
        ):
            if position is None:
                _buf += _pack(instance_id, 0, size, _tid, op, kind, 0, 0.0)
            else:
                _buf += _pack(instance_id, position, size, _tid, op, kind, 1, 0.0)

        self._tls.pack = pack
        return pack

    def invalidate(self) -> None:
        self._tls = threading.local()


def make_recorder(bind: Callable[[], tuple[int, bytearray]]):
    """The fastest available record kernel bound to ``bind``."""
    if _CRecorder is not None:
        return _CRecorder(bind)
    return PyRecorder(bind)


class PackedBatchingChannel(BatchingChannel):
    """A :class:`BatchingChannel` whose buffers hold packed bytes.

    Per-thread buffers are ``bytearray``\\ s of 39-byte spill records
    instead of lists of tuples; the drainer harvests at record
    granularity (a GIL-atomic slice-and-delete of whole records) and
    absorbs raw bytes — a spill write is a straight ``write`` with no
    re-encoding, and the master buffer is one flat ``bytearray``.

    The channel stays protocol-compatible with every other transport:
    :meth:`post`/:meth:`producer` accept raw event tuples (packing at
    post time), and :meth:`drain`/:meth:`snapshot` decode back to
    tuples for the collector's post-mortem assembly.  The real win is
    the *kernel* path: fast-path recorders write into the buffer
    handed out by :meth:`acquire_buffer` directly, skipping tuples in
    both directions.

    ``sink`` callbacks receive the packed ``bytes`` of each absorbed
    batch (record multiple), not tuple lists.
    """

    #: Collector-visible capability flag: buffers are packed records.
    packed = True

    def __init__(self, **kwargs) -> None:
        self._invalidate_cbs: list[Callable[[], None]] = []
        self._decoded: list[RawEvent] | None = None
        super().__init__(**kwargs)
        # The drainer is already running, but no producer can exist
        # before the constructor returns, so swapping the (empty)
        # master list for a bytearray here is race-free.
        self._master = bytearray()  # type: ignore[assignment]

    # -- fast-path kernel hooks -------------------------------------------

    def add_invalidate_listener(self, callback: Callable[[], None]) -> None:
        """Register a kernel's ``invalidate`` to be called whenever the
        backpressure gate closes (and on fork reinit)."""
        self._invalidate_cbs.append(callback)

    def _invalidate_kernels(self) -> None:
        for callback in self._invalidate_cbs:
            try:
                callback()
            except Exception:
                pass  # a broken kernel must not kill the drainer

    def acquire_buffer(self) -> bytearray:
        """The calling thread's packed buffer (the kernel bind path).

        Under the ``block`` policy this is where backpressure bites:
        a closed gate makes the bind wait (and eventually raise), so
        gated threads stop producing without any per-event check."""
        if self._policy == "block" and not self._open[0]:
            self._gate_wait()
        return self._register_thread()

    def _gate_wait(self) -> None:
        if not self._gate.wait(self._block_timeout):
            raise RuntimeError(
                f"backpressure: more than {self._max_buffered} events buffered "
                f"and nothing drained them within {self._block_timeout}s "
                f"(use a spill file or the 'drop' policy for unbounded captures)"
            )

    # -- producer side (tuple protocol) ------------------------------------

    def _register_thread(self) -> bytearray:  # type: ignore[override]
        ident = threading.get_ident()
        with self._registry_lock:
            buf = self._buffers.get(ident)
            if buf is None:
                buf = self._buffers[ident] = bytearray()
        return buf  # type: ignore[return-value]

    def producer(self):
        """Tuple-accepting producer (protocol compatibility): packs the
        full raw tuple — including a wall time, when present — at post
        time.  Collectors whose fast path can engage bypass this via
        :meth:`acquire_buffer` instead."""
        buf = self._register_thread()
        if self._policy == "drop":

            def produce(raw, _buf=buf, _pack=pack_record):
                _buf += _pack(raw)

            return produce
        open_cell = self._open
        gate_wait = self._gate_wait

        def produce(raw, _buf=buf, _pack=pack_record, _open=open_cell, _wait=gate_wait):
            if not _open[0]:
                _wait()
            _buf += _pack(raw)

        return produce

    # -- drainer -----------------------------------------------------------

    def _harvest_all(self) -> None:
        if (
            self._stopping
            and self._writer is None
            and self._policy != "drop"
            and self._sink is None
        ):
            self._harvest_terminal()
            return
        with self._registry_lock:
            buffers = list(self._buffers.values())
        span = self._batch_size * RECORD_SIZE
        for buf in buffers:
            n = len(buf) - len(buf) % RECORD_SIZE
            if not n:
                continue
            harvested = bytes(buf[:n])
            del buf[:n]
            for i in range(0, n, span):
                self._absorb(harvested[i : i + span])
        if self._policy == "block" and self._writer is None and not self._failed_open:
            over = len(self._master) // RECORD_SIZE > self._max_buffered
            if over and self._open[0]:
                self._open[0] = False
                self._gate.clear()
                # Force every kernel back through acquire_buffer, where
                # the closed gate blocks it.
                self._invalidate_kernels()
            elif not over and not self._open[0]:
                self._open[0] = True
                self._gate.set()

    def _harvest_terminal(self) -> None:
        """Zero-copy final harvest: take the thread buffers wholesale.

        Producers must be quiescent at drain time (the channel-wide
        contract), so the buffer objects themselves can become — or
        extend — the master instead of paying the slice-to-bytes plus
        master-extend double copy of the concurrent harvest.  Each
        taken buffer is replaced by a fresh one and every kernel is
        invalidated, so even a contract-violating straggler rebinds
        into an empty buffer rather than scribbling over the drained
        capture."""
        with self._registry_lock:
            taken = [buf for buf in self._buffers.values() if buf]
            for ident in list(self._buffers):
                if self._buffers[ident]:
                    self._buffers[ident] = bytearray()
        self._invalidate_kernels()
        for buf in taken:
            n = len(buf) - len(buf) % RECORD_SIZE
            if not n:
                continue
            del buf[n:]  # a torn tail record can only be fault debris
            if not self._master:
                self._master = buf
            else:
                self._master += buf
            self._absorbed += n // RECORD_SIZE

    def _absorb(self, chunk: bytes) -> None:  # type: ignore[override]
        count = len(chunk) // RECORD_SIZE
        if self._writer is not None:
            self._writer.write_packed(chunk)
            self._absorbed += count
            self._notify_sink(chunk)
            return
        if self._policy == "drop":
            room = self._max_buffered - len(self._master) // RECORD_SIZE
            if room <= 0:
                self._dropped += count
                return
            if count > room:
                self._dropped += count - room
                chunk = chunk[: room * RECORD_SIZE]
                count = room
        self._master += chunk
        self._absorbed += count
        self._notify_sink(chunk)

    # -- fail-open / fork safety -------------------------------------------

    def _after_fork_child(self, policy: str) -> None:
        super()._after_fork_child(policy)
        self._master = bytearray()  # type: ignore[assignment]
        self._decoded = None
        # Cached kernel buffers belong to the parent's buffer map.
        self._invalidate_kernels()

    # -- drain / snapshot --------------------------------------------------

    def _stop_drainer(self) -> None:
        """Terminal harvest: stop the drainer and absorb every buffer
        (idempotent; the decoding siblings below build on it)."""
        if self._closed:
            return
        self._closed = True
        self._stopping = True
        self._open[0] = True
        self._gate.set()
        self._wake.set()
        self._drainer.join(timeout=max(self._block_timeout, 1.0))
        if self._drainer.is_alive():
            raise RuntimeError(
                f"batching drainer did not stop within "
                f"{max(self._block_timeout, 1.0):.1f}s during drain"
            )
        if self._drainer_error is not None:
            try:
                self._harvest_all()
            except Exception:
                pass
        if self._writer is not None:
            self._writer.close()

    def drain_packed(self) -> bytes | bytearray:
        """Terminal drain *without decoding*: the capture as packed
        records, ready for a spill write or the wire as-is.

        This is the fast architecture's natural end state — events are
        durable bytes and tuple materialization is deferred to whoever
        analyzes them (mirroring how the legacy channel defers
        ``AccessEvent`` materialization).  :meth:`drain` decodes from
        the same harvest, so both may be called in either order.

        Returns the master buffer itself (the channel is closed, so it
        can no longer change) rather than paying a defensive copy."""
        self._stop_drainer()
        if self._writer is not None:
            return Path(self.spill_path).read_bytes()[len(SPILL_MAGIC):]
        return self._master

    def drain(self) -> list[RawEvent]:
        if self._decoded is None:
            self._stop_drainer()
            if self._writer is not None:
                self._decoded = read_spill_raw(self.spill_path)
            else:
                self._decoded = unpack_records(self._master)
        return self._decoded

    def snapshot(self) -> list[RawEvent]:
        if self._closed:
            return list(self._decoded) if self._decoded is not None else []
        if not self._drainer.is_alive():
            try:
                self._harvest_all()
            except Exception:
                pass
        else:
            with self._snapshot_lock:
                done = threading.Event()
                self._flush_done = done
                self._wake.set()
                if not done.wait(self._block_timeout):
                    raise TimeoutError(
                        "batching drainer did not complete the snapshot harvest"
                    )
        if self._writer is not None:
            self._writer.flush()
            return read_spill_raw(self.spill_path)
        return unpack_records(self._master)

    # -- introspection -----------------------------------------------------

    @property
    def pending(self) -> int:
        with self._registry_lock:
            unharvested = sum(len(b) for b in self._buffers.values()) // RECORD_SIZE
        return self._absorbed + self._dropped + unharvested
