"""Compact binary spill format for long captures.

A million raw event tuples cost ~100 MB of Python object memory; the
same events spill to ~37 MB of flat records on disk.  The format is
deliberately dumb — a magic header followed by fixed-width
``struct``-packed records, append-only, no index — so the writer is one
``pack`` and one buffered ``write`` per batch and a truncated file loses
at most its tail.

Layout::

    8 bytes   magic  b"DSPYSP01"
    N * 39    records, little-endian:
              instance_id  int64
              position     int64   (valid only when flags bit 0 is set)
              size         int64
              thread_id    int32
              op           uint8
              kind         uint8
              flags        uint8   (bit 0: has position, bit 1: has wall time)
              wall_time    float64 (valid only when flags bit 1 is set)

Readers come in two flavors: :func:`iter_spill_raw` rehydrates the
channel's on-the-wire tuples (what a drained channel would have
returned), and :func:`iter_spill_events` goes straight to
:class:`~repro.events.event.AccessEvent` objects with logical
timestamps stamped in file order, ready for the detector and use-case
engine.  Both stream — a capture larger than RAM can still be analyzed
profile-by-profile.
"""

from __future__ import annotations

import struct
import warnings
from pathlib import Path
from typing import BinaryIO, Callable, Iterable, Iterator

from .event import AccessEvent, RawEvent, materialize
from .types import AccessKind, OperationKind

MAGIC = b"DSPYSP01"

_RECORD = struct.Struct("<qqqiBBBd")
RECORD_SIZE = _RECORD.size

_HAS_POSITION = 1
_HAS_WALL = 2
_KNOWN_FLAGS = _HAS_POSITION | _HAS_WALL

_MAX_OP = max(OperationKind)
_MAX_KIND = max(AccessKind)


def pack_record(raw: RawEvent) -> bytes:
    """Pack one raw event tuple into a fixed-width spill record.

    Also the payload encoding of the service wire protocol's EVENTS
    frames (:mod:`repro.service.protocol`), so client and daemon agree
    with the spill files byte for byte.
    """
    instance_id, op, kind, position, size, thread_id, wall = raw
    flags = 0
    if position is not None:
        flags |= _HAS_POSITION
    else:
        position = 0
    if wall is not None:
        flags |= _HAS_WALL
    else:
        wall = 0.0
    return _RECORD.pack(instance_id, position, size, thread_id, op, kind, flags, wall)


def unpack_record(chunk: bytes) -> RawEvent:
    """Inverse of :func:`pack_record` (exactly ``RECORD_SIZE`` bytes)."""
    instance_id, position, size, thread_id, op, kind, flags, wall = _RECORD.unpack(chunk)
    return (
        instance_id,
        op,
        kind,
        position if flags & _HAS_POSITION else None,
        size,
        thread_id,
        wall if flags & _HAS_WALL else None,
    )


# Backwards-compatible private aliases (pre-service internal names).
_pack = pack_record
_unpack = unpack_record


def unpack_records(data: bytes | bytearray | memoryview) -> list[RawEvent]:
    """Decode a block of packed records back into raw event tuples.

    The inverse of the encode-at-record fast path
    (:mod:`repro.events.fastpath`): ``data`` must be a whole number of
    :data:`RECORD_SIZE`-byte records.
    """
    if len(data) % RECORD_SIZE:
        raise ValueError(
            f"packed block of {len(data)} bytes is not a multiple of "
            f"the {RECORD_SIZE}-byte record size"
        )
    return [
        (
            instance_id,
            op,
            kind,
            position if flags & _HAS_POSITION else None,
            size,
            thread_id,
            wall if flags & _HAS_WALL else None,
        )
        for instance_id, position, size, thread_id, op, kind, flags, wall
        in _RECORD.iter_unpack(bytes(data))
    ]


def record_is_plausible(chunk: bytes) -> bool:
    """Cheap validity screen for one packed record.

    The format has no per-record checksum, so after a torn write (a
    daemon crash mid-batch) the reader can land mid-record and decode
    garbage.  Field-range checks catch essentially all such
    misalignments: op and kind must be valid enum values, flags must
    only use defined bits, and size must be non-negative.
    """
    _, position, size, thread_id, op, kind, flags, _ = _RECORD.unpack(chunk)
    return (
        op <= _MAX_OP
        and kind <= _MAX_KIND
        and flags & ~_KNOWN_FLAGS == 0
        and size >= 0
        and position >= 0
        and thread_id >= 0
    )


class SpillWriter:
    """Append-only writer; one ``write`` syscall per batch."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: BinaryIO | None = self.path.open("wb")
        self._fh.write(MAGIC)
        self._count = 0

    @property
    def count(self) -> int:
        """Records written so far."""
        return self._count

    @property
    def closed(self) -> bool:
        return self._fh is None

    def write(self, raw: RawEvent) -> None:
        self.write_batch((raw,))

    def write_batch(self, batch: Iterable[RawEvent]) -> None:
        if self._fh is None:
            raise RuntimeError("spill writer already closed")
        chunk = bytearray()
        n = 0
        for raw in batch:
            chunk += _pack(raw)
            n += 1
        self._fh.write(bytes(chunk))
        self._count += n

    def write_packed(self, data: bytes | bytearray) -> None:
        """Write records already packed by the encode-at-record fast
        path: one ``write``, zero re-encoding."""
        if self._fh is None:
            raise RuntimeError("spill writer already closed")
        if len(data) % RECORD_SIZE:
            raise ValueError(
                f"packed block of {len(data)} bytes is not a multiple of "
                f"the {RECORD_SIZE}-byte record size"
            )
        self._fh.write(bytes(data))
        self._count += len(data) // RECORD_SIZE

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SpillWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def iter_spill_raw(
    path: str | Path, on_skip: "Callable[[int], None] | None" = None
) -> Iterator[RawEvent]:
    """Stream raw event tuples back from a spill file, in file order.

    A bad magic header still raises (the file is not a spill file at
    all), and a truncated tail still ends the stream silently, but a
    corrupt record in the middle of the file — a torn write from a
    crashed daemon, a flipped byte on disk — is *skipped* rather than
    poisoning every later record: its slot is dropped, the skip is
    counted, and one :class:`RuntimeWarning` summarizing the count is
    emitted when the stream ends.  ``on_skip`` (if given) additionally
    receives the final skip count, so callers with their own ledgers —
    session STATS, the chaos invariant monitor — can account the loss
    instead of losing it to a warning filter.  Validity is judged by
    :func:`record_is_plausible`; record boundaries are assumed intact
    (the format is fixed-width append-only, so corruption overwrites
    bytes in place rather than shifting them).
    """
    skipped = 0
    with Path(path).open("rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise ValueError(f"{path}: not a DSspy spill file (bad magic {magic!r})")
        while True:
            chunk = fh.read(RECORD_SIZE * 4096)
            if not chunk:
                break
            complete = len(chunk) - len(chunk) % RECORD_SIZE
            for offset in range(0, complete, RECORD_SIZE):
                record = chunk[offset:offset + RECORD_SIZE]
                if record_is_plausible(record):
                    yield unpack_record(record)
                else:
                    skipped += 1
            if complete != len(chunk):
                # Append-only file truncated mid-record (e.g. a killed
                # capture); everything before the tear is still valid.
                break
    if skipped:
        if on_skip is not None:
            on_skip(skipped)
        warnings.warn(
            f"{path}: skipped {skipped} corrupt spill record(s)",
            RuntimeWarning,
            stacklevel=2,
        )


def read_spill_raw(path: str | Path) -> list[RawEvent]:
    return list(iter_spill_raw(path))


def iter_spill_events(path: str | Path, start_seq: int = 0) -> Iterator[AccessEvent]:
    """Stream rehydrated :class:`AccessEvent`\\ s with sequential logical
    timestamps, exactly as :meth:`EventCollector.finish` would stamp
    them for an in-memory capture of the same stream."""
    for seq, raw in enumerate(iter_spill_raw(path), start=start_seq):
        yield materialize(seq, raw)


def read_spill_events(path: str | Path) -> list[AccessEvent]:
    return list(iter_spill_events(path))
