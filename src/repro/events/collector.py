"""The event collector: instance registry + event routing.

One :class:`EventCollector` corresponds to one DSspy capture session.
Tracked structures register themselves on construction (obtaining an
instance id) and call :meth:`EventCollector.record` on every interface
method.  After the workload finishes, :meth:`EventCollector.finish`
drains the channel, stamps logical timestamps in arrival order, and
routes each event into the :class:`~repro.events.profile.RuntimeProfile`
of its instance.

A module-level *ambient* collector makes tracked structures usable
without ceremony; the :func:`collecting` context manager installs a
fresh collector for deterministic, isolated captures::

    with collecting() as session:
        xs = TrackedList()
        xs.append(1)
    profile = session.profiles_by_label()[""]
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from .channel import AsyncChannel, Channel, SynchronousChannel
from .event import materialize
from .profile import AllocationSite, RuntimeProfile
from .sampling import RecordAll, SamplingPolicy
from .types import AccessKind, OperationKind, StructureKind


class EventCollector:
    """Registry of instrumented instances and their event streams.

    Parameters
    ----------
    channel:
        Event transport; defaults to a :class:`SynchronousChannel`.
        Pass an :class:`AsyncChannel` to decouple recording from
        accumulation the way the paper's analysis process does, or a
        :class:`~repro.events.batching.BatchingChannel` for the
        low-overhead batched pipeline.
    capture_wall_time:
        When true, each event also carries ``time.perf_counter()``.
        Off by default: the analyses need only ordering, and logical
        time keeps experiments deterministic.
    sampling:
        Optional :class:`~repro.events.sampling.SamplingPolicy` applied
        before the channel post.  ``None`` (and :class:`RecordAll`)
        keep the full-capture hot path unchanged — not even a policy
        call is paid.
    fastpath:
        ``"auto"`` (default) engages the encode-at-record fast path of
        :mod:`repro.events.fastpath` when the channel supports it (a
        :class:`~repro.events.fastpath.PackedBatchingChannel`), no
        sampling policy is installed, and wall-time capture is off: the
        :meth:`record` entry point is replaced *on this instance* by a
        pre-bound record kernel that packs events straight into
        per-thread byte buffers.  ``"off"`` keeps the legacy
        tuple-object path regardless of the channel — the testing
        oracle uses it to diff the two encoders byte for byte.
    """

    def __init__(
        self,
        channel: Channel | None = None,
        capture_wall_time: bool = False,
        sampling: SamplingPolicy | None = None,
        fastpath: str = "auto",
    ) -> None:
        if fastpath not in ("auto", "off"):
            raise ValueError(f"fastpath must be 'auto' or 'off', got {fastpath!r}")
        self._channel: Channel = channel if channel is not None else SynchronousChannel()
        self._post = self._channel.post
        self._tls = threading.local()
        self._capture_wall_time = capture_wall_time
        if sampling is not None and type(sampling) is RecordAll:
            sampling = None
        self._sampler = sampling
        self._sampled_out = 0
        self._lock = threading.Lock()
        self._next_instance_id = 0
        self._profiles: dict[int, RuntimeProfile] = {}
        self._thread_ids: dict[int, int] = {}
        self._finished = False
        self._assembled = 0
        self._recorder = None
        self._fastpath_kind: str | None = None
        if (
            fastpath == "auto"
            and self._sampler is None
            and not capture_wall_time
            and getattr(self._channel, "packed", False)
        ):
            self._enable_fastpath()

    # -- registration ---------------------------------------------------

    def register_instance(
        self,
        kind: StructureKind,
        site: AllocationSite | None = None,
        label: str = "",
    ) -> int:
        """Assign an instance id and create its (empty) profile.

        Channels exposing an ``on_register`` hook (the service layer's
        :class:`~repro.service.client.RemoteChannel`) are notified after
        the id is assigned, so a remote analyzer learns each instance's
        kind/site/label without those ever entering the hot event path.
        """
        with self._lock:
            instance_id = self._next_instance_id
            self._next_instance_id += 1
            self._profiles[instance_id] = RuntimeProfile(
                instance_id, kind=kind, site=site, label=label
            )
        notify = getattr(self._channel, "on_register", None)
        if notify is not None:
            notify(instance_id, kind, site, label)
        return instance_id

    def _dense_thread_id(self) -> int:
        native = threading.get_ident()
        tid = self._thread_ids.get(native)
        if tid is None:
            with self._lock:
                tid = self._thread_ids.setdefault(native, len(self._thread_ids))
        return tid

    # -- encode-at-record fast path ---------------------------------------

    def _enable_fastpath(self) -> None:
        """Install the record kernel as this instance's ``record``.

        Pre-bound dispatch: the kernel object *shadows* the class-level
        :meth:`record` method on this instance, so tracked structures —
        which cache ``collector.record`` at construction — call the
        kernel directly with zero Python-level indirection per event.
        """
        from .fastpath import kernel_name, make_recorder

        recorder = make_recorder(self._fast_bind)
        self._recorder = recorder
        self._fastpath_kind = kernel_name()
        add = getattr(self._channel, "add_invalidate_listener", None)
        if add is not None:
            add(recorder.invalidate)
        self.record = recorder  # type: ignore[method-assign]

    def _fast_bind(self) -> tuple[int, bytearray]:
        """Slow boundary of the fast path (one call per thread per
        epoch): register the thread, then let the channel enforce its
        backpressure gate before handing out the packed buffer."""
        return (self._dense_thread_id(), self._channel.acquire_buffer())

    @property
    def fastpath(self) -> str | None:
        """Active record kernel (``"c"`` or ``"python"``), or ``None``
        when the legacy tuple path is in effect."""
        return self._fastpath_kind

    def _thread_state(self) -> tuple[int, Channel]:
        """Register the calling thread and cache its hot-path pair
        ``(dense thread id, produce callable)`` in a thread-local.

        ``produce`` is the channel's per-thread :meth:`producer` fast
        path when it offers one (the batching channel), otherwise the
        bound ``post``; either way :meth:`record` pays one thread-local
        getattr per event instead of ``get_ident`` + dict probe +
        channel dispatch."""
        tid = self._dense_thread_id()
        producer = getattr(self._channel, "producer", None)
        produce = producer() if producer is not None else self._post
        state = (tid, produce)
        self._tls.state = state
        return state

    # -- fork safety -----------------------------------------------------

    def _after_fork_child(self, policy: str) -> None:
        """Reinitialize after ``fork()`` (runs in the child).

        Called by :mod:`repro.runtime.lifecycle`'s at-fork handler.
        Locks and thread-locals frozen at the fork point are replaced
        (never acquired — their state is arbitrary), and the channel
        gets the same treatment through its own ``_after_fork_child``
        when it has one.  ``policy`` is forwarded so a networked
        channel can choose between re-registering a fresh session and
        self-disabling."""
        self._lock = threading.Lock()
        self._tls = threading.local()
        if self._recorder is not None:
            # Kernel caches point at the parent's buffer map; drop them
            # so every thread rebinds into the child's fresh channel.
            self._recorder.invalidate()
        handler = getattr(self._channel, "_after_fork_child", None)
        if handler is not None:
            handler(policy)

    # -- hot recording path ----------------------------------------------

    def record(
        self,
        instance_id: int,
        op: OperationKind,
        kind: AccessKind,
        position: int | None,
        size: int,
    ) -> None:
        """Record one access event (called by tracked structures)."""
        sampler = self._sampler
        if sampler is not None and not sampler.admit(instance_id):
            self._sampled_out += 1
            return
        tls = self._tls
        try:
            tid, produce = tls.state
        except AttributeError:
            tid, produce = self._thread_state()
        wall = time.perf_counter() if self._capture_wall_time else None
        produce((instance_id, int(op), int(kind), position, size, tid, wall))

    # -- post-mortem assembly ---------------------------------------------

    def _assemble(self, raws: list) -> None:
        for seq in range(self._assembled, len(raws)):
            event = materialize(seq, raws[seq])
            profile = self._profiles.get(event.instance_id)
            if profile is not None:
                profile.append(event)
        self._assembled = len(raws)

    def assemble(self) -> dict[int, RuntimeProfile]:
        """Materialize newly recorded events without closing the channel.

        Lets callers inspect profiles mid-session; recording continues
        afterwards.  :meth:`finish` performs the terminal drain.
        """
        if not self._finished:
            self._assemble(self._channel.snapshot())
        return self._profiles

    def finish(self) -> dict[int, RuntimeProfile]:
        """Drain the channel and assemble all runtime profiles.

        Idempotent: subsequent calls return the already-assembled
        profiles.
        """
        if not self._finished:
            self._finished = True
            self._assemble(self._channel.drain())
        return self._profiles

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def channel(self) -> Channel:
        """The event transport this collector records into."""
        return self._channel

    @property
    def sampling(self) -> SamplingPolicy | None:
        """The active sampling policy (``None`` means full capture)."""
        return self._sampler

    @property
    def sampled_out(self) -> int:
        """Events the sampling policy skipped (approximate while
        recording is concurrent; exact once the workload quiesces)."""
        return self._sampled_out

    @property
    def event_count(self) -> int:
        """Events recorded so far (exact once finished)."""
        if self._finished:
            return sum(len(p) for p in self._profiles.values())
        return self._channel.pending

    @property
    def instance_count(self) -> int:
        return len(self._profiles)

    def profiles(self) -> list[RuntimeProfile]:
        """All profiles, ordered by instance id (assembled up to now;
        the channel stays open until :meth:`finish`)."""
        assembled = self.assemble()
        return [assembled[i] for i in sorted(assembled)]

    def nonempty_profiles(self) -> list[RuntimeProfile]:
        """Profiles that observed at least one event."""
        return [p for p in self.profiles() if len(p)]

    def profiles_by_label(self) -> dict[str, RuntimeProfile]:
        """Label → profile; later registrations win duplicate labels."""
        return {p.label: p for p in self.profiles()}

    def profile_of(self, instance_id: int) -> RuntimeProfile:
        return self.assemble()[instance_id]


# -- ambient collector ----------------------------------------------------

_ambient = EventCollector()
_stack: list[EventCollector] = []
_stack_lock = threading.Lock()


def get_collector() -> EventCollector:
    """The collector new tracked structures attach to."""
    with _stack_lock:
        return _stack[-1] if _stack else _ambient


def push_collector(collector: EventCollector) -> None:
    with _stack_lock:
        _stack.append(collector)


def pop_collector() -> EventCollector:
    with _stack_lock:
        return _stack.pop()


def reset_ambient() -> EventCollector:
    """Replace the ambient collector (test isolation helper)."""
    global _ambient
    _ambient = EventCollector()
    return _ambient


def iter_collectors() -> list[EventCollector]:
    """Every live collector: ambient plus the installed stack.

    Used by the lifecycle handlers (at-fork reinit, atexit drain).
    Deliberately lock-free — the list copy is GIL-atomic, and the fork
    handler must not touch a lock that may have been held at the fork
    point."""
    return [_ambient, *list(_stack)]


@contextmanager
def collecting(
    channel: Channel | None = None,
    capture_wall_time: bool = False,
    asynchronous: bool = False,
    sampling: SamplingPolicy | None = None,
    fastpath: str = "auto",
) -> Iterator[EventCollector]:
    """Install a fresh collector for the duration of the block.

    The collector is finished (channel drained, profiles assembled) on
    exit, so profiles are ready for analysis immediately afterwards.
    """
    if channel is None and asynchronous:
        channel = AsyncChannel()
    collector = EventCollector(
        channel=channel,
        capture_wall_time=capture_wall_time,
        sampling=sampling,
        fastpath=fastpath,
    )
    push_collector(collector)
    try:
        yield collector
    finally:
        pop_collector()
        from ..runtime.guard import active_guard

        guard = active_guard()
        if guard is not None:
            # Fail-open mode: the terminal drain is bounded by the
            # guard's exit deadline and its exceptions are contained —
            # a wedged transport cannot hang or crash the host here.
            from ..runtime.lifecycle import finish_with_deadline

            finish_with_deadline(collector, guard)
        else:
            collector.finish()
