"""Access-event vocabulary for runtime profiles.

The paper (§IV) distinguishes *trivial* access kinds -- did the event read
or write the data structure -- from *compound* access types such as
``Insert``, ``Search``, ``Delete``, ``Clear``, ``Copy``, ``Reverse``,
``Sort`` and ``ForAll``.  Both taxonomies are represented here as small
integer enums so that event streams can be stored compactly and analyzed
with vectorized numpy code.
"""

from __future__ import annotations

import enum


class AccessKind(enum.IntEnum):
    """Trivial access classification: did the event read or write?

    Every access event carries exactly one :class:`AccessKind`.  Events
    that both read and write (e.g. an in-place sort) are recorded as a
    sequence of finer-grained events by the instrumented structures, so
    the dichotomy is preserved.
    """

    READ = 0
    WRITE = 1


class OperationKind(enum.IntEnum):
    """Compound access types derived from the interface method invoked.

    Mirrors the paper's list: the trivial types ``Read`` and ``Write``
    plus the compound types ``Insert``, ``Search``, ``Delete``,
    ``Clear``, ``Copy``, ``Reverse``, ``Sort`` and ``ForAll``.  ``INIT``
    and ``RESIZE`` are implementation events emitted by the tracked
    structures (construction and capacity growth) that several use-case
    rules need (e.g. Insert/Delete-Front's copy-overhead reasoning).
    """

    READ = 0
    WRITE = 1
    INSERT = 2
    DELETE = 3
    SEARCH = 4
    CLEAR = 5
    COPY = 6
    REVERSE = 7
    SORT = 8
    FORALL = 9
    INIT = 10
    RESIZE = 11

    @property
    def is_read_like(self) -> bool:
        """True for operations whose primary effect is observing data."""
        return self in _READ_LIKE

    @property
    def is_write_like(self) -> bool:
        """True for operations whose primary effect is mutating data."""
        return self in _WRITE_LIKE


_READ_LIKE = frozenset(
    {
        OperationKind.READ,
        OperationKind.SEARCH,
        OperationKind.COPY,
        OperationKind.FORALL,
    }
)

_WRITE_LIKE = frozenset(
    {
        OperationKind.WRITE,
        OperationKind.INSERT,
        OperationKind.DELETE,
        OperationKind.CLEAR,
        OperationKind.REVERSE,
        OperationKind.SORT,
        OperationKind.RESIZE,
    }
)


class StructureKind(enum.Enum):
    """The container species a profile belongs to.

    The empirical study (§II) counts these kinds across the corpus;
    :class:`~repro.study.occurrence.OccurrenceStudy` relies on the enum
    values matching the spelling used in the paper's Figure 1.
    """

    LIST = "list"
    ARRAY = "array"
    DICTIONARY = "dictionary"
    ARRAY_LIST = "arraylist"
    STACK = "stack"
    QUEUE = "queue"
    HASH_SET = "hashset"
    SORTED_LIST = "sortedlist"
    SORTED_SET = "sortedset"
    SORTED_DICTIONARY = "sorteddictionary"
    LINKED_LIST = "linkedlist"
    HASHTABLE = "hashtable"
    OTHER = "other"

    @property
    def is_linear(self) -> bool:
        """Linear (positionally indexed) structures carry the paper's
        pattern analysis; associative ones only participate in the
        occurrence study."""
        return self in (
            StructureKind.LIST,
            StructureKind.ARRAY,
            StructureKind.ARRAY_LIST,
            StructureKind.STACK,
            StructureKind.QUEUE,
            StructureKind.SORTED_LIST,
            StructureKind.LINKED_LIST,
        )


#: Operations that target a position at the *front* of a structure.
FRONT = 0


def end_of(size: int) -> int:
    """Index that counts as the *back* of a structure of ``size`` elements."""
    return max(size - 1, 0)
