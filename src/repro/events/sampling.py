"""Sampling policies for the hot recording path.

The paper keeps the instrumentation slowdown tolerable by doing nothing
but recording at runtime (§IV), yet Table IV still reports a 47× average
slowdown — the cost of recording *every* event.  Sampling profilers
(TASKPROF, PROMPT) show that decimated event streams preserve enough
structure for detection while cutting overhead proportionally.  A
:class:`SamplingPolicy` decides, per event, whether the collector posts
it to the channel at all.

Three policies are provided:

``RecordAll``
    The identity policy (paper-faithful full capture).  The collector
    special-cases it to literally zero added cost.

``Decimate``
    1-in-N decimation with an independent counter per instance, so a
    chatty instance cannot starve a quiet one.  Admission is *jittered*:
    one pseudo-random event per block of N rather than every N-th event.
    Strided decimation aliases against periodic access patterns — a
    read-modify-write loop has period 2, so "every 10th op" sees only
    one phase of it and the captured op mix is wildly biased.  Jitter
    decorrelates the sample from any fixed period while keeping the
    exact 1-in-N rate and full determinism (the offset is a hash of the
    block index and instance id, not a global RNG).

``Burst``
    Keeps the first K events of every instance verbatim, then falls
    back to jittered 1-in-N decimation.  Instances with at most K
    events — in practice most of the analysis search space — are
    captured *exactly*; only the heavy hitters that dominate recording
    cost get thinned.  The analysis side exploits the split: see
    :meth:`~repro.usecases.engine.UseCaseEngine.analyze_collector`,
    which applies the paper's engine to exact instances and a
    stride-recalibrated engine to the decimated ones.

Decimated captures stretch position deltas: a Read-Forward scan sampled
1-in-10 with jitter steps by 1..19 positions per surviving event.
Analyze them with a gap-tolerant detector —
:meth:`~repro.usecases.engine.UseCaseEngine.for_sampling` builds one
from the policy's :attr:`~SamplingPolicy.stride`.

Counters are plain dict updates without locking: under free threading a
race can very occasionally admit or skip one extra event.  Sampling is
approximate by construction, so this is documented rather than paid for
with a hot-path lock.
"""

from __future__ import annotations

# Jitter hash multipliers: Knuth's MMIX LCG multiplier truncated to 31
# bits for the block term, and a Weyl-ish odd constant for the instance
# term.  Quality requirements are mild — any odd multipliers that
# decorrelate (block, instance) pairs from small periods will do.
_BLOCK_MIX = 1103515245
_INSTANCE_MIX = 747796405
_JITTER_MASK = 0x7FFFFFFF
_DEFAULT_SALT = 12345
_SEED_MIX = 0x9E3779B1  # golden-ratio odd constant (Fibonacci hashing)


def _salt_from_seed(seed: int | None) -> int:
    """Additive salt for the jitter hash.  ``None`` keeps the historic
    constant so unseeded policies admit exactly the events they always
    have (overhead baselines depend on that)."""
    if seed is None:
        return _DEFAULT_SALT
    return ((seed * _SEED_MIX) + _DEFAULT_SALT) & _JITTER_MASK


class SamplingPolicy:
    """Base policy: admit everything.

    Subclasses override :meth:`admit`; it runs once per recorded event,
    so implementations must stay allocation-free and branch-light.
    """

    #: Steady-state thinning factor (1 admitted per ``stride`` events,
    #: per instance).  The analysis side uses it to widen the pattern
    #: detector's ``max_gap`` and rescale count thresholds.
    stride: int = 1

    def admit(self, instance_id: int) -> bool:
        """Whether the next event of ``instance_id`` should be recorded."""
        return True

    def is_exact(self, instance_id: int) -> bool:
        """Whether everything this instance did so far was admitted.

        Exact instances can be analyzed with the paper's unmodified
        engine; decimated ones need the stride-recalibrated engine."""
        return True

    def exact_prefix(self, instance_id: int) -> int:
        """How many *leading captured events* of this instance's profile
        were recorded at full rate (the burst prefix).

        Zero for uniform policies.  The analysis side drops the prefix
        when analyzing a decimated instance, because mixing full-rate
        and thinned regimes in one profile biases every fraction-based
        rule toward whatever the prefix contains."""
        return 0

    def describe(self) -> str:
        return "record-all"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class RecordAll(SamplingPolicy):
    """Full capture (the paper's behavior)."""


#: Shared identity policy; ``EventCollector`` treats it like ``None``.
RECORD_ALL = RecordAll()


def _jitter(block: int, instance_id: int, n: int, salt: int = _DEFAULT_SALT) -> int:
    """Deterministic pseudo-random offset in ``[0, n)`` for one block."""
    return (
        (block * _BLOCK_MIX + instance_id * _INSTANCE_MIX + salt) & _JITTER_MASK
    ) % n


class Decimate(SamplingPolicy):
    """Keep 1 event in every ``n``, counted per instance, with jitter.

    ``seed`` perturbs the jitter hash: runs with the same seed admit
    bit-identical event sets (reproducible experiments), different
    seeds draw an independent 1-in-``n`` sample (for averaging out
    sampling luck across repeated runs).  ``None`` — the default —
    preserves the historic unseeded jitter exactly.
    """

    def __init__(self, n: int, seed: int | None = None) -> None:
        if n < 1:
            raise ValueError(f"decimation factor must be >= 1, got {n}")
        self.n = n
        self.stride = n
        self.seed = seed
        self._salt = _salt_from_seed(seed)
        self._counts: dict[int, int] = {}

    def admit(self, instance_id: int) -> bool:
        counts = self._counts
        c = counts.get(instance_id, 0)
        counts[instance_id] = c + 1
        if self.n == 1:
            return True
        block, offset = divmod(c, self.n)
        return offset == _jitter(block, instance_id, self.n, self._salt)

    def is_exact(self, instance_id: int) -> bool:
        return self.n == 1

    def observed(self, instance_id: int) -> int:
        """Total events this instance produced (admitted or not)."""
        return self._counts.get(instance_id, 0)

    def describe(self) -> str:
        if self.seed is None:
            return f"1-in-{self.n}"
        return f"1-in-{self.n} (seed {self.seed})"


class Burst(SamplingPolicy):
    """Keep the first ``keep`` events per instance, then decimate 1-in-``n``.

    The burst prefix preserves each instance's early life exactly —
    construction, initial fill, the phases short-lived instances consist
    of entirely — while long steady-state phases are decimated with the
    same jittered scheme as :class:`Decimate`.
    """

    def __init__(self, keep: int, n: int, seed: int | None = None) -> None:
        if keep < 0:
            raise ValueError(f"burst length must be >= 0, got {keep}")
        if n < 1:
            raise ValueError(f"decimation factor must be >= 1, got {n}")
        self.keep = keep
        self.n = n
        self.stride = n
        self.seed = seed
        self._salt = _salt_from_seed(seed)
        self._counts: dict[int, int] = {}

    def admit(self, instance_id: int) -> bool:
        counts = self._counts
        c = counts.get(instance_id, 0)
        counts[instance_id] = c + 1
        if c < self.keep:
            return True
        if self.n == 1:
            return True
        block, offset = divmod(c - self.keep, self.n)
        return offset == _jitter(block, instance_id, self.n, self._salt)

    def is_exact(self, instance_id: int) -> bool:
        return self.n == 1 or self._counts.get(instance_id, 0) <= self.keep

    def exact_prefix(self, instance_id: int) -> int:
        return 0 if self.is_exact(instance_id) else self.keep

    def observed(self, instance_id: int) -> int:
        """Total events this instance produced (admitted or not)."""
        return self._counts.get(instance_id, 0)

    def describe(self) -> str:
        if self.seed is None:
            return f"burst:{self.keep}/{self.n}"
        return f"burst:{self.keep}/{self.n} (seed {self.seed})"


def parse_sampling(spec: str, seed: int | None = None) -> SamplingPolicy:
    """Parse a CLI sampling spec into a policy.

    Accepted forms::

        all               record everything (default)
        1/N  or  1:N      1-in-N decimation per instance
        burst:K/N         keep the first K events, then 1-in-N

    ``seed`` (CLI ``--sample-seed``) makes the jittered admission
    bit-reproducible across runs; it is ignored by ``all``.

    Raises ``ValueError`` on anything else, with the accepted grammar in
    the message so argparse surfaces a usable error.
    """
    text = spec.strip().lower()
    try:
        if text in ("all", "full", "1", "1/1"):
            return RECORD_ALL
        if text.startswith("burst:"):
            body = text[len("burst:"):]
            keep_s, _, n_s = body.replace(":", "/").partition("/")
            return Burst(int(keep_s), int(n_s), seed=seed)
        if "/" in text or ":" in text:
            one, _, n_s = text.replace(":", "/").partition("/")
            if int(one) != 1:
                raise ValueError(spec)
            return Decimate(int(n_s), seed=seed)
    except (ValueError, TypeError):
        pass
    raise ValueError(
        f"unrecognized sampling spec {spec!r}; expected 'all', '1/N', or 'burst:K/N'"
    )
