"""Access-event substrate: events, profiles, channels, collectors.

This package implements the data-collection half of DSspy (§IV of the
paper): every interaction with an instrumented data structure becomes an
:class:`AccessEvent`, events stream over a :class:`Channel` to an
:class:`EventCollector`, and post-mortem assembly yields one
:class:`RuntimeProfile` per data structure instance.

The recording pipeline has three cost tiers: plain channels
(:class:`SynchronousChannel`, :class:`AsyncChannel`,
:class:`ProcessChannel`), the batched low-overhead transport
(:class:`BatchingChannel`, optionally spilling to a binary file via
:mod:`~repro.events.spill`), and event sampling
(:class:`SamplingPolicy` and friends) applied before the channel post.
"""

from .batching import BatchingChannel, make_channel
from .channel import AsyncChannel, Channel, ProcessChannel, SynchronousChannel
from .collector import (
    EventCollector,
    collecting,
    get_collector,
    pop_collector,
    push_collector,
    reset_ambient,
)
from .event import AccessEvent, materialize
from .fastpath import KERNEL, PackedBatchingChannel, PyRecorder, kernel_name, make_recorder
from .merge import merge_archives, merge_profiles
from .profile import NO_POSITION, AllocationSite, RuntimeProfile
from .sampling import (
    RECORD_ALL,
    Burst,
    Decimate,
    RecordAll,
    SamplingPolicy,
    parse_sampling,
)
from .serialize import (
    dump_profiles,
    load_profiles,
    read_profiles,
    save_collector,
    save_profiles,
)
from .spill import (
    RECORD_SIZE,
    SpillWriter,
    iter_spill_events,
    iter_spill_raw,
    pack_record,
    read_spill_events,
    read_spill_raw,
    record_is_plausible,
    unpack_record,
    unpack_records,
)
from .types import FRONT, AccessKind, OperationKind, StructureKind, end_of

__all__ = [
    "AccessEvent",
    "AccessKind",
    "AllocationSite",
    "AsyncChannel",
    "BatchingChannel",
    "Burst",
    "Channel",
    "Decimate",
    "EventCollector",
    "FRONT",
    "KERNEL",
    "NO_POSITION",
    "OperationKind",
    "PackedBatchingChannel",
    "ProcessChannel",
    "PyRecorder",
    "RECORD_ALL",
    "RECORD_SIZE",
    "RecordAll",
    "RuntimeProfile",
    "SamplingPolicy",
    "SpillWriter",
    "StructureKind",
    "SynchronousChannel",
    "collecting",
    "dump_profiles",
    "end_of",
    "get_collector",
    "iter_spill_events",
    "iter_spill_raw",
    "kernel_name",
    "load_profiles",
    "make_channel",
    "make_recorder",
    "materialize",
    "merge_archives",
    "merge_profiles",
    "pack_record",
    "parse_sampling",
    "pop_collector",
    "push_collector",
    "read_profiles",
    "read_spill_events",
    "read_spill_raw",
    "record_is_plausible",
    "reset_ambient",
    "unpack_record",
    "unpack_records",
    "save_collector",
    "save_profiles",
]
