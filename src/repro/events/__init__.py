"""Access-event substrate: events, profiles, channels, collectors.

This package implements the data-collection half of DSspy (§IV of the
paper): every interaction with an instrumented data structure becomes an
:class:`AccessEvent`, events stream over a :class:`Channel` to an
:class:`EventCollector`, and post-mortem assembly yields one
:class:`RuntimeProfile` per data structure instance.
"""

from .channel import AsyncChannel, Channel, ProcessChannel, SynchronousChannel
from .collector import (
    EventCollector,
    collecting,
    get_collector,
    pop_collector,
    push_collector,
    reset_ambient,
)
from .event import AccessEvent, materialize
from .merge import merge_archives, merge_profiles
from .profile import NO_POSITION, AllocationSite, RuntimeProfile
from .serialize import (
    dump_profiles,
    load_profiles,
    read_profiles,
    save_collector,
    save_profiles,
)
from .types import FRONT, AccessKind, OperationKind, StructureKind, end_of

__all__ = [
    "AccessEvent",
    "AccessKind",
    "AllocationSite",
    "AsyncChannel",
    "Channel",
    "EventCollector",
    "FRONT",
    "NO_POSITION",
    "OperationKind",
    "ProcessChannel",
    "RuntimeProfile",
    "StructureKind",
    "SynchronousChannel",
    "collecting",
    "dump_profiles",
    "end_of",
    "get_collector",
    "load_profiles",
    "materialize",
    "merge_archives",
    "merge_profiles",
    "pop_collector",
    "push_collector",
    "read_profiles",
    "reset_ambient",
    "save_collector",
    "save_profiles",
]
