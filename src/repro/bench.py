"""Recording-overhead benchmark core and CI perf-ratchet.

Measures the per-event cost of every transport at its hot-path
producer API — ``post`` for the synchronous and async channels, the
cached :meth:`~repro.events.BatchingChannel.producer` callable for the
batched pipeline, the record kernel of :mod:`repro.events.fastpath`
for the encode-at-record path — timed over a full capture (post loop
*plus* terminal drain, so asynchronous transports cannot hide work in
their drainer thread).  Emits one JSON document consumed by the CI
perf-ratchet (``dsspy bench --check``).

Absolute nanoseconds vary wildly across machines, so every gated
metric is *normalized*: a per-event cost divided by a bare
``list.append`` measured on the same machine in the same process.
The ratchet enforces two kinds of bound against the checked-in
baseline (``benchmarks/baselines/overhead_baseline.json``):

- **relative**: no metric in :data:`GATED_METRICS` may regress by more
  than ``--max-regression`` (CI uses 10%) against the baseline value;
- **absolute**: the baseline's ``gates`` object pins hard ceilings
  that hold regardless of what the baseline measured —
  ``tracked_batching_vs_plain`` ≤ 5× is the headline ratchet locking
  in the encode-at-record fast path.

Metric map (all under ``derived``):

``batching_vs_plain``
    The batched tuple pipeline's producer callable.
``tracked_batching_vs_plain``
    The realistic ``EventCollector.record`` hook through the packed
    fast path (record kernel → per-thread byte buffer).  Successor of
    the legacy ``record_batching_vs_plain`` (kept, informational).
``fastpath_vs_plain``
    The full structure hot path — ``TrackedList.append`` — with the
    fast path engaged.
``remote_vs_plain`` / ``journal_vs_plain``
    The networked transport against a loopback daemon, without and
    with the write-ahead journal.
``shm_vs_plain``
    The same capture over the shared-memory ring transport
    (:mod:`repro.service.shm`) — gated relatively like the others, and
    expected to beat ``remote_vs_plain`` on the same machine.
``guard_vs_plain``
    The tracked-append path under an armed fail-open firewall.

With ``--fleet`` the document additionally carries a ``fleet`` section:
a many-producer ingestion load (default 1000 sessions) replayed
against fleets of 1/2/4/8 sharded workers (client-side sharding — the
production ``fleet_run`` data path), yielding ``fleet_4w_vs_1w`` under
``derived`` and a ``floors`` object.  Floors are the dual of gates:
hard *minimums* (``fleet_4w_vs_1w`` ≥ 2.5× is the fleet scaling
acceptance bound).  Because scaling is physically bounded by core
count, :func:`check` enforces floors only when the current document
was measured on at least :data:`FLEET_FLOOR_MIN_CORES` cores — a
1-core curve is committed honestly and skipped loudly, CI's 4-vCPU
runner enforces for real.

With ``--whatif`` (schema 7) the document carries a ``whatif`` section:
the causal profiler's measured-vs-predicted differential on all 7
Table V workloads (:func:`repro.eval.run_whatif_validation` — the
top-ranked recommendation per workload is *executed* on a thread pool
and its accounted schedule compared to the analytic prediction).  The
derived ``whatif_within_band`` metric is the fraction of workloads
whose measured speedup landed inside the committed tolerance band, and
its embedded hard floor of 1.0 is enforced under the same ≥4-core rule
as the fleet floor (``--whatif-only`` skips the overhead suite for a
fast accuracy-gate run).

Run via the CLI (``dsspy bench``) or directly::

    PYTHONPATH=src python -m repro.bench --events 100000 -o overhead.json
    PYTHONPATH=src python -m repro.bench --input overhead.json --check
    PYTHONPATH=src python -m repro.bench --fleet --fleet-producers 1000 \
        --fleet-curve benchmarks/results/scaling_fleet.txt
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import sys
import tempfile
import time
from pathlib import Path

SCHEMA_VERSION = 7

#: The machine-normalized metrics the ratchet enforces relatively
#: (``current <= baseline * (1 + max_regression)``).
GATED_METRICS = (
    "batching_vs_plain",
    "tracked_batching_vs_plain",
    "fastpath_vs_plain",
    "remote_vs_plain",
    "journal_vs_plain",
    "shm_vs_plain",
    "guard_vs_plain",
)

#: Hard ceilings embedded in every emitted document (and therefore in
#: the regenerated baseline): these hold no matter what the baseline
#: measured, so a "ratchet by regenerating a slower baseline" loophole
#: does not exist for them.
ABSOLUTE_GATES = {
    "tracked_batching_vs_plain": 5.0,
}

#: Hard minimums — the dual of :data:`ABSOLUTE_GATES` — embedded in
#: every document that measured the fleet benchmark.  Enforced by
#: :func:`check` only when the current document was measured on at
#: least :data:`FLEET_FLOOR_MIN_CORES` cores (scaling is physically
#: bounded by core count; a 1-core machine cannot speak to it).
ABSOLUTE_FLOORS = {
    "fleet_4w_vs_1w": 2.5,
    # Every Table V workload's measured speedup must land inside the
    # committed tolerance band of its what-if prediction (fraction, so
    # 1.0 = all seven).
    "whatif_within_band": 1.0,
}

#: Minimum measured-section ``cpu_count`` for floor enforcement (both
#: the fleet scaling floor and the what-if accuracy floor follow the
#: same rule: commit honestly on small boxes, enforce on >= 4 cores).
FLEET_FLOOR_MIN_CORES = 4

#: Which document section carries the ``cpu_count`` that gates each
#: floor metric's enforcement.
_FLOOR_CORES_SECTION = {
    "fleet_4w_vs_1w": "fleet",
    "whatif_within_band": "whatif",
}

DEFAULT_BASELINE = "benchmarks/baselines/overhead_baseline.json"

#: A representative raw event (list read at position 5 of 1000).
_RAW = (0, 1, 0, 5, 1000, 0, None)


# -- measurement ------------------------------------------------------------


def _time_channel(make_channel, events: int) -> float:
    """Seconds to push ``events`` raw tuples through a channel's hot
    path and drain it."""
    channel = make_channel()
    produce = channel.producer() if hasattr(channel, "producer") else channel.post
    raw = _RAW
    start = time.perf_counter()
    for _ in range(events):
        produce(raw)
    channel.drain()
    return time.perf_counter() - start


def _time_record(make_channel, events: int, sampling=None) -> float:
    """Seconds for the realistic legacy path: ``EventCollector.record``
    per event through the tuple pipeline, then the channel drained
    (profiles not materialized — that cost is post-mortem analysis,
    not recording)."""
    from .events import AccessKind, EventCollector, OperationKind, StructureKind

    collector = EventCollector(
        channel=make_channel(), sampling=sampling, fastpath="off"
    )
    iid = collector.register_instance(StructureKind.LIST)
    record = collector.record
    op = OperationKind.READ
    kind = AccessKind.READ
    start = time.perf_counter()
    for i in range(events):
        record(iid, op, kind, i % 1000, 1000)
    collector.channel.drain()
    return time.perf_counter() - start


def _time_tracked_batching(events: int) -> float:
    """Seconds for the fast record hook: the collector's pre-bound
    record kernel packing straight into per-thread byte buffers of a
    :class:`~repro.events.fastpath.PackedBatchingChannel`.

    Times the fixed representative event of the channels section (the
    hook's cost does not depend on the position value), with
    :meth:`drain_packed` as the terminal barrier — the fast
    architecture's natural end state (durable packed bytes, ready for
    spill or wire), symmetric with the legacy drain's end state
    (tuples in memory, encoding deferred to spill or wire)."""
    from .events import EventCollector, PackedBatchingChannel, StructureKind

    channel = PackedBatchingChannel()
    collector = EventCollector(channel=channel)
    iid = collector.register_instance(StructureKind.LIST)
    record = collector.record  # the kernel instance when fastpath engaged
    start = time.perf_counter()
    for _ in range(events):
        record(iid, 1, 0, 5, 1000)
    channel.drain_packed()
    return time.perf_counter() - start


def _time_tracked_append(events: int, guard=None) -> float:
    """Seconds for the full structure hot path — ``TrackedList.append``
    through ``_record`` into a batching channel — optionally under an
    armed (healthy) firewall."""
    from .events import BatchingChannel, EventCollector
    from .structures import TrackedList

    channel = BatchingChannel()
    collector = EventCollector(channel=channel, fastpath="off")
    xs = TrackedList(collector=collector)
    append = xs.append
    if guard is not None:
        guard.__enter__()
    try:
        start = time.perf_counter()
        for _ in range(events):
            append(1)
        channel.drain()
        return time.perf_counter() - start
    finally:
        if guard is not None:
            guard.__exit__(None, None, None)


def _time_fastpath_append(events: int) -> float:
    """Seconds for the full structure hot path with the encode-at-record
    fast path engaged: ``TrackedList.append`` calling the record kernel
    directly, packed bytes as the end state."""
    from .events import EventCollector, PackedBatchingChannel
    from .structures import TrackedList

    channel = PackedBatchingChannel()
    collector = EventCollector(channel=channel)
    xs = TrackedList(collector=collector)
    append = xs.append
    start = time.perf_counter()
    for _ in range(events):
        append(1)
    channel.drain_packed()
    return time.perf_counter() - start


def _time_plain_append(events: int) -> float:
    """The uninstrumented floor: a bare bound ``list.append`` loop."""
    xs: list = []
    append = xs.append
    raw = _RAW
    start = time.perf_counter()
    for _ in range(events):
        append(raw)
    return time.perf_counter() - start


def _best(measure, repeats: int) -> float:
    """Minimum over ``repeats`` runs — the standard noise filter."""
    return min(measure() for _ in range(repeats))


def run_overhead_benchmark(events: int = 100_000, repeats: int = 3) -> dict:
    """Measure every transport and sampling tier; return the JSON doc."""
    from .events import (
        AsyncChannel,
        BatchingChannel,
        Burst,
        Decimate,
        SynchronousChannel,
        kernel_name,
    )
    from .runtime import RuntimeGuard
    from .service import ProfilingDaemon, RemoteChannel

    channels = {
        "sync": lambda: SynchronousChannel(),
        "async": lambda: AsyncChannel(),
        "batching": lambda: BatchingChannel(),
        "batching_drop": lambda: BatchingChannel(policy="drop"),
    }
    recorders = {
        "sync": (lambda: SynchronousChannel(), None),
        "batching": (lambda: BatchingChannel(), None),
        "batching_decimate10": (lambda: BatchingChannel(), lambda: Decimate(10)),
        "batching_burst1000_10": (lambda: BatchingChannel(), lambda: Burst(1000, 10)),
    }

    plain_s = _best(lambda: _time_plain_append(events), repeats)
    doc: dict = {
        "schema": SCHEMA_VERSION,
        "events": events,
        "repeats": repeats,
        "python": sys.version.split()[0],
        "record_kernel": kernel_name(),
        "plain_append_ns": plain_s / events * 1e9,
        "channels": {},
        "recording": {},
        "gates": dict(ABSOLUTE_GATES),
    }
    for name, factory in channels.items():
        total_s = _best(lambda: _time_channel(factory, events), repeats)
        doc["channels"][name] = {
            "total_s": total_s,
            "per_event_ns": total_s / events * 1e9,
        }
    # The networked transport: same producer hot path as "batching",
    # plus loopback shipping to a live daemon (one daemon reused across
    # repeats; every repeat is a fresh session, and drain() includes the
    # FIN handshake so the full capture cost is measured).
    with ProfilingDaemon(port=0, session_linger=0.1) as daemon:
        total_s = _best(
            lambda: _time_channel(lambda: RemoteChannel(daemon.address), events),
            repeats,
        )
    doc["channels"]["remote"] = {
        "total_s": total_s,
        "per_event_ns": total_s / events * 1e9,
    }
    # The same capture with EVENTS moved off the socket onto the
    # shared-memory ring: the client packs records into the ring, the
    # daemon's consumer thread drains it.
    with ProfilingDaemon(port=0, session_linger=0.1) as daemon:
        total_s = _best(
            lambda: _time_channel(
                lambda: RemoteChannel(daemon.address, transport="shm"), events
            ),
            repeats,
        )
    doc["channels"]["shm"] = {
        "total_s": total_s,
        "per_event_ns": total_s / events * 1e9,
    }
    # Same transport against a durable daemon: every window is journaled
    # before it is acknowledged, with periodic checkpoints.
    with tempfile.TemporaryDirectory(prefix="dsspy-bench-state-") as state_dir:
        with ProfilingDaemon(
            port=0,
            session_linger=0.1,
            state_dir=state_dir,
            checkpoint_every=max(events // 2, 10_000),
        ) as daemon:
            total_s = _best(
                lambda: _time_channel(lambda: RemoteChannel(daemon.address), events),
                repeats,
            )
    doc["channels"]["remote_journal"] = {
        "total_s": total_s,
        "per_event_ns": total_s / events * 1e9,
    }

    for name, (factory, make_policy) in recorders.items():
        total_s = _best(
            lambda: _time_record(
                factory, events, sampling=make_policy() if make_policy else None
            ),
            repeats,
        )
        doc["recording"][name] = {
            "total_s": total_s,
            "per_event_ns": total_s / events * 1e9,
        }
    # The fast record hook (the ratcheted successor of "batching"):
    # collector.record is the pre-bound kernel, encode-at-record.
    total_s = _best(lambda: _time_tracked_batching(events), repeats)
    doc["recording"]["tracked_batching"] = {
        "total_s": total_s,
        "per_event_ns": total_s / events * 1e9,
    }

    # The firewall hot path: a healthy armed guard on the tracked-append
    # loop, against the identical loop with no guard armed (seed mode).
    unguarded_s = _best(lambda: _time_tracked_append(events), repeats)
    guarded_s = _best(
        lambda: _time_tracked_append(events, guard=RuntimeGuard(budget=25)), repeats
    )
    fast_append_s = _best(lambda: _time_fastpath_append(events), repeats)
    doc["structures"] = {
        "tracked_append": {
            "total_s": unguarded_s,
            "per_event_ns": unguarded_s / events * 1e9,
        },
        "tracked_append_fastpath": {
            "total_s": fast_append_s,
            "per_event_ns": fast_append_s / events * 1e9,
        },
        "tracked_append_guarded": {
            "total_s": guarded_s,
            "per_event_ns": guarded_s / events * 1e9,
        },
    }

    plain_ns = doc["plain_append_ns"]
    batching_ns = doc["channels"]["batching"]["per_event_ns"]
    drop_ns = doc["channels"]["batching_drop"]["per_event_ns"]
    async_ns = doc["channels"]["async"]["per_event_ns"]
    doc["derived"] = {
        # Speedup of the batched pipeline over the per-event queue
        # (default lossless policy, and the bare-append drop policy).
        "batching_vs_async": async_ns / batching_ns,
        "batching_drop_vs_async": async_ns / drop_ns,
        # Machine-normalized cost multiples — the CI-gated metrics.
        "batching_vs_plain": batching_ns / plain_ns,
        "tracked_batching_vs_plain": doc["recording"]["tracked_batching"][
            "per_event_ns"
        ]
        / plain_ns,
        "fastpath_vs_plain": doc["structures"]["tracked_append_fastpath"][
            "per_event_ns"
        ]
        / plain_ns,
        "remote_vs_plain": doc["channels"]["remote"]["per_event_ns"] / plain_ns,
        "shm_vs_plain": doc["channels"]["shm"]["per_event_ns"] / plain_ns,
        "journal_vs_plain": doc["channels"]["remote_journal"]["per_event_ns"]
        / plain_ns,
        # The legacy tuple-pipeline record hook, kept informational so
        # the fast path's win stays visible in every document.
        "record_batching_vs_plain": doc["recording"]["batching"]["per_event_ns"]
        / plain_ns,
        # Firewall cost, gated: full guarded tracked-append vs a bare
        # append — and, informational, vs the same path unguarded.
        "guard_vs_plain": doc["structures"]["tracked_append_guarded"]["per_event_ns"]
        / plain_ns,
        "guard_overhead": guarded_s / unguarded_s,
    }
    return doc


# -- fleet scaling ----------------------------------------------------------


def fleet_producer_main(argv: list[str] | None = None) -> int:
    """Subprocess entry for one fleet-benchmark producer process.

    Reads a JSON spec (addresses, session count, events per session,
    thread concurrency, session-id prefix) from ``argv[0]``, replays
    its sessions against the fleet with client-side sharding, and
    prints one JSON line — wall-clock start/end (``time.time``, so
    timestamps are comparable across processes) and the event total.

    The collector stack is process-global, which is exactly why this
    runs as a subprocess: each producer process owns its collectors
    outright, and the parent only aggregates timestamps.
    """
    import concurrent.futures

    from .events import AccessKind, EventCollector, OperationKind, StructureKind
    from .service import RemoteChannel
    from .service.router import shard_for

    spec = json.loads(sys.argv[1] if argv is None else argv[0])
    addresses: list[str] = spec["addresses"]
    events: int = spec["events"]

    def one_session(index: int) -> int:
        session_id = f"{spec['prefix']}-s{index:04d}"
        address = addresses[shard_for(session_id, len(addresses))]
        channel = RemoteChannel(address, session_id=session_id, give_up_after=30.0)
        collector = EventCollector(channel=channel, fastpath="off")
        iid = collector.register_instance(StructureKind.LIST)
        record = collector.record
        op = OperationKind.READ
        kind = AccessKind.READ
        for i in range(events):
            record(iid, op, kind, i % 1000, 1000)
        channel.drain()
        return events

    start = time.time()
    total = 0
    with concurrent.futures.ThreadPoolExecutor(
        max_workers=spec["concurrency"]
    ) as pool:
        for n in pool.map(one_session, range(spec["sessions"])):
            total += n
    end = time.time()
    print(json.dumps({"start": start, "end": end, "events": total}))
    return 0


def _run_fleet_config(
    n_workers: int,
    producers: int,
    events_per_producer: int,
    procs: int,
    concurrency: int,
) -> dict:
    """Throughput of one fleet size: ``producers`` sessions spread over
    ``procs`` producer processes against ``n_workers`` sharded workers."""
    import subprocess

    from .service.fleet import FleetSupervisor, _repro_env

    with tempfile.TemporaryDirectory(prefix="dsspy-bench-fleet-") as state_dir:
        with FleetSupervisor(
            n_workers, state_dir, heartbeat_timeout=120.0
        ) as supervisor:
            addresses = supervisor.worker_addresses()
            per_proc = [producers // procs] * procs
            for i in range(producers % procs):
                per_proc[i] += 1
            children = []
            for index, sessions in enumerate(p for p in per_proc if p):
                spec = {
                    "addresses": addresses,
                    "sessions": sessions,
                    "events": events_per_producer,
                    "concurrency": concurrency,
                    "prefix": f"bench-w{n_workers}-p{index}",
                }
                children.append(
                    subprocess.Popen(
                        [
                            sys.executable,
                            "-c",
                            "from repro.bench import fleet_producer_main; "
                            "import sys; sys.exit(fleet_producer_main())",
                            json.dumps(spec),
                        ],
                        stdout=subprocess.PIPE,
                        stderr=subprocess.PIPE,
                        text=True,
                        env=_repro_env(),
                    )
                )
            results = []
            for child in children:
                out, err = child.communicate(timeout=1800)
                if child.returncode != 0:
                    raise RuntimeError(
                        f"fleet benchmark producer failed "
                        f"(rc={child.returncode}): {err.strip()[-500:]}"
                    )
                results.append(json.loads(out.strip().splitlines()[-1]))
    wall_s = max(r["end"] for r in results) - min(r["start"] for r in results)
    events = sum(r["events"] for r in results)
    return {
        "workers": n_workers,
        "events": events,
        "wall_s": wall_s,
        "throughput_eps": events / wall_s if wall_s > 0 else float("inf"),
    }


def run_fleet_benchmark(
    producers: int = 1000,
    events_per_producer: int = 200,
    worker_counts: tuple[int, ...] = (1, 2, 4, 8),
    procs: int = 4,
    concurrency: int = 16,
) -> dict:
    """The many-producer scaling curve: total ingestion throughput
    (events/s over the union wall-clock of all producer processes) for
    each fleet size.  Sessions shard client-side with the same hash the
    router and supervisor use, so this measures the production
    ``fleet_run`` data path — no router hop in the middle."""
    section: dict = {
        "producers": producers,
        "events_per_producer": events_per_producer,
        "producer_processes": procs,
        "producer_concurrency": concurrency,
        "cpu_count": os.cpu_count() or 1,
        "workers": {},
    }
    for n in worker_counts:
        result = _run_fleet_config(
            n, producers, events_per_producer, procs, concurrency
        )
        section["workers"][str(n)] = result
        print(
            f"fleet: {n} worker(s): {result['events']} events in "
            f"{result['wall_s']:.2f}s = {result['throughput_eps']:,.0f} ev/s",
            file=sys.stderr,
        )
    return section


def fleet_derived(section: dict) -> dict:
    """Scaling ratios from a ``fleet`` section (NxW throughput over
    1-worker throughput) for every measured fleet size."""
    workers = section.get("workers", {})
    if "1" not in workers:
        return {}
    base = float(workers["1"]["throughput_eps"])
    return {
        f"fleet_{n}w_vs_1w": float(cfg["throughput_eps"]) / base
        for n, cfg in sorted(workers.items(), key=lambda kv: int(kv[0]))
        if n != "1" and base > 0
    }


def format_fleet_curve(doc: dict) -> str:
    """The committed scaling-curve artifact
    (``benchmarks/results/scaling_fleet.txt``)."""
    section = doc["fleet"]
    derived = doc.get("derived", {})
    lines = [
        "Fleet ingestion scaling: total throughput vs worker count",
        f"schema {doc.get('schema', '?')} | python {doc.get('python', '?')} | "
        f"cpu_count {section['cpu_count']}",
        f"{section['producers']} producer sessions x "
        f"{section['events_per_producer']} events, "
        f"{section['producer_processes']} producer processes x "
        f"{section['producer_concurrency']} threads, client-side sharding",
        "",
        f"{'workers':>7}  {'events':>9}  {'wall_s':>8}  "
        f"{'events/s':>10}  {'vs 1w':>6}",
    ]
    for n, cfg in sorted(section["workers"].items(), key=lambda kv: int(kv[0])):
        ratio = derived.get(f"fleet_{n}w_vs_1w")
        lines.append(
            f"{n:>7}  {cfg['events']:>9}  {cfg['wall_s']:>8.2f}  "
            f"{cfg['throughput_eps']:>10,.0f}  "
            f"{'  1.00' if n == '1' else f'{ratio:>6.2f}' if ratio else '     ?'}"
        )
    lines.append("")
    floor = ABSOLUTE_FLOORS.get("fleet_4w_vs_1w")
    cores = section["cpu_count"]
    if cores < FLEET_FLOOR_MIN_CORES:
        lines.append(
            f"floor fleet_4w_vs_1w >= {floor} NOT ENFORCED: measured on "
            f"{cores} core(s) (needs >= {FLEET_FLOOR_MIN_CORES}); scaling is "
            "physically bounded by core count on this machine."
        )
    else:
        lines.append(f"floor fleet_4w_vs_1w >= {floor} (enforced by --check)")
    return "\n".join(lines) + "\n"


# -- what-if prediction accuracy --------------------------------------------


def run_whatif_benchmark(cores: int = 8, scale: float = 1.0) -> dict:
    """The measured-vs-predicted differential as a bench section.

    Deterministic given (cores, scale): the prediction is analytic and
    the measured side accounts the real executed chunk schedule on the
    machine model, so the numbers are reproducible anywhere — only the
    *enforcement* of the floor is core-gated (the real thread execution
    underneath needs actual cores to be a meaningful rehearsal).
    """
    from .eval.speedup_eval import WHATIF_TOLERANCE, run_whatif_validation
    from .parallel.machine import MachineConfig, SimulatedMachine

    machine = SimulatedMachine(MachineConfig(cores=cores))
    rows = run_whatif_validation(machine=machine, scale=scale)
    return {
        "cpu_count": os.cpu_count() or 1,
        "model_cores": cores,
        "tolerance": WHATIF_TOLERANCE,
        "rows": [
            {
                "workload": r.workload,
                "use_case": r.use_case,
                "predicted": r.predicted,
                "measured": r.measured,
                "relative_error": r.relative_error,
                "matches_sequential": r.matches_sequential,
                "within_band": r.within_band,
                "note": r.note,
            }
            for r in rows
        ],
    }


def whatif_derived(section: dict) -> dict:
    """``whatif_within_band``: the fraction of workloads whose measured
    speedup landed inside the tolerance band (floor: 1.0 = all)."""
    rows = section.get("rows", [])
    if not rows:
        return {}
    within = sum(1 for r in rows if r["within_band"])
    return {"whatif_within_band": within / len(rows)}


def format_whatif_accuracy(doc: dict) -> str:
    """The committed prediction-accuracy artifact
    (``benchmarks/results/whatif_accuracy.txt``)."""
    section = doc["whatif"]
    lines = [
        "What-if prediction accuracy: measured vs predicted speedup",
        f"schema {doc.get('schema', '?')} | python {doc.get('python', '?')} | "
        f"cpu_count {section['cpu_count']} | "
        f"model cores {section['model_cores']} | "
        f"tolerance ±{section['tolerance']:.0%}",
        "",
        f"{'workload':<18} {'top use case':<24} {'predicted':>9}  "
        f"{'measured':>9}  {'error':>7}  {'band':>5}",
    ]
    for row in section["rows"]:
        note = f"  ({row['note']})" if row["note"] else ""
        lines.append(
            f"{row['workload']:<18} {row['use_case']:<24} "
            f"{row['predicted']:>8.2f}x  {row['measured']:>8.2f}x  "
            f"{row['relative_error']:>6.2%}  "
            f"{'ok' if row['within_band'] else 'MISS':>5}{note}"
        )
    lines.append("")
    floor = ABSOLUTE_FLOORS["whatif_within_band"]
    cores = section["cpu_count"]
    if cores < FLEET_FLOOR_MIN_CORES:
        lines.append(
            f"floor whatif_within_band >= {floor} NOT ENFORCED: measured on "
            f"{cores} core(s) (needs >= {FLEET_FLOOR_MIN_CORES}); the thread "
            "pool under the measured side is not a meaningful rehearsal here."
        )
    else:
        lines.append(
            f"floor whatif_within_band >= {floor} (enforced by --check)"
        )
    return "\n".join(lines) + "\n"


# -- the ratchet ------------------------------------------------------------


def check(
    current: dict, baseline: dict, max_regression: float = 0.10
) -> tuple[list[str], list[str]]:
    """Compare a fresh benchmark document against the baseline.

    Returns ``(failures, report_lines)`` — one report line per
    comparison, one failure string per violated bound.  Raises
    :class:`ValueError` when a gated metric is present in exactly one
    of the two documents (a schema mismatch the caller should treat as
    a configuration error, not a regression).
    """
    report: list[str] = []
    failures: list[str] = []
    cur_derived = current.get("derived", {})
    base_derived = baseline.get("derived", {})
    # Overhead ratios are calibrated per record kernel: a run on the
    # pure-python fallback against a C-kernel baseline (the minimal-CI
    # case — no compiled _fastrecord extension) would "regress" by an
    # order of magnitude on every metric and drown real signal.  The
    # bounds are still *reported*, loudly, but not enforced — so a
    # chaos or fsck CI job on a minimal runner fails on its own
    # results, never on a meaningless overhead comparison.
    cur_kernel = str(current.get("record_kernel", "?"))
    base_kernel = str(baseline.get("record_kernel", "?"))
    kernel_mismatch = cur_kernel != base_kernel
    if kernel_mismatch:
        report.append(
            f"record kernel mismatch: current={cur_kernel!r} vs "
            f"baseline={base_kernel!r}"
            + (
                " (compiled _fastrecord extension absent here)"
                if cur_kernel == "python"
                else ""
            )
            + " — overhead bounds NOT ENFORCED"
        )
    for metric in GATED_METRICS:
        in_current = metric in cur_derived
        in_baseline = metric in base_derived
        if not in_current and not in_baseline:
            report.append(f"{metric}: absent from both documents, skipped")
            continue
        if not (in_current and in_baseline):
            raise ValueError(
                f"{metric} missing from "
                f"{'current' if not in_current else 'baseline'} benchmark JSON"
            )
        cur = float(cur_derived[metric])
        base = float(base_derived[metric])
        regression = cur / base - 1.0
        report.append(
            f"{metric} = {cur:.2f} (baseline {base:.2f}, "
            f"change {regression:+.1%}, allowed +{max_regression:.0%})"
        )
        if cur > base * (1.0 + max_regression):
            if kernel_mismatch:
                report.append(
                    f"{metric}: past the limit but NOT ENFORCED "
                    "(record kernel mismatch)"
                )
            else:
                failures.append(
                    f"{metric} is {regression:+.1%} vs baseline "
                    f"(limit +{max_regression:.0%})"
                )
    for metric, cap in sorted(baseline.get("gates", {}).items()):
        if metric not in cur_derived:
            raise ValueError(
                f"absolute gate on {metric} but the metric is missing from "
                "the current benchmark JSON"
            )
        cur = float(cur_derived[metric])
        report.append(f"{metric} = {cur:.2f} (hard ceiling {float(cap):.2f}x)")
        if cur > float(cap):
            if kernel_mismatch:
                report.append(
                    f"{metric}: above the ceiling but NOT ENFORCED "
                    "(record kernel mismatch)"
                )
            else:
                failures.append(
                    f"{metric} = {cur:.2f} exceeds the hard ceiling "
                    f"{float(cap):.2f}x"
                )
    # Hard floors (fleet scaling).  Self-enforcing from the current
    # document — a doc that measured the fleet benchmark carries its own
    # floors — plus any pinned in the baseline.  A floor on a metric the
    # current run did not measure is skipped, not an error: the fleet
    # benchmark is opt-in (--fleet), unlike the always-on overhead suite.
    floors = {**baseline.get("floors", {}), **current.get("floors", {})}
    for metric, floor in sorted(floors.items()):
        if metric not in cur_derived:
            report.append(
                f"{metric}: floor {float(floor):.2f}x skipped "
                "(not measured in the current document)"
            )
            continue
        cur = float(cur_derived[metric])
        # Each floor is gated on the cores of the section that measured
        # it (fleet scaling vs what-if accuracy).
        section = _FLOOR_CORES_SECTION.get(metric, "fleet")
        cores = int((current.get(section) or {}).get("cpu_count") or 0)
        if cores < FLEET_FLOOR_MIN_CORES:
            report.append(
                f"{metric} = {cur:.2f} (floor {float(floor):.2f}x skipped: "
                f"measured on {cores} core(s), "
                f"needs >= {FLEET_FLOOR_MIN_CORES})"
            )
            continue
        report.append(f"{metric} = {cur:.2f} (hard floor {float(floor):.2f}x)")
        if cur < float(floor):
            failures.append(
                f"{metric} = {cur:.2f} is below the hard floor {float(floor):.2f}x"
            )
    return failures, report


# -- the trajectory ---------------------------------------------------------

_TRAJECTORY_FIELDS = (
    "timestamp",
    "commit",
    "schema",
    "events",
    "python",
    "record_kernel",
    "plain_append_ns",
) + GATED_METRICS


def append_trajectory(doc: dict, path: str | Path, commit: str | None = None) -> str:
    """Append one benchmark run to the committed trajectory CSV.

    Creates the file (with header) when absent.  ``commit`` defaults to
    ``$GITHUB_SHA`` so the nightly CI job needs no plumbing.  Returns
    the formatted CSV row (without trailing newline)."""
    path = Path(path)
    if commit is None:
        commit = os.environ.get("GITHUB_SHA", "")
    derived = doc.get("derived", {})
    row = [
        datetime.datetime.now(datetime.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        commit[:12],
        str(doc.get("schema", "")),
        str(doc.get("events", "")),
        str(doc.get("python", "")),
        str(doc.get("record_kernel", "")),
        f"{float(doc.get('plain_append_ns', 0.0)):.1f}",
    ] + [
        f"{float(derived[m]):.3f}" if m in derived else "" for m in GATED_METRICS
    ]
    line = ",".join(row)
    path.parent.mkdir(parents=True, exist_ok=True)
    fresh = not path.exists() or path.stat().st_size == 0
    with path.open("a", encoding="utf-8") as fh:
        if fresh:
            fh.write(",".join(_TRAJECTORY_FIELDS) + "\n")
        fh.write(line + "\n")
    return line


# -- CLI --------------------------------------------------------------------


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Install the ``bench`` arguments on ``parser`` (shared between
    ``python -m repro.bench`` and the ``dsspy bench`` subcommand)."""
    parser.add_argument("--events", type=int, default=100_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("-o", "--output", default=None, help="write the JSON doc here")
    parser.add_argument(
        "--json", action="store_true", help="print the full JSON doc to stdout"
    )
    parser.add_argument(
        "--input",
        default=None,
        metavar="JSON",
        help="reuse an existing benchmark JSON instead of measuring",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="perf-ratchet mode: fail when a gated metric regressed past "
        "--max-regression or broke a hard ceiling from the baseline",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        metavar="JSON",
        help="checked-in baseline for --check",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.10,
        metavar="FRAC",
        help="allowed fractional slowdown per gated metric (0.10 = +10%%)",
    )
    parser.add_argument(
        "--append-trajectory",
        default=None,
        metavar="CSV",
        help="append this run to the benchmark-trajectory CSV",
    )
    parser.add_argument(
        "--fleet",
        action="store_true",
        help="also run the many-producer fleet scaling benchmark "
        "(adds the 'fleet' section, fleet_*_vs_1w metrics, and floors)",
    )
    parser.add_argument(
        "--fleet-producers",
        type=int,
        default=1000,
        metavar="N",
        help="total producer sessions for the fleet benchmark",
    )
    parser.add_argument(
        "--fleet-events",
        type=int,
        default=200,
        metavar="N",
        help="events recorded per producer session",
    )
    parser.add_argument(
        "--fleet-workers",
        default="1,2,4,8",
        metavar="LIST",
        help="comma-separated fleet sizes to measure",
    )
    parser.add_argument(
        "--fleet-procs",
        type=int,
        default=4,
        metavar="N",
        help="producer subprocesses the sessions are spread over",
    )
    parser.add_argument(
        "--fleet-concurrency",
        type=int,
        default=16,
        metavar="N",
        help="concurrent sessions per producer subprocess",
    )
    parser.add_argument(
        "--fleet-curve",
        default=None,
        metavar="TXT",
        help="write the human-readable scaling curve here",
    )
    parser.add_argument(
        "--whatif",
        action="store_true",
        help="also run the what-if prediction-accuracy differential "
        "(adds the 'whatif' section, whatif_within_band, and its floor)",
    )
    parser.add_argument(
        "--whatif-only",
        action="store_true",
        help="run ONLY the what-if differential (skip the overhead "
        "suite) — the CI whatif-accuracy job's fast path",
    )
    parser.add_argument(
        "--whatif-cores",
        type=int,
        default=8,
        metavar="N",
        help="machine-model core count for the what-if differential",
    )
    parser.add_argument(
        "--whatif-table",
        default=None,
        metavar="TXT",
        help="write the human-readable prediction-accuracy table here",
    )


def run(args: argparse.Namespace) -> int:
    """Execute a parsed ``bench`` invocation."""
    whatif_only = getattr(args, "whatif_only", False)
    if args.input:
        doc = json.loads(Path(args.input).read_text(encoding="utf-8"))
    elif whatif_only:
        # A minimal document: no overhead metrics at all, so --check
        # against itself skips every gated metric and enforces only the
        # floors it carries (the whatif-accuracy CI job's shape).
        doc = {
            "schema": SCHEMA_VERSION,
            "python": sys.version.split()[0],
        }
    else:
        doc = run_overhead_benchmark(events=args.events, repeats=args.repeats)
    if (getattr(args, "whatif", False) or whatif_only) and not args.input:
        doc["whatif"] = run_whatif_benchmark(
            cores=getattr(args, "whatif_cores", 8)
        )
        doc.setdefault("derived", {}).update(whatif_derived(doc["whatif"]))
        doc.setdefault("floors", {}).update(
            {"whatif_within_band": ABSOLUTE_FLOORS["whatif_within_band"]}
        )
    if getattr(args, "whatif_table", None):
        if "whatif" not in doc:
            print(
                "bench: --whatif-table needs a document with a 'whatif' "
                "section (pass --whatif or an --input that has one)",
                file=sys.stderr,
            )
            return 2
        table = format_whatif_accuracy(doc)
        Path(args.whatif_table).parent.mkdir(parents=True, exist_ok=True)
        Path(args.whatif_table).write_text(table, encoding="utf-8")
        print(
            f"what-if accuracy table written to {args.whatif_table}",
            file=sys.stderr,
        )
    if getattr(args, "fleet", False) and not args.input:
        worker_counts = tuple(
            int(n) for n in args.fleet_workers.split(",") if n.strip()
        )
        doc["fleet"] = run_fleet_benchmark(
            producers=args.fleet_producers,
            events_per_producer=args.fleet_events,
            worker_counts=worker_counts,
            procs=args.fleet_procs,
            concurrency=args.fleet_concurrency,
        )
        doc.setdefault("derived", {}).update(fleet_derived(doc["fleet"]))
        doc.setdefault("floors", {}).update(
            {"fleet_4w_vs_1w": ABSOLUTE_FLOORS["fleet_4w_vs_1w"]}
        )
    if getattr(args, "fleet_curve", None):
        if "fleet" not in doc:
            print("bench: --fleet-curve needs a document with a 'fleet' "
                  "section (pass --fleet or an --input that has one)",
                  file=sys.stderr)
            return 2
        curve = format_fleet_curve(doc)
        Path(args.fleet_curve).parent.mkdir(parents=True, exist_ok=True)
        Path(args.fleet_curve).write_text(curve, encoding="utf-8")
        print(f"fleet scaling curve written to {args.fleet_curve}",
              file=sys.stderr)
    text = json.dumps(doc, indent=2, sort_keys=True)
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
        print(f"overhead benchmark written to {args.output}", file=sys.stderr)
    if args.json:
        print(text)
    derived = doc.get("derived", {})
    if "whatif" in doc and not args.json:
        band = derived.get("whatif_within_band")
        rows = doc["whatif"].get("rows", [])
        print(
            f"whatif: {sum(1 for r in rows if r['within_band'])}/{len(rows)} "
            f"workloads within ±{doc['whatif']['tolerance']:.0%} of prediction "
            f"(whatif_within_band = {band if band is None else round(band, 3)})",
            file=sys.stderr,
        )
    if derived and "plain_append_ns" in doc and not args.json:
        print(
            f"plain append: {doc['plain_append_ns']:.0f} ns; "
            f"record hook ({doc.get('record_kernel', '?')} kernel): "
            f"{derived.get('tracked_batching_vs_plain', float('nan')):.1f}x plain "
            f"(legacy {derived.get('record_batching_vs_plain', float('nan')):.1f}x); "
            f"tracked append: {derived.get('fastpath_vs_plain', float('nan')):.1f}x; "
            f"batching: {derived.get('batching_vs_plain', float('nan')):.1f}x; "
            f"remote: {derived.get('remote_vs_plain', float('nan')):.1f}x "
            f"(shm {derived.get('shm_vs_plain', float('nan')):.1f}x, "
            f"journaled {derived.get('journal_vs_plain', float('nan')):.1f}x); "
            f"guard: {derived.get('guard_vs_plain', float('nan')):.1f}x",
            file=sys.stderr,
        )
    if doc.get("record_kernel") == "python" and not args.json:
        print(
            "bench: NOT-ENFORCED — compiled _fastrecord extension absent; "
            "ratios above were measured on the pure-python record kernel "
            "and are not comparable to C-kernel baselines or ceilings",
            file=sys.stderr,
        )
    if args.append_trajectory:
        line = append_trajectory(doc, args.append_trajectory)
        print(f"trajectory += {line}", file=sys.stderr)
    if args.check:
        baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
        try:
            failures, report = check(
                doc, baseline, max_regression=args.max_regression
            )
        except ValueError as exc:
            print(f"perf ratchet: {exc}", file=sys.stderr)
            return 2
        for line in report:
            print(f"perf ratchet: {line}")
        if failures:
            for failure in failures:
                print(f"PERF RATCHET: FAILED — {failure}")
            return 1
        print("PERF RATCHET: passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench", description=__doc__.splitlines()[0]
    )
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
