"""Single source of truth for "what build is this?".

Mixed fleets are diagnosable only if every surface — ``dsspy
--version``, STATS, checkpoints — reports the *same* blob: package
version, wire-protocol version range, on-disk format versions, and
whether the C record kernel is compiled in.  Keep additions here (not
scattered per-command) so the compat-matrix job and the runbook have
one schema to read.
"""

from __future__ import annotations

from typing import Any


def build_info() -> dict[str, Any]:
    """Version/format identity of this build, JSON-ready."""
    from . import __version__
    from .events.fastpath import KERNEL
    from .service.durability import CHECKPOINT_VERSION, JOURNAL_VERSION
    from .service.protocol import PROTOCOL_MIN_SUPPORTED, PROTOCOL_VERSION

    return {
        "package": __version__,
        "proto": PROTOCOL_VERSION,
        "proto_min": PROTOCOL_MIN_SUPPORTED,
        "journal_format": JOURNAL_VERSION,
        "checkpoint_format": CHECKPOINT_VERSION,
        "kernel": KERNEL,
    }


def format_build_info(info: dict[str, Any] | None = None) -> str:
    """One-line human rendering (``dsspy --version``)."""
    info = info if info is not None else build_info()
    return (
        f"dsspy {info['package']} "
        f"(proto {info['proto_min']}-{info['proto']}, "
        f"journal v{info['journal_format']}, "
        f"checkpoint v{info['checkpoint_format']}, "
        f"kernel {info['kernel']})"
    )


__all__ = ["build_info", "format_build_info"]
