/* Compiled encode-at-record kernel for the DSspy hot path.
 *
 * One Recorder instance replaces `EventCollector.record` when the
 * fast path engages (see repro/events/fastpath.py).  A call packs the
 * event straight into the calling thread's bytearray in the 39-byte
 * spill layout of repro/events/spill.py:
 *
 *     instance_id  int64   little-endian, offset  0
 *     position     int64                  offset  8  (0 when absent)
 *     size         int64                  offset 16
 *     thread_id    int32                  offset 24
 *     op           uint8                  offset 28
 *     kind         uint8                  offset 29
 *     flags        uint8                  offset 30  (bit 0: has position)
 *     wall_time    float64                offset 31  (always 0.0 here:
 *                                         the fast path never captures
 *                                         wall time; bit 1 stays clear)
 *
 * The type is vectorcall-enabled so `self._record_fn(iid, op, kind,
 * pos, size)` from TrackedBase dispatches without tuple/dict
 * argument packing.  Thread dispatch is a one-slot ident cache backed
 * by a dict: the common case (same thread as last call) costs one
 * integer compare; a miss calls the Python-side `bind` callable, which
 * is the slow boundary where the collector registers the thread and
 * the channel enforces its backpressure gate.  `invalidate()` empties
 * both cache levels, forcing every thread back through `bind` — the
 * channel uses it to re-impose the gate, and the fork handler uses it
 * to drop buffers that belong to the parent process.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stddef.h>
#include <string.h>
#include "pythread.h"

#define RECORD_SIZE 39

typedef struct {
    PyObject_HEAD
    vectorcallfunc vcall;
    PyObject *buffers;      /* dict: thread ident (int) -> (tid, bytearray) */
    PyObject *bind;         /* callable() -> (tid, bytearray) for caller    */
    unsigned long cached_ident;
    long cached_tid;
    PyObject *cached_buf;   /* strong reference to the cached bytearray */
} RecorderObject;

static int
recorder_bind(RecorderObject *self, unsigned long ident)
{
    PyObject *key = PyLong_FromUnsignedLong(ident);
    if (key == NULL)
        return -1;
    PyObject *pair = PyDict_GetItemWithError(self->buffers, key); /* borrowed */
    if (pair == NULL) {
        if (PyErr_Occurred()) {
            Py_DECREF(key);
            return -1;
        }
        pair = PyObject_CallNoArgs(self->bind);
        if (pair == NULL) {
            Py_DECREF(key);
            return -1;
        }
        if (!PyTuple_Check(pair) || PyTuple_GET_SIZE(pair) != 2
            || !PyByteArray_Check(PyTuple_GET_ITEM(pair, 1))) {
            PyErr_SetString(PyExc_TypeError,
                            "bind callable must return (thread_id, bytearray)");
            Py_DECREF(pair);
            Py_DECREF(key);
            return -1;
        }
        if (PyDict_SetItem(self->buffers, key, pair) < 0) {
            Py_DECREF(pair);
            Py_DECREF(key);
            return -1;
        }
        Py_DECREF(pair); /* the dict holds it now */
    }
    Py_DECREF(key);
    long tid = PyLong_AsLong(PyTuple_GET_ITEM(pair, 0));
    if (tid == -1 && PyErr_Occurred())
        return -1;
    PyObject *buf = PyTuple_GET_ITEM(pair, 1);
    Py_INCREF(buf);
    Py_XSETREF(self->cached_buf, buf);
    self->cached_ident = ident;
    self->cached_tid = tid;
    return 0;
}

static PyObject *
recorder_call(PyObject *obj, PyObject *const *args, size_t nargsf, PyObject *kwnames)
{
    RecorderObject *self = (RecorderObject *)obj;
    Py_ssize_t nargs = PyVectorcall_NARGS(nargsf);
    if (kwnames != NULL && PyTuple_GET_SIZE(kwnames)) {
        PyErr_SetString(PyExc_TypeError, "record takes no keyword arguments");
        return NULL;
    }
    if (nargs != 5) {
        PyErr_SetString(
            PyExc_TypeError,
            "record expects (instance_id, op, kind, position, size)");
        return NULL;
    }
    unsigned long ident = PyThread_get_thread_ident();
    if (ident != self->cached_ident || self->cached_buf == NULL) {
        if (recorder_bind(self, ident) < 0)
            return NULL;
    }
    long long iid = PyLong_AsLongLong(args[0]);
    if (iid == -1 && PyErr_Occurred())
        return NULL;
    long op = PyLong_AsLong(args[1]);
    if (op == -1 && PyErr_Occurred())
        return NULL;
    long kind = PyLong_AsLong(args[2]);
    if (kind == -1 && PyErr_Occurred())
        return NULL;
    if ((unsigned long)op > 255 || (unsigned long)kind > 255) {
        PyErr_SetString(PyExc_ValueError, "op/kind out of uint8 range");
        return NULL;
    }
    long long pos = 0;
    unsigned char flags = 0;
    if (args[3] != Py_None) {
        pos = PyLong_AsLongLong(args[3]);
        if (pos == -1 && PyErr_Occurred())
            return NULL;
        flags = 1; /* has-position */
    }
    long long size = PyLong_AsLongLong(args[4]);
    if (size == -1 && PyErr_Occurred())
        return NULL;

    PyObject *buf = self->cached_buf;
    Py_ssize_t old = PyByteArray_GET_SIZE(buf);
    if (PyByteArray_Resize(buf, old + RECORD_SIZE) < 0)
        return NULL;
    char *p = PyByteArray_AS_STRING(buf) + old;
    /* Matches struct.Struct("<qqqiBBBd") on every platform CPython
     * supports (little-endian, no padding in the manual layout). */
    memcpy(p, &iid, 8);
    memcpy(p + 8, &pos, 8);
    memcpy(p + 16, &size, 8);
    int32_t tid32 = (int32_t)self->cached_tid;
    memcpy(p + 24, &tid32, 4);
    p[28] = (unsigned char)op;
    p[29] = (unsigned char)kind;
    p[30] = flags;
    memset(p + 31, 0, 8); /* wall_time: 0.0, has-wall flag clear */
    Py_RETURN_NONE;
}

static int
recorder_init(RecorderObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *bind;
    if (kwds != NULL && PyDict_GET_SIZE(kwds)) {
        PyErr_SetString(PyExc_TypeError, "Recorder takes no keyword arguments");
        return -1;
    }
    if (!PyArg_ParseTuple(args, "O", &bind))
        return -1;
    Py_INCREF(bind);
    Py_XSETREF(self->bind, bind);
    PyObject *buffers = PyDict_New();
    if (buffers == NULL)
        return -1;
    Py_XSETREF(self->buffers, buffers);
    self->cached_ident = 0;
    self->cached_tid = 0;
    Py_CLEAR(self->cached_buf);
    self->vcall = recorder_call;
    return 0;
}

static void
recorder_dealloc(RecorderObject *self)
{
    Py_XDECREF(self->buffers);
    Py_XDECREF(self->bind);
    Py_XDECREF(self->cached_buf);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
recorder_invalidate(RecorderObject *self, PyObject *Py_UNUSED(ignored))
{
    self->cached_ident = 0;
    Py_CLEAR(self->cached_buf);
    if (self->buffers != NULL)
        PyDict_Clear(self->buffers);
    Py_RETURN_NONE;
}

static PyMethodDef recorder_methods[] = {
    {"invalidate", (PyCFunction)recorder_invalidate, METH_NOARGS,
     "Drop every cached thread buffer; the next record on each thread "
     "re-enters the bind callable."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject RecorderType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._fastrecord.Recorder",
    .tp_basicsize = sizeof(RecorderObject),
    .tp_dealloc = (destructor)recorder_dealloc,
    .tp_call = PyVectorcall_Call,
    .tp_vectorcall_offset = offsetof(RecorderObject, vcall),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_VECTORCALL,
    .tp_doc = "Compiled encode-at-record kernel (39-byte spill layout).",
    .tp_methods = recorder_methods,
    .tp_init = (initproc)recorder_init,
    .tp_new = PyType_GenericNew,
};

static struct PyModuleDef fastrecord_module = {
    PyModuleDef_HEAD_INIT,
    "_fastrecord",
    "Compiled fast path for the DSspy record hot loop.",
    -1,
    NULL,
};

PyMODINIT_FUNC
PyInit__fastrecord(void)
{
    if (PyType_Ready(&RecorderType) < 0)
        return NULL;
    PyObject *m = PyModule_Create(&fastrecord_module);
    if (m == NULL)
        return NULL;
    Py_INCREF(&RecorderType);
    if (PyModule_AddObject(m, "Recorder", (PyObject *)&RecorderType) < 0) {
        Py_DECREF(&RecorderType);
        Py_DECREF(m);
        return NULL;
    }
    if (PyModule_AddIntConstant(m, "RECORD_SIZE", RECORD_SIZE) < 0) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
