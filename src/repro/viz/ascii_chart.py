"""Terminal rendering of runtime profiles (Figures 2 and 3).

The paper visualizes a profile as a bar per access event on a
chronological x-axis: the bar's height is the target index, its color
the access kind (green = read, red = write), with a grey background bar
showing the structure's size at that moment.  This module renders the
same picture in a terminal: ``#``/``r`` marks for writes/reads on a
column per event, ``.`` for the size envelope, with optional ANSI color.
"""

from __future__ import annotations

import math

from ..events.profile import NO_POSITION, RuntimeProfile
from ..events.types import AccessKind
from ..patterns.model import PatternAnalysis

_ANSI = {"read": "\x1b[32m", "write": "\x1b[31m", "size": "\x1b[90m", "reset": "\x1b[0m"}


def _downsample(n_events: int, width: int) -> list[int]:
    """Indices of the events shown when there are more events than
    columns (uniform stride; first and last always shown)."""
    if n_events <= width:
        return list(range(n_events))
    stride = n_events / width
    picks = sorted({min(int(i * stride), n_events - 1) for i in range(width)})
    if picks[-1] != n_events - 1:
        picks.append(n_events - 1)
    return picks


def render_profile(
    profile: RuntimeProfile,
    width: int = 78,
    height: int = 16,
    color: bool = False,
    show_legend: bool = True,
) -> str:
    """Figure-2-style chart of one profile.

    Each column is one access event (downsampled uniformly when the
    profile is wider than ``width``).  Column glyph: ``r`` read, ``#``
    write, drawn at the row of the target index; ``.`` marks the
    structure size envelope.  Events without a position (Clear, Sort,
    ...) are drawn as ``|`` across the full height.
    """
    if not len(profile):
        return "(empty profile)"

    picks = _downsample(len(profile), width)
    positions = profile.positions
    sizes = profile.sizes
    kinds = profile.kinds

    max_value = max(int(sizes.max()), int(positions.max()) + 1, 1)
    rows = height
    scale = rows / max_value

    def row_of(value: int) -> int:
        return min(int(value * scale), rows - 1)

    grid = [[" "] * len(picks) for _ in range(rows)]
    for col, idx in enumerate(picks):
        size_row = row_of(max(int(sizes[idx]) - 1, 0))
        for r in range(size_row + 1):
            grid[r][col] = "."
        pos = int(positions[idx])
        if pos == NO_POSITION:
            for r in range(rows):
                grid[r][col] = "|"
            continue
        glyph = "r" if kinds[idx] == AccessKind.READ else "#"
        grid[row_of(pos)][col] = glyph

    lines: list[str] = []
    label_width = len(str(max_value))
    for r in range(rows - 1, -1, -1):
        value = math.ceil((r + 1) / scale) - 1
        axis = str(value).rjust(label_width) if r % 4 == 0 else " " * label_width
        lines.append(f"{axis} |" + "".join(grid[r]))
    lines.append(" " * label_width + "-" * (len(picks) + 2))
    lines.append(
        " " * label_width
        + f" events 0..{len(profile) - 1}"
        + (f" (downsampled to {len(picks)} columns)" if len(picks) < len(profile) else "")
    )
    if show_legend:
        lines.append(
            " " * label_width
            + " r=read  #=write  .=size envelope  |=whole-structure op"
        )

    text = "\n".join(lines)
    if color:
        text = (
            text.replace("r", _ANSI["read"] + "r" + _ANSI["reset"])
            .replace("#", _ANSI["write"] + "#" + _ANSI["reset"])
        )
    return text


def render_patterns(analysis: PatternAnalysis, max_rows: int = 40) -> str:
    """Figure-3-style textual timeline: one row per detected pattern."""
    profile = analysis.profile
    if not analysis.patterns:
        return "(no patterns detected)"
    total = max(len(profile), 1)
    bar_width = 50
    lines = [
        f"{len(analysis.patterns)} patterns over {total} events "
        f"({profile.kind.value}#{profile.instance_id})"
    ]
    for p in analysis.patterns[:max_rows]:
        start_col = int(p.start / total * bar_width)
        stop_col = max(int(p.stop / total * bar_width), start_col + 1)
        bar = " " * start_col + "=" * (stop_col - start_col)
        bar = bar.ljust(bar_width)
        lines.append(f"  [{bar}] {p.describe()}")
    if len(analysis.patterns) > max_rows:
        lines.append(f"  ... {len(analysis.patterns) - max_rows} more")
    return "\n".join(lines)


def render_op_histogram(profile: RuntimeProfile, width: int = 40) -> str:
    """Horizontal bar chart of the compound operation mix."""
    histogram = profile.op_histogram()
    if not histogram:
        return "(empty profile)"
    biggest = max(histogram.values())
    lines = []
    for op, count in sorted(histogram.items(), key=lambda kv: -kv[1]):
        bar = "#" * max(int(count / biggest * width), 1)
        lines.append(f"  {op.name.lower():<8} {bar} {count}")
    return "\n".join(lines)
