"""Runtime-profile visualization (ASCII terminal charts + SVG export)."""

from .ascii_chart import render_op_histogram, render_patterns, render_profile
from .density import density_grid, render_density
from .svg import profile_to_svg, save_svg
from .thread_lanes import render_thread_lanes, thread_interleaving_ratio

__all__ = [
    "profile_to_svg",
    "render_op_histogram",
    "render_patterns",
    "density_grid",
    "render_density",
    "render_profile",
    "render_thread_lanes",
    "save_svg",
    "thread_interleaving_ratio",
]
