"""Per-thread lane rendering for multithreaded profiles.

DSspy captures the thread id of every access event precisely so that
interleaved profiles of parallel programs can be untangled (§IV).  This
view draws one lane per thread, with each lane showing that thread's
accesses in the shared temporal order — making contention patterns
(two threads hammering the same region) visually obvious.
"""

from __future__ import annotations

from ..events.profile import NO_POSITION, RuntimeProfile
from ..events.types import AccessKind
from .ascii_chart import _downsample


def render_thread_lanes(
    profile: RuntimeProfile,
    width: int = 78,
    color: bool = False,
) -> str:
    """One row per thread; columns are (downsampled) temporal order.

    Glyphs: ``r`` read, ``#`` write, ``|`` whole-structure op, ``.``
    idle (another thread's event occupies the column).
    """
    if not len(profile):
        return "(empty profile)"

    thread_ids = profile.thread_ids
    picks = _downsample(len(profile), width)
    positions = profile.positions
    kinds = profile.kinds
    threads = profile.threads

    lanes: dict[int, list[str]] = {t: [] for t in thread_ids}
    for idx in picks:
        owner = int(threads[idx])
        if int(positions[idx]) == NO_POSITION:
            glyph = "|"
        elif kinds[idx] == AccessKind.READ:
            glyph = "r"
        else:
            glyph = "#"
        for thread_id in thread_ids:
            lanes[thread_id].append(glyph if thread_id == owner else ".")

    label_width = max(len(f"t{t}") for t in thread_ids) + 1
    lines = [
        f"{len(profile)} events across {len(thread_ids)} threads "
        f"({profile.kind.value}#{profile.instance_id})"
    ]
    for thread_id in thread_ids:
        share = int((threads == thread_id).sum()) / len(profile)
        lane = "".join(lanes[thread_id])
        lines.append(f"t{thread_id}".rjust(label_width) + f" |{lane}| {share:.0%}")
    lines.append(
        " " * label_width + "  r=read  #=write  |=whole-structure  .=other thread"
    )
    return "\n".join(lines)


def thread_interleaving_ratio(profile: RuntimeProfile) -> float:
    """How interleaved the threads are: share of consecutive event
    pairs whose thread differs (0 = phases, ~1 = fine-grained sharing).
    """
    if len(profile) < 2:
        return 0.0
    threads = profile.threads
    switches = int((threads[1:] != threads[:-1]).sum())
    return switches / (len(profile) - 1)
