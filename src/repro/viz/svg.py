"""SVG export of runtime profiles.

Produces a standalone SVG string with the paper's visual vocabulary
(Figure 2): a grey background bar per event for the structure size,
green bars for reads, red for writes, x-axis in temporal order, y-axis
the target index.  No plotting library needed -- the file is a few
template strings -- so profiles can be inspected in any browser even in
minimal environments.
"""

from __future__ import annotations

from ..events.profile import NO_POSITION, RuntimeProfile
from ..events.types import AccessKind
from .ascii_chart import _downsample

_READ_COLOR = "#2e7d32"
_WRITE_COLOR = "#c62828"
_SIZE_COLOR = "#cccccc"
_MARKER_COLOR = "#1565c0"


def profile_to_svg(
    profile: RuntimeProfile,
    width: int = 900,
    height: int = 300,
    max_columns: int = 600,
    title: str | None = None,
) -> str:
    """Render one profile as an SVG document string."""
    margin = 36
    plot_w = width - 2 * margin
    plot_h = height - 2 * margin

    n = len(profile)
    if n == 0:
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}"><text x="10" y="20">(empty profile)</text></svg>'
        )

    picks = _downsample(n, max_columns)
    positions = profile.positions
    sizes = profile.sizes
    kinds = profile.kinds
    max_value = max(int(sizes.max()), int(positions.max()) + 1, 1)

    col_w = plot_w / len(picks)
    bar_w = max(col_w * 0.8, 0.5)

    def y_of(value: float) -> float:
        return margin + plot_h * (1 - value / max_value)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    caption = title or (
        f"{profile.kind.value}#{profile.instance_id} — {n} events"
    )
    parts.append(
        f'<text x="{margin}" y="{margin - 12}" font-family="sans-serif" '
        f'font-size="13">{caption}</text>'
    )

    # Size envelope first (background), then access bars.
    for col, idx in enumerate(picks):
        x = margin + col * col_w
        size = int(sizes[idx])
        if size > 0:
            top = y_of(size)
            parts.append(
                f'<rect x="{x:.2f}" y="{top:.2f}" width="{bar_w:.2f}" '
                f'height="{margin + plot_h - top:.2f}" fill="{_SIZE_COLOR}"/>'
            )
    for col, idx in enumerate(picks):
        x = margin + col * col_w
        pos = int(positions[idx])
        if pos == NO_POSITION:
            parts.append(
                f'<rect x="{x:.2f}" y="{margin}" width="{bar_w:.2f}" '
                f'height="{plot_h}" fill="{_MARKER_COLOR}" opacity="0.35"/>'
            )
            continue
        color = _READ_COLOR if kinds[idx] == AccessKind.READ else _WRITE_COLOR
        top = y_of(pos + 1)
        parts.append(
            f'<rect x="{x:.2f}" y="{top:.2f}" width="{bar_w:.2f}" '
            f'height="{margin + plot_h - top:.2f}" fill="{color}"/>'
        )

    # Axes.
    parts.append(
        f'<line x1="{margin}" y1="{margin + plot_h}" x2="{margin + plot_w}" '
        f'y2="{margin + plot_h}" stroke="black"/>'
    )
    parts.append(
        f'<line x1="{margin}" y1="{margin}" x2="{margin}" '
        f'y2="{margin + plot_h}" stroke="black"/>'
    )
    parts.append(
        f'<text x="{margin}" y="{height - 8}" font-family="sans-serif" '
        f'font-size="11">temporal order →</text>'
    )
    parts.append(
        f'<text x="8" y="{margin + 10}" font-family="sans-serif" '
        f'font-size="11">{max_value}</text>'
    )
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(profile: RuntimeProfile, path: str, **kwargs) -> str:
    """Write the SVG to ``path`` and return the path."""
    svg = profile_to_svg(profile, **kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(svg)
    return path
