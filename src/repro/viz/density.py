"""Access-density heatmap for large profiles.

Figure-2-style per-event bars stop being readable past a few thousand
events; this view bins the profile into a (time × position) grid and
renders access density as shaded characters — hot regions (the inner
loop hammering one index range) pop out immediately.
"""

from __future__ import annotations

import numpy as np

from ..events.profile import NO_POSITION, RuntimeProfile

_SHADES = " .:-=+*#%@"


def density_grid(
    profile: RuntimeProfile, time_bins: int = 60, position_bins: int = 16
) -> np.ndarray:
    """(position_bins, time_bins) array of event counts.

    Positionless events are excluded; an empty/positionless profile
    yields an all-zero grid.
    """
    grid = np.zeros((position_bins, time_bins), dtype=np.int64)
    n = len(profile)
    if n == 0:
        return grid
    positions = profile.positions
    has_pos = positions != NO_POSITION
    if not has_pos.any():
        return grid
    indices = np.flatnonzero(has_pos)
    pos = positions[indices]
    max_pos = max(int(pos.max()), 1)

    time_idx = np.minimum(indices * time_bins // n, time_bins - 1)
    pos_idx = np.minimum(pos * position_bins // (max_pos + 1), position_bins - 1)
    np.add.at(grid, (pos_idx, time_idx), 1)
    return grid


def render_density(
    profile: RuntimeProfile,
    time_bins: int = 60,
    position_bins: int = 12,
) -> str:
    """ASCII heatmap: rows are position bands (top = high index),
    columns temporal bins, shade ∝ access count."""
    grid = density_grid(profile, time_bins, position_bins)
    peak = int(grid.max())
    if peak == 0:
        return "(no positional events)"

    lines = [
        f"access density — {len(profile)} events, peak {peak}/bin "
        f"({profile.kind.value}#{profile.instance_id})"
    ]
    for row in range(position_bins - 1, -1, -1):
        cells = []
        for col in range(time_bins):
            value = int(grid[row, col])
            shade = _SHADES[
                min(int(value / peak * (len(_SHADES) - 1)), len(_SHADES) - 1)
            ] if value else " "
            cells.append(shade)
        lines.append("|" + "".join(cells) + "|")
    lines.append(" " + "-" * time_bins)
    lines.append(" time →   (shade: " + _SHADES.strip() + " = low..high)")
    return "\n".join(lines)
