"""Additional instrumented structures: set, sorted list, linked list.

The paper's profiler "is easily extensible to runtime profiles of other
data structures" thanks to the proxy pattern (§IV); these three cover
the next species of the occurrence study (hashSet 1.94%, sortedList
1.02%, linkedList 0.15%) and demonstrate the extension seam: subclass
:class:`~repro.structures.base.TrackedBase`, declare a ``KIND``, record
events from every interface method.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator
from typing import Any

from ..events.collector import EventCollector
from ..events.profile import AllocationSite
from ..events.types import AccessKind, OperationKind, StructureKind
from .base import TrackedBase

_READ = AccessKind.READ
_WRITE = AccessKind.WRITE
_OP = OperationKind


class TrackedSet(TrackedBase):
    """Hash-set proxy: positionless events, like the dictionary."""

    KIND = StructureKind.HASH_SET

    __slots__ = ("_data",)

    def __init__(
        self,
        iterable: Iterable[Any] | None = None,
        label: str = "",
        collector: EventCollector | None = None,
        site: AllocationSite | None = None,
    ) -> None:
        super().__init__(label=label, collector=collector, site=site)
        self._data: set = set()
        self._record(_OP.INIT, _WRITE, None, 0)
        if iterable is not None:
            for item in iterable:
                self.add(item)

    def add(self, value) -> None:
        self._data.add(value)
        self._record(_OP.INSERT, _WRITE, None, len(self._data))

    def discard(self, value) -> None:
        self._data.discard(value)
        self._record(_OP.DELETE, _WRITE, None, len(self._data))

    def remove(self, value) -> None:
        self._data.remove(value)
        self._record(_OP.DELETE, _WRITE, None, len(self._data))

    def __contains__(self, value) -> bool:
        self._record(_OP.SEARCH, _READ, None, len(self._data))
        return value in self._data

    def __iter__(self) -> Iterator:
        self._record(_OP.FORALL, _READ, None, len(self._data))
        return iter(list(self._data))

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def __eq__(self, other) -> bool:
        if isinstance(other, TrackedSet):
            return self._data == other._data
        return self._data == other

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    def __hash__(self):
        raise TypeError("unhashable type: 'TrackedSet'")

    def __repr__(self) -> str:
        return f"TrackedSet({self._data!r})"

    def clear(self) -> None:
        self._data.clear()
        self._record(_OP.CLEAR, _WRITE, None, 0)

    def union(self, other) -> set:
        self._record(_OP.COPY, _READ, None, len(self._data))
        return self._data.union(other)

    def raw(self) -> set:
        return self._data


class TrackedSortedList(TrackedBase):
    """Sorted list proxy: ordered inserts via bisect, binary search.

    The interesting profile property: inserts land at *data-dependent*
    positions (where the value sorts), so a sorted list under random
    input shows no Insert-Back pattern — exactly why the Sort-After-
    Insert recommendation ("order doesn't matter, parallelize") only
    applies to plain lists.
    """

    KIND = StructureKind.SORTED_LIST

    __slots__ = ("_data",)

    def __init__(
        self,
        iterable: Iterable[Any] | None = None,
        label: str = "",
        collector: EventCollector | None = None,
        site: AllocationSite | None = None,
    ) -> None:
        super().__init__(label=label, collector=collector, site=site)
        self._data: list[Any] = []
        self._record(_OP.INIT, _WRITE, None, 0)
        if iterable is not None:
            for item in iterable:
                self.add(item)

    def add(self, value) -> None:
        pos = bisect.bisect_right(self._data, value)
        self._data.insert(pos, value)
        self._record(_OP.INSERT, _WRITE, pos, len(self._data))

    def __getitem__(self, i):
        value = self._data[i]
        pos = i + len(self._data) if i < 0 else i
        self._record(_OP.READ, _READ, pos, len(self._data))
        return value

    def __delitem__(self, i) -> None:
        pos = i + len(self._data) if i < 0 else i
        del self._data[i]
        self._record(_OP.DELETE, _WRITE, pos, len(self._data))

    def remove(self, value) -> None:
        pos = self.index(value)
        del self._data[pos]
        self._record(_OP.DELETE, _WRITE, pos, len(self._data))

    def index(self, value) -> int:
        """Binary search: one Search event, logarithmic real cost."""
        pos = bisect.bisect_left(self._data, value)
        if pos >= len(self._data) or self._data[pos] != value:
            self._record(_OP.SEARCH, _READ, None, len(self._data))
            raise ValueError(f"{value!r} is not in sorted list")
        self._record(_OP.SEARCH, _READ, pos, len(self._data))
        return pos

    def __contains__(self, value) -> bool:
        try:
            self.index(value)
            return True
        except ValueError:
            return False

    def __iter__(self) -> Iterator:
        self._record(_OP.FORALL, _READ, None, len(self._data))
        for j in range(len(self._data)):
            self._record(_OP.READ, _READ, j, len(self._data))
            yield self._data[j]

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def __repr__(self) -> str:
        return f"TrackedSortedList({self._data!r})"

    def clear(self) -> None:
        self._data.clear()
        self._record(_OP.CLEAR, _WRITE, None, 0)

    def raw(self) -> list:
        return self._data


class _Node:
    __slots__ = ("value", "next")

    def __init__(self, value, next=None) -> None:
        self.value = value
        self.next = next


class TrackedLinkedList(TrackedBase):
    """Singly linked list proxy.

    Positions are logical indices (head = 0), so front/back operations
    profile identically to their array-list counterparts — a linked
    list used as a queue still shows the Implement-Queue shape, while
    positional reads show the true O(n) traversal cost in real time.
    """

    KIND = StructureKind.LINKED_LIST

    __slots__ = ("_head", "_tail", "_size")

    def __init__(
        self,
        iterable: Iterable[Any] | None = None,
        label: str = "",
        collector: EventCollector | None = None,
        site: AllocationSite | None = None,
    ) -> None:
        super().__init__(label=label, collector=collector, site=site)
        self._head: _Node | None = None
        self._tail: _Node | None = None
        self._size = 0
        self._record(_OP.INIT, _WRITE, None, 0)
        if iterable is not None:
            for item in iterable:
                self.append(item)

    def append(self, value) -> None:
        node = _Node(value)
        if self._tail is None:
            self._head = self._tail = node
        else:
            self._tail.next = node
            self._tail = node
        self._size += 1
        self._record(_OP.INSERT, _WRITE, self._size - 1, self._size)

    def append_left(self, value) -> None:
        self._head = _Node(value, self._head)
        if self._tail is None:
            self._tail = self._head
        self._size += 1
        self._record(_OP.INSERT, _WRITE, 0, self._size)

    def pop_left(self):
        if self._head is None:
            raise IndexError("pop from empty linked list")
        node = self._head
        self._head = node.next
        if self._head is None:
            self._tail = None
        self._size -= 1
        self._record(_OP.DELETE, _WRITE, 0, self._size)
        return node.value

    def __getitem__(self, index: int):
        pos = index + self._size if index < 0 else index
        if not 0 <= pos < self._size:
            raise IndexError("linked list index out of range")
        node = self._head
        for _ in range(pos):
            node = node.next  # the O(n) walk a list hides
        self._record(_OP.READ, _READ, pos, self._size)
        return node.value

    def __iter__(self) -> Iterator:
        self._record(_OP.FORALL, _READ, None, self._size)
        node = self._head
        pos = 0
        while node is not None:
            self._record(_OP.READ, _READ, pos, self._size)
            yield node.value
            node = node.next
            pos += 1

    def __contains__(self, value) -> bool:
        node = self._head
        pos = 0
        while node is not None:
            if node.value == value:
                self._record(_OP.SEARCH, _READ, pos, self._size)
                return True
            node = node.next
            pos += 1
        self._record(_OP.SEARCH, _READ, None, self._size)
        return False

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __repr__(self) -> str:
        return f"TrackedLinkedList({list(self.raw())!r})"

    def clear(self) -> None:
        self._head = self._tail = None
        self._size = 0
        self._record(_OP.CLEAR, _WRITE, None, 0)

    def raw(self) -> list:
        """Contents as a plain list, event-free."""
        out = []
        node = self._head
        while node is not None:
            out.append(node.value)
            node = node.next
        return out
