"""Instrumented (proxy) data structures.

Every container here proxies a native Python container and reports each
interface interaction to the active
:class:`~repro.events.collector.EventCollector`, yielding the runtime
profiles DSspy analyzes (§IV of the paper).
"""

from .base import TrackedBase, capture_site
from .registry import TRACKED_CLASSES, as_tracked, tracked_class
from .tracked_array import TrackedArray
from .tracked_dict import TrackedDict
from .tracked_extra import TrackedLinkedList, TrackedSet, TrackedSortedList
from .tracked_list import TrackedList
from .tracked_stack import TrackedQueue, TrackedStack

__all__ = [
    "TRACKED_CLASSES",
    "TrackedArray",
    "TrackedBase",
    "TrackedDict",
    "TrackedLinkedList",
    "TrackedList",
    "TrackedQueue",
    "TrackedSet",
    "TrackedSortedList",
    "TrackedStack",
    "as_tracked",
    "capture_site",
    "tracked_class",
]
