"""Instrumented stack and queue.

These exist for two reasons: the occurrence study counts them as
first-class species (Figure 1 shows ``Stack`` and ``Queue`` columns),
and the Stack-Implementation / Implement-Queue rules recommend *moving*
to them -- so the library must actually provide the recommended targets.
Their access events use the same positional vocabulary as lists (stack
ops touch the back; queue inserts touch the back, removals the front),
which lets the detectors confirm that a migrated structure no longer
triggers the rule.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any

from ..events.collector import EventCollector
from ..events.profile import AllocationSite
from ..events.types import AccessKind, OperationKind, StructureKind
from .base import TrackedBase

_READ = AccessKind.READ
_WRITE = AccessKind.WRITE
_OP = OperationKind


class TrackedStack(TrackedBase):
    """LIFO stack proxy: push/pop/peek at the back."""

    KIND = StructureKind.STACK

    __slots__ = ("_data",)

    def __init__(
        self,
        iterable: Iterable[Any] | None = None,
        label: str = "",
        collector: EventCollector | None = None,
        site: AllocationSite | None = None,
    ) -> None:
        super().__init__(label=label, collector=collector, site=site)
        self._data: list[Any] = []
        self._record(_OP.INIT, _WRITE, None, 0)
        if iterable is not None:
            for item in iterable:
                self.push(item)

    def push(self, value) -> None:
        self._data.append(value)
        self._record(_OP.INSERT, _WRITE, len(self._data) - 1, len(self._data))

    def pop(self):
        if not self._data:
            raise IndexError("pop from empty stack")
        pos = len(self._data) - 1
        value = self._data.pop()
        self._record(_OP.DELETE, _WRITE, pos, len(self._data))
        return value

    def peek(self):
        if not self._data:
            raise IndexError("peek on empty stack")
        self._record(_OP.READ, _READ, len(self._data) - 1, len(self._data))
        return self._data[-1]

    def clear(self) -> None:
        self._data.clear()
        self._record(_OP.CLEAR, _WRITE, None, 0)

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def __contains__(self, value) -> bool:
        try:
            pos: int | None = self._data.index(value)
        except ValueError:
            pos = None
        self._record(_OP.SEARCH, _READ, pos, len(self._data))
        return pos is not None

    def __iter__(self) -> Iterator[Any]:
        """Top-to-bottom iteration, like .NET ``Stack<T>``."""
        self._record(_OP.FORALL, _READ, None, len(self._data))
        for j in range(len(self._data) - 1, -1, -1):
            self._record(_OP.READ, _READ, j, len(self._data))
            yield self._data[j]

    def __repr__(self) -> str:
        return f"TrackedStack({self._data!r})"

    def raw(self) -> list:
        return self._data


class TrackedQueue(TrackedBase):
    """FIFO queue proxy: enqueue at the back, dequeue from the front."""

    KIND = StructureKind.QUEUE

    __slots__ = ("_data",)

    def __init__(
        self,
        iterable: Iterable[Any] | None = None,
        label: str = "",
        collector: EventCollector | None = None,
        site: AllocationSite | None = None,
    ) -> None:
        super().__init__(label=label, collector=collector, site=site)
        self._data: list[Any] = []
        self._record(_OP.INIT, _WRITE, None, 0)
        if iterable is not None:
            for item in iterable:
                self.enqueue(item)

    def enqueue(self, value) -> None:
        self._data.append(value)
        self._record(_OP.INSERT, _WRITE, len(self._data) - 1, len(self._data))

    def dequeue(self):
        if not self._data:
            raise IndexError("dequeue from empty queue")
        value = self._data.pop(0)
        self._record(_OP.DELETE, _WRITE, 0, len(self._data))
        return value

    def peek(self):
        if not self._data:
            raise IndexError("peek on empty queue")
        self._record(_OP.READ, _READ, 0, len(self._data))
        return self._data[0]

    def clear(self) -> None:
        self._data.clear()
        self._record(_OP.CLEAR, _WRITE, None, 0)

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def __contains__(self, value) -> bool:
        try:
            pos: int | None = self._data.index(value)
        except ValueError:
            pos = None
        self._record(_OP.SEARCH, _READ, pos, len(self._data))
        return pos is not None

    def __iter__(self) -> Iterator[Any]:
        self._record(_OP.FORALL, _READ, None, len(self._data))
        for j in range(len(self._data)):
            self._record(_OP.READ, _READ, j, len(self._data))
            yield self._data[j]

    def __repr__(self) -> str:
        return f"TrackedQueue({self._data!r})"

    def raw(self) -> list:
        return self._data
