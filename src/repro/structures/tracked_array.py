"""Instrumented fixed-size array.

Arrays account for 785 of the instances in the empirical study and are
the second target of DSspy's automatic analysis.  The distinguishing
behaviour the paper exploits (the Insert/Delete-Front use case) is that
arrays are *fixed size*: inserting or deleting means allocating a new
array and copying every element across.  :class:`TrackedArray`
reproduces that cost model and emits ``Resize`` + ``Copy`` events so the
IDF rule can observe the churn.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any

from ..events.collector import EventCollector
from ..events.profile import AllocationSite
from ..events.types import AccessKind, OperationKind, StructureKind
from .base import TrackedBase

_READ = AccessKind.READ
_WRITE = AccessKind.WRITE
_OP = OperationKind


class TrackedArray(TrackedBase):
    """Fixed-size array proxy.

    Construct either with a ``length`` (zero/None-filled) or from an
    ``iterable`` whose elements become the initial contents.  Unlike
    :class:`~repro.structures.tracked_list.TrackedList`, constructing
    from a length emits a single ``Init`` event, not per-element
    inserts -- allocating an array is one operation.
    """

    KIND = StructureKind.ARRAY

    __slots__ = ("_data",)

    def __init__(
        self,
        length_or_iterable: int | Iterable[Any] = 0,
        fill: Any = 0,
        label: str = "",
        collector: EventCollector | None = None,
        site: AllocationSite | None = None,
    ) -> None:
        super().__init__(label=label, collector=collector, site=site)
        if isinstance(length_or_iterable, int):
            self._data: list[Any] = [fill] * length_or_iterable
        else:
            self._data = list(length_or_iterable)
        self._record(_OP.INIT, _WRITE, None, len(self._data))

    # -- element access ---------------------------------------------------

    def _index(self, i: int) -> int:
        return i + len(self._data) if i < 0 else i

    def __getitem__(self, i):
        if isinstance(i, slice):
            indices = range(*i.indices(len(self._data)))
            self._record(_OP.COPY, _READ, None, len(self._data))
            for j in indices:
                self._record(_OP.READ, _READ, j, len(self._data))
            return [self._data[j] for j in indices]
        value = self._data[i]
        self._record(_OP.READ, _READ, self._index(i), len(self._data))
        return value

    def __setitem__(self, i, value) -> None:
        if isinstance(i, slice):
            indices = range(*i.indices(len(self._data)))
            values = list(value)
            if len(indices) != len(values):
                raise ValueError("array slice assignment must preserve length")
            for j, v in zip(indices, values):
                self._data[j] = v
                self._record(_OP.WRITE, _WRITE, j, len(self._data))
            return
        self._data[i] = value
        self._record(_OP.WRITE, _WRITE, self._index(i), len(self._data))

    def __iter__(self) -> Iterator[Any]:
        self._record(_OP.FORALL, _READ, None, len(self._data))
        for j in range(len(self._data)):
            self._record(_OP.READ, _READ, j, len(self._data))
            yield self._data[j]

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def __contains__(self, value) -> bool:
        try:
            pos: int | None = self._data.index(value)
        except ValueError:
            pos = None
        self._record(_OP.SEARCH, _READ, pos, len(self._data))
        return pos is not None

    def __eq__(self, other) -> bool:
        if isinstance(other, TrackedArray):
            return self._data == other._data
        return self._data == other

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    def __hash__(self):
        raise TypeError("unhashable type: 'TrackedArray'")

    def __repr__(self) -> str:
        return f"TrackedArray({self._data!r})"

    # -- fixed-size churn operations ------------------------------------

    def _reallocate(self, new_data: list[Any]) -> None:
        """Model the allocate-new + copy-all cost of resizing an array."""
        self._data = new_data
        self._record(_OP.RESIZE, _WRITE, None, len(self._data))
        self._record(_OP.COPY, _WRITE, None, len(self._data))

    def resize(self, new_length: int, fill: Any = 0) -> None:
        """Grow or shrink, .NET ``Array.Resize`` style."""
        old = self._data
        if new_length >= len(old):
            self._reallocate(old + [fill] * (new_length - len(old)))
        else:
            self._reallocate(old[:new_length])

    def insert(self, index: int, value) -> None:
        """Insertion forces a reallocation and full copy (IDF churn)."""
        pos = min(max(self._index(index), 0), len(self._data))
        new_data = self._data[:pos] + [value] + self._data[pos:]
        self._reallocate(new_data)
        self._record(_OP.INSERT, _WRITE, pos, len(self._data))

    def delete(self, index: int) -> None:
        """Deletion forces a reallocation and full copy (IDF churn)."""
        pos = self._index(index)
        if not 0 <= pos < len(self._data):
            raise IndexError("array delete index out of range")
        new_data = self._data[:pos] + self._data[pos + 1 :]
        self._reallocate(new_data)
        self._record(_OP.DELETE, _WRITE, pos, len(self._data))

    # -- queries ----------------------------------------------------------

    def index(self, value) -> int:
        pos = self._data.index(value)
        self._record(_OP.SEARCH, _READ, pos, len(self._data))
        return pos

    index_of = index

    def fill_all(self, value) -> None:
        """Set every slot (records one write per slot, front to back)."""
        for j in range(len(self._data)):
            self._data[j] = value
            self._record(_OP.WRITE, _WRITE, j, len(self._data))

    def sort(self, *, key=None, reverse: bool = False) -> None:
        self._data.sort(key=key, reverse=reverse)
        self._record(_OP.SORT, _WRITE, None, len(self._data))

    def reverse(self) -> None:
        self._data.reverse()
        self._record(_OP.REVERSE, _WRITE, None, len(self._data))

    def copy(self) -> list:
        self._record(_OP.COPY, _READ, None, len(self._data))
        return self._data.copy()

    def raw(self) -> list:
        """Underlying storage, event-free (see ``TrackedList.raw``)."""
        return self._data
