"""Factory registry mapping structure species to proxy classes.

Used by the AST rewriter (``repro.instrument.rewriter``) to replace
plain constructor calls with tracked equivalents, and by user code that
wants to wrap an existing container::

    tracked = as_tracked([1, 2, 3], label="scores")
"""

from __future__ import annotations

from typing import Any, Type

from ..events.types import StructureKind
from .base import TrackedBase
from .tracked_array import TrackedArray
from .tracked_dict import TrackedDict
from .tracked_extra import TrackedLinkedList, TrackedSet, TrackedSortedList
from .tracked_list import TrackedList
from .tracked_stack import TrackedQueue, TrackedStack

#: Species → proxy class.
TRACKED_CLASSES: dict[StructureKind, Type[TrackedBase]] = {
    StructureKind.LIST: TrackedList,
    StructureKind.ARRAY: TrackedArray,
    StructureKind.DICTIONARY: TrackedDict,
    StructureKind.STACK: TrackedStack,
    StructureKind.QUEUE: TrackedQueue,
    StructureKind.HASH_SET: TrackedSet,
    StructureKind.SORTED_LIST: TrackedSortedList,
    StructureKind.LINKED_LIST: TrackedLinkedList,
}


def tracked_class(kind: StructureKind) -> Type[TrackedBase]:
    """The proxy class for ``kind``; raises ``KeyError`` if untracked."""
    return TRACKED_CLASSES[kind]


def as_tracked(value: Any, label: str = "", collector=None) -> TrackedBase:
    """Wrap a plain container in the matching tracked proxy.

    Lists become :class:`TrackedList`, dicts :class:`TrackedDict`,
    tuples :class:`TrackedArray` (fixed size).  Already-tracked values
    pass through unchanged so instrumented code can be re-instrumented
    harmlessly.
    """
    if isinstance(value, TrackedBase):
        return value
    if isinstance(value, list):
        return TrackedList(value, label=label, collector=collector)
    if isinstance(value, dict):
        return TrackedDict(value, label=label, collector=collector)
    if isinstance(value, tuple):
        return TrackedArray(value, label=label, collector=collector)
    if isinstance(value, (set, frozenset)):
        return TrackedSet(value, label=label, collector=collector)
    raise TypeError(f"no tracked proxy for {type(value).__name__}")
