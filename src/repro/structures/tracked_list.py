"""Instrumented dynamic list -- the workhorse of DSspy.

The empirical study found ``list`` to be by far the most frequently
used dynamic data structure (65.05% of all instances), so the profiler
targets it first.  :class:`TrackedList` proxies a plain Python list and
records an access event for every interface interaction, including the
capacity behaviour of .NET's ``List<T>`` (explicit initial capacity,
geometric growth with ``Resize`` events) that Figure 2 of the paper
visualizes.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any

from ..events.collector import EventCollector
from ..events.profile import AllocationSite
from ..events.types import AccessKind, OperationKind, StructureKind
from ..runtime.guard import ACTIVE_GUARD
from .base import TrackedBase

_READ = AccessKind.READ
_WRITE = AccessKind.WRITE
_OP = OperationKind

# Plain-int spellings for the inlined guard-free hot paths below: the
# record hook only needs the enum *values*, and a module-global int
# load is cheaper than an enum attribute access per event.
_OP_READ = int(_OP.READ)
_OP_WRITE = int(_OP.WRITE)
_OP_INSERT = int(_OP.INSERT)
_K_READ = int(_READ)
_K_WRITE = int(_WRITE)


class TrackedList(TrackedBase):
    """List proxy emitting access events on every interface method.

    Parameters
    ----------
    iterable:
        Initial contents; each element is recorded as an ``Insert``.
    capacity:
        Optional explicit initial capacity.  Like ``new List<int>(10)``
        in the paper's Figure 2 snippet, a pre-sized list reports its
        *capacity* as the structure size while filling, so the profile's
        grey size bars stay flat during the initial insertion phase.
    label:
        Optional human-readable name used in reports.
    collector:
        Explicit collector; defaults to the ambient/active one.
    """

    KIND = StructureKind.LIST

    __slots__ = ("_data", "_capacity")

    def __init__(
        self,
        iterable: Iterable[Any] | None = None,
        capacity: int = 0,
        label: str = "",
        collector: EventCollector | None = None,
        site: AllocationSite | None = None,
    ) -> None:
        super().__init__(label=label, collector=collector, site=site)
        self._data: list[Any] = []
        self._capacity = max(int(capacity), 0)
        self._record(_OP.INIT, _WRITE, None, self._reported_size())
        if iterable is not None:
            for item in iterable:
                self.append(item)

    # -- capacity semantics ---------------------------------------------

    def _reported_size(self) -> int:
        """Size as shown in profiles: capacity while pre-sized, else count."""
        return max(len(self._data), self._capacity)

    def _grow_if_needed(self) -> None:
        """Geometric capacity growth with a ``Resize`` event, as a
        dynamic array implementation would incur a reallocate+copy."""
        if self._capacity and len(self._data) > self._capacity:
            self._capacity = max(self._capacity * 2, 4)
            self._record(_OP.RESIZE, _WRITE, None, self._reported_size())

    @property
    def capacity(self) -> int:
        return self._capacity

    def _index(self, i: int) -> int:
        """Normalize a (possibly negative) index for event positions."""
        n = len(self._data)
        return i + n if i < 0 else i

    # -- element access ---------------------------------------------------

    def __getitem__(self, i):
        if isinstance(i, slice):
            indices = range(*i.indices(len(self._data)))
            self._record(_OP.COPY, _READ, None, self._reported_size())
            for j in indices:
                self._record(_OP.READ, _READ, j, self._reported_size())
            return [self._data[j] for j in indices]
        value = self._data[i]
        if ACTIVE_GUARD[0] is None:
            n = len(self._data)
            cap = self._capacity
            self._record_fn(
                self._instance_id,
                _OP_READ,
                _K_READ,
                i + n if i < 0 else i,
                n if n >= cap else cap,
            )
        else:
            self._record(_OP.READ, _READ, self._index(i), self._reported_size())
        return value

    def __setitem__(self, i, value) -> None:
        if isinstance(i, slice):
            indices = range(*i.indices(len(self._data)))
            values = list(value)
            if len(indices) != len(values) and i.step not in (None, 1):
                raise ValueError("slice assignment size mismatch")
            self._data[i] = values
            for j in indices:
                self._record(_OP.WRITE, _WRITE, j, self._reported_size())
            return
        self._data[i] = value
        if ACTIVE_GUARD[0] is None:
            n = len(self._data)
            cap = self._capacity
            self._record_fn(
                self._instance_id,
                _OP_WRITE,
                _K_WRITE,
                i + n if i < 0 else i,
                n if n >= cap else cap,
            )
        else:
            self._record(_OP.WRITE, _WRITE, self._index(i), self._reported_size())

    def __delitem__(self, i) -> None:
        if isinstance(i, slice):
            for j in sorted(range(*i.indices(len(self._data))), reverse=True):
                pos = j
                del self._data[j]
                self._record(_OP.DELETE, _WRITE, pos, self._reported_size())
            return
        pos = self._index(i)
        del self._data[i]
        self._record(_OP.DELETE, _WRITE, pos, self._reported_size())

    def __iter__(self) -> Iterator[Any]:
        """Iteration records a ``ForAll`` marker plus one read per
        element in ascending order -- exactly the Read-Forward series a
        foreach loop produces in the paper's profiles."""
        self._record(_OP.FORALL, _READ, None, self._reported_size())
        for j in range(len(self._data)):
            if j >= len(self._data):  # mutated during iteration
                return
            self._record(_OP.READ, _READ, j, self._reported_size())
            yield self._data[j]

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def __contains__(self, value) -> bool:
        """Membership test is a ``Search``; position is the hit index."""
        try:
            pos: int | None = self._data.index(value)
        except ValueError:
            pos = None
        self._record(_OP.SEARCH, _READ, pos, self._reported_size())
        return pos is not None

    def __eq__(self, other) -> bool:
        if isinstance(other, TrackedList):
            return self._data == other._data
        return self._data == other

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    def __hash__(self):  # mutable container
        raise TypeError("unhashable type: 'TrackedList'")

    def __repr__(self) -> str:
        return f"TrackedList({self._data!r})"

    # -- growth -----------------------------------------------------------

    def append(self, value) -> None:
        data = self._data
        data.append(value)
        if self._capacity:
            self._grow_if_needed()
            self._record(_OP.INSERT, _WRITE, len(data) - 1, self._reported_size())
        elif ACTIVE_GUARD[0] is None:
            # Inlined guard-free hot path: one direct call into the
            # pre-bound record hook (the packed kernel when the fast
            # path is engaged) — no helper frames per event.
            n = len(data)
            self._record_fn(self._instance_id, _OP_INSERT, _K_WRITE, n - 1, n)
        else:
            self._record(_OP.INSERT, _WRITE, len(data) - 1, len(data))

    #: .NET spelling used throughout the paper's snippets.
    add = append

    def insert(self, index: int, value) -> None:
        n = len(self._data)
        pos = min(max(index + n if index < 0 else index, 0), n)
        self._data.insert(index, value)
        self._grow_if_needed()
        self._record(_OP.INSERT, _WRITE, pos, self._reported_size())

    def extend(self, iterable: Iterable[Any]) -> None:
        for item in iterable:
            self.append(item)

    add_range = extend

    def __iadd__(self, iterable: Iterable[Any]) -> "TrackedList":
        self.extend(iterable)
        return self

    def __add__(self, other) -> list:
        self._record(_OP.COPY, _READ, None, self._reported_size())
        other_data = other._data if isinstance(other, TrackedList) else list(other)
        return self._data + other_data

    # -- shrinkage ----------------------------------------------------------

    def pop(self, index: int = -1):
        pos = self._index(index)
        value = self._data.pop(index)
        self._record(_OP.DELETE, _WRITE, pos, self._reported_size())
        return value

    def remove(self, value) -> None:
        """Search for the element, then delete it (two events, matching
        the linear scan + removal a list performs)."""
        pos = self._data.index(value)  # raises ValueError like list.remove
        self._record(_OP.SEARCH, _READ, pos, self._reported_size())
        del self._data[pos]
        self._record(_OP.DELETE, _WRITE, pos, self._reported_size())

    def clear(self) -> None:
        self._data.clear()
        self._record(_OP.CLEAR, _WRITE, None, self._reported_size())

    # -- queries --------------------------------------------------------------

    def index(self, value, *args) -> int:
        pos = self._data.index(value, *args)
        self._record(_OP.SEARCH, _READ, pos, self._reported_size())
        return pos

    index_of = index

    def count(self, value) -> int:
        self._record(_OP.SEARCH, _READ, None, self._reported_size())
        return self._data.count(value)

    def contains(self, value) -> bool:
        return value in self

    # -- reordering --------------------------------------------------------------

    def sort(self, *, key=None, reverse: bool = False) -> None:
        self._data.sort(key=key, reverse=reverse)
        self._record(_OP.SORT, _WRITE, None, self._reported_size())

    def reverse(self) -> None:
        self._data.reverse()
        self._record(_OP.REVERSE, _WRITE, None, self._reported_size())

    # -- whole-structure -----------------------------------------------------------

    def copy(self) -> list:
        self._record(_OP.COPY, _READ, None, self._reported_size())
        return self._data.copy()

    to_list = copy

    def for_each(self, fn) -> None:
        """Apply ``fn`` to every element (.NET ``ForEach`` analog)."""
        self._record(_OP.FORALL, _READ, None, self._reported_size())
        for j, item in enumerate(self._data):
            self._record(_OP.READ, _READ, j, self._reported_size())
            fn(item)

    # -- untracked escape hatch -------------------------------------------------------

    def raw(self) -> list:
        """The underlying list, without recording an event.

        Analysis and verification code uses this to inspect contents
        without perturbing the profile under study.
        """
        return self._data
