"""Instrumented dictionary.

``dictionary`` is the second most frequent dynamic data structure in the
empirical study (16.53% of instances).  The pattern analysis of the
paper targets *linear* structures, so dictionary events carry no
positional information (``position=None``); the profile still feeds the
occurrence study, the visualizer's event-density views and the
Write-Without-Read rule.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from typing import Any

from ..events.collector import EventCollector
from ..events.profile import AllocationSite
from ..events.types import AccessKind, OperationKind, StructureKind
from .base import TrackedBase

_READ = AccessKind.READ
_WRITE = AccessKind.WRITE
_OP = OperationKind

_MISSING = object()


class TrackedDict(TrackedBase):
    """Dict proxy emitting positionless access events."""

    KIND = StructureKind.DICTIONARY

    __slots__ = ("_data",)

    def __init__(
        self,
        mapping: Mapping | Iterable[tuple[Any, Any]] | None = None,
        label: str = "",
        collector: EventCollector | None = None,
        site: AllocationSite | None = None,
    ) -> None:
        super().__init__(label=label, collector=collector, site=site)
        self._data: dict = {}
        self._record(_OP.INIT, _WRITE, None, 0)
        if mapping is not None:
            items = mapping.items() if isinstance(mapping, Mapping) else mapping
            for key, value in items:
                self[key] = value

    def __getitem__(self, key):
        value = self._data[key]
        self._record(_OP.READ, _READ, None, len(self._data))
        return value

    def __setitem__(self, key, value) -> None:
        inserting = key not in self._data
        self._data[key] = value
        self._record(
            _OP.INSERT if inserting else _OP.WRITE, _WRITE, None, len(self._data)
        )

    def __delitem__(self, key) -> None:
        del self._data[key]
        self._record(_OP.DELETE, _WRITE, None, len(self._data))

    def __contains__(self, key) -> bool:
        self._record(_OP.SEARCH, _READ, None, len(self._data))
        return key in self._data

    def __iter__(self) -> Iterator:
        self._record(_OP.FORALL, _READ, None, len(self._data))
        return iter(list(self._data))

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def __eq__(self, other) -> bool:
        if isinstance(other, TrackedDict):
            return self._data == other._data
        return self._data == other

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    def __hash__(self):
        raise TypeError("unhashable type: 'TrackedDict'")

    def __repr__(self) -> str:
        return f"TrackedDict({self._data!r})"

    def get(self, key, default=None):
        self._record(_OP.READ, _READ, None, len(self._data))
        return self._data.get(key, default)

    def setdefault(self, key, default=None):
        if key not in self._data:
            self[key] = default
            return default
        return self[key]

    def pop(self, key, default=_MISSING):
        if default is _MISSING:
            value = self._data.pop(key)
        else:
            if key not in self._data:
                self._record(_OP.SEARCH, _READ, None, len(self._data))
                return default
            value = self._data.pop(key)
        self._record(_OP.DELETE, _WRITE, None, len(self._data))
        return value

    def update(self, other: Mapping | Iterable[tuple[Any, Any]]) -> None:
        items = other.items() if isinstance(other, Mapping) else other
        for key, value in items:
            self[key] = value

    def clear(self) -> None:
        self._data.clear()
        self._record(_OP.CLEAR, _WRITE, None, 0)

    def keys(self):
        self._record(_OP.FORALL, _READ, None, len(self._data))
        return self._data.keys()

    def values(self):
        self._record(_OP.FORALL, _READ, None, len(self._data))
        return self._data.values()

    def items(self):
        self._record(_OP.FORALL, _READ, None, len(self._data))
        return self._data.items()

    def copy(self) -> dict:
        self._record(_OP.COPY, _READ, None, len(self._data))
        return self._data.copy()

    def raw(self) -> dict:
        """Underlying dict, event-free."""
        return self._data
