"""Proxy base for instrumented data structures.

The paper implements its dynamic profiler "using the proxy design
pattern so that it is easily extensible to runtime profiles of other
data structures or use cases" (§IV).  :class:`TrackedBase` is that
proxy root: it registers the instance with the active
:class:`~repro.events.collector.EventCollector`, captures the allocation
site from the call stack, and funnels every interface interaction
through :meth:`TrackedBase._record`.
"""

from __future__ import annotations

import sys

from ..events.collector import EventCollector, get_collector
from ..events.profile import AllocationSite, RuntimeProfile
from ..events.types import AccessKind, OperationKind, StructureKind

_PACKAGE_PREFIX = __name__.rsplit(".", 1)[0]  # "repro.structures"


def capture_site(variable: str = "") -> AllocationSite:
    """Allocation site of the nearest caller outside this package.

    Walks the stack past all ``repro.structures`` frames so that user
    code constructing a tracked structure -- directly or through a
    factory -- is reported, mirroring how DSspy binds events to the
    instantiation location in the analyzed program.
    """
    frame = sys._getframe(1)
    while frame is not None:
        module = frame.f_globals.get("__name__", "")
        if not module.startswith(_PACKAGE_PREFIX):
            return AllocationSite(
                filename=frame.f_code.co_filename,
                lineno=frame.f_lineno,
                function=frame.f_code.co_name,
                variable=variable,
            )
        frame = frame.f_back
    return AllocationSite(filename="<unknown>", lineno=0, variable=variable)


class TrackedBase:
    """Common machinery for all instrumented containers.

    Subclasses declare their species via ``KIND`` and call
    :meth:`_record` from every interface method.  The recording path is
    deliberately minimal -- one method call, one tuple, one channel
    post -- because the instrumentation slowdown (Table IV) is dominated
    by exactly this path.
    """

    KIND: StructureKind = StructureKind.OTHER

    __slots__ = ("_collector", "_instance_id", "_site", "_label", "_record_fn")

    def __init__(
        self,
        label: str = "",
        collector: EventCollector | None = None,
        site: AllocationSite | None = None,
    ) -> None:
        self._collector = collector if collector is not None else get_collector()
        self._site = site if site is not None else capture_site(label)
        self._label = label
        self._instance_id = self._collector.register_instance(
            self.KIND, site=self._site, label=label
        )
        # Bound method cached at construction: saves one attribute hop
        # per access event, which is measurable on the hot path.
        self._record_fn = self._collector.record

    # -- identity ------------------------------------------------------

    @property
    def instance_id(self) -> int:
        """Collector-assigned id; key into the collector's profiles."""
        return self._instance_id

    @property
    def allocation_site(self) -> AllocationSite:
        return self._site

    @property
    def label(self) -> str:
        return self._label

    def profile(self) -> RuntimeProfile:
        """This instance's runtime profile (finishes the collector)."""
        return self._collector.profile_of(self._instance_id)

    # -- recording ------------------------------------------------------

    def _record(
        self,
        op: OperationKind,
        kind: AccessKind,
        position: int | None,
        size: int,
    ) -> None:
        self._record_fn(self._instance_id, op, kind, position, size)
