"""Proxy base for instrumented data structures.

The paper implements its dynamic profiler "using the proxy design
pattern so that it is easily extensible to runtime profiles of other
data structures or use cases" (§IV).  :class:`TrackedBase` is that
proxy root: it registers the instance with the active
:class:`~repro.events.collector.EventCollector`, captures the allocation
site from the call stack, and funnels every interface interaction
through :meth:`TrackedBase._record`.

Fail-open containment: when a :class:`~repro.runtime.guard.RuntimeGuard`
is armed, both the constructor and :meth:`_record` run under the
exception firewall — a raising collector/channel is contained and
counted instead of propagating into user code, re-entrant recording
from profiler internals is suppressed, and once the circuit breaker
trips the instance degrades to a near-zero-overhead plain delegate.
With no guard armed (the default), behaviour is byte-identical to the
fail-loud seed: profiler exceptions propagate, which is what tests and
debugging want.
"""

from __future__ import annotations

import sys

from ..events.collector import EventCollector, get_collector
from ..events.profile import AllocationSite, RuntimeProfile
from ..events.types import AccessKind, OperationKind, StructureKind
from ..runtime.guard import ACTIVE_GUARD

_PACKAGE_PREFIX = __name__.rsplit(".", 1)[0]  # "repro.structures"

_UNKNOWN_SITE = AllocationSite(filename="<unknown>", lineno=0)

#: One-slot switch for the allocation-site frame walk (the CLI's
#: ``--no-sites`` fast path clears it).
_SITE_CAPTURE: list = [True]


def set_site_capture(enabled: bool) -> None:
    """Globally enable/disable allocation-site capture.

    Disabling skips the per-construction stack walk entirely — the
    fast path for workloads that allocate many short-lived structures
    and don't need sites in the report."""
    _SITE_CAPTURE[0] = bool(enabled)


def site_capture_enabled() -> bool:
    return _SITE_CAPTURE[0]


def capture_site(variable: str = "") -> AllocationSite:
    """Allocation site of the nearest caller outside this package.

    Walks the stack past all ``repro.structures`` frames so that user
    code constructing a tracked structure -- directly or through a
    factory -- is reported, mirroring how DSspy binds events to the
    instantiation location in the analyzed program.

    Fail-open: the frame walk is best-effort observability, never worth
    an exception in user code.  If it raises (``sys._getframe`` missing
    on an alternative interpreter, exotic frame objects, re-entrant
    interpreter states) the ``<unknown>`` site is returned instead, and
    an armed guard counts the fault.
    """
    if not _SITE_CAPTURE[0]:
        return AllocationSite(
            filename="<unknown>", lineno=0, variable=variable
        )
    try:
        frame = sys._getframe(1)
        while frame is not None:
            module = frame.f_globals.get("__name__", "")
            if not module.startswith(_PACKAGE_PREFIX):
                return AllocationSite(
                    filename=frame.f_code.co_filename,
                    lineno=frame.f_lineno,
                    function=frame.f_code.co_name,
                    variable=variable,
                )
            frame = frame.f_back
    except Exception as exc:
        guard = ACTIVE_GUARD[0]
        if guard is not None:
            guard.fault("site", exc)
    return AllocationSite(filename="<unknown>", lineno=0, variable=variable)


def _discard_event(
    instance_id: int,
    op: OperationKind,
    kind: AccessKind,
    position: int | None,
    size: int,
) -> None:
    """Recording no-op installed on untracked (contained-failure)
    instances: the cheapest possible pass-through delegate."""


class TrackedBase:
    """Common machinery for all instrumented containers.

    Subclasses declare their species via ``KIND`` and call
    :meth:`_record` from every interface method.  The recording path is
    deliberately minimal -- one method call, one tuple, one channel
    post -- because the instrumentation slowdown (Table IV) is dominated
    by exactly this path.
    """

    KIND: StructureKind = StructureKind.OTHER

    __slots__ = ("_collector", "_instance_id", "_site", "_label", "_record_fn")

    def __init__(
        self,
        label: str = "",
        collector: EventCollector | None = None,
        site: AllocationSite | None = None,
    ) -> None:
        self._label = label
        guard = ACTIVE_GUARD[0]
        if guard is None:
            self._collector = collector if collector is not None else get_collector()
            self._site = site if site is not None else capture_site(label)
            self._instance_id = self._collector.register_instance(
                self.KIND, site=self._site, label=label
            )
            # Bound method cached at construction: saves one attribute
            # hop per access event, measurable on the hot path.
            self._record_fn = self._collector.record
            return
        if guard._blocked[0] or guard._tls.inside:
            # Breaker tripped, or a profiler internal is constructing a
            # container: plain delegate, no registration.
            self._untrack(site)
            return
        try:
            self._collector = collector if collector is not None else get_collector()
            self._site = site if site is not None else capture_site(label)
            self._instance_id = self._collector.register_instance(
                self.KIND, site=self._site, label=label
            )
            self._record_fn = self._collector.record
        except Exception as exc:
            guard.fault("register", exc)
            self._untrack(site)

    def _untrack(self, site: AllocationSite | None = None) -> None:
        """Degrade this instance to an uninstrumented plain delegate."""
        self._collector = None
        self._instance_id = -1
        self._site = site if site is not None else _UNKNOWN_SITE
        self._record_fn = _discard_event

    # -- identity ------------------------------------------------------

    @property
    def instance_id(self) -> int:
        """Collector-assigned id; key into the collector's profiles
        (``-1`` when containment untracked this instance)."""
        return self._instance_id

    @property
    def tracked(self) -> bool:
        """False when fail-open containment degraded this instance to a
        plain delegate (registration failed or the breaker was open at
        construction)."""
        return self._collector is not None

    @property
    def allocation_site(self) -> AllocationSite:
        return self._site

    @property
    def label(self) -> str:
        return self._label

    def profile(self) -> RuntimeProfile:
        """This instance's runtime profile (finishes the collector)."""
        if self._collector is None:
            raise RuntimeError(
                "this instance was untracked by the fail-open guard "
                "(registration failed or the circuit breaker was open); "
                "no profile was recorded"
            )
        return self._collector.profile_of(self._instance_id)

    # -- recording ------------------------------------------------------

    def _record(
        self,
        op: OperationKind,
        kind: AccessKind,
        position: int | None,
        size: int,
    ) -> None:
        guard = ACTIVE_GUARD[0]
        if guard is None:
            self._record_fn(self._instance_id, op, kind, position, size)
            return
        if guard._blocked[0] or guard._tls.inside:
            return  # pass-through: breaker open, or profiler-internal call
        try:
            self._record_fn(self._instance_id, op, kind, position, size)
        except Exception as exc:
            guard.fault("record", exc)
