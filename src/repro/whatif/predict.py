"""Causal "what-if" speedup prediction for flagged use cases.

The detection pipeline stops at *which* recommendations fire; this
module answers *which one pays off most*.  For each parallel use case it
combines two sources:

1. The happens-before DAG of the instance's recorded events
   (:mod:`repro.whatif.dag`): its span is the portion of the observed
   execution the transform cannot touch.
2. The transform's own region estimate
   (:func:`repro.parallel.transforms.estimate_region`): how much work
   the recommendation parallelizes and how many ways it can split.

The predicted end-to-end speedup is an *analytic* model — equal-split
chunks, fork/join overhead only:

    seq          = region.work × operations
    serial_rest  = max(span − seq, 0)          # critical path the
                                               # transform can't shorten
    T_before     = serial_rest + seq
    T_after      = serial_rest + operations × (fork_join + work / ways)
    prediction   = T_before / T_after

It deliberately does NOT know about per-task spawn overhead, chunk
imbalance, or LPT scheduling — those belong to the *measured* side
(:func:`repro.parallel.transforms.execute_transform`), and the gap
between the two is exactly what the measured-vs-predicted accuracy band
quantifies (``dsspy bench --whatif``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Mapping

from ..events.profile import RuntimeProfile
from ..parallel.machine import SimulatedMachine
from ..parallel.transforms import (
    estimate_operations,
    estimate_region,
    transform_ways,
)
from ..usecases.engine import UseCaseReport
from ..usecases.model import UseCase
from .dag import WorkSpan, fold_profile, potential_speedup


def end_to_end_speedup(
    serial_rest: float, sequential: float, parallel: float
) -> float:
    """Whole-execution speedup when only the region changes."""
    if sequential <= 0 or parallel <= 0:
        return 1.0
    return (serial_rest + sequential) / (serial_rest + parallel)


@dataclass(frozen=True, slots=True)
class Prediction:
    """Everything the what-if model derived for one use case."""

    predicted_speedup: float
    region_name: str
    region_work: float
    operations: int
    ways: int
    serial_rest: float
    dag_work: float
    dag_span: float

    @property
    def dag_parallelism(self) -> float:
        """Inherent parallelism already present in the recording."""
        return self.dag_work / self.dag_span if self.dag_span > 0 else 1.0

    def dag_bound(self, cores: int) -> float:
        """Work/span ceiling of the *recorded* DAG (before the
        transform rewrites it) — informational, not the prediction."""
        return potential_speedup(self.dag_work, self.dag_span, cores)


def predict_use_case(
    use_case: UseCase,
    machine: SimulatedMachine,
    workspan: WorkSpan | None = None,
) -> Prediction:
    """Predict the speedup of following one recommendation.

    ``workspan`` is the instance's recorded work/span; when omitted it
    is folded from the use case's own profile.  Sequential-optimization
    kinds predict 1.0 — their advice does not add concurrency.
    """
    if workspan is None:
        workspan = fold_profile(use_case.profile)
    region = estimate_region(use_case)
    operations = estimate_operations(use_case)
    sequential = region.work * operations
    if not use_case.kind.parallel or sequential <= 0:
        return Prediction(
            predicted_speedup=1.0,
            region_name=region.name,
            region_work=region.work,
            operations=operations,
            ways=1,
            serial_rest=max(workspan.span - sequential, 0.0),
            dag_work=workspan.work,
            dag_span=workspan.span,
        )
    ways = transform_ways(region.work, region.max_parallelism, machine.cores)
    serial_rest = max(workspan.span - sequential, 0.0)
    parallel = operations * (
        machine.config.fork_join_overhead + region.work / ways
    )
    return Prediction(
        predicted_speedup=end_to_end_speedup(serial_rest, sequential, parallel),
        region_name=region.name,
        region_work=region.work,
        operations=operations,
        ways=ways,
        serial_rest=serial_rest,
        dag_work=workspan.work,
        dag_span=workspan.span,
    )


def workspans_from_profiles(
    profiles: Iterable[RuntimeProfile],
) -> dict[int, WorkSpan]:
    """Per-instance work/span folded from batch profiles."""
    return {p.instance_id: fold_profile(p) for p in profiles}


def workspans_from_engine(engine) -> dict[int, WorkSpan]:
    """Per-instance work/span from a streaming engine's lane summaries
    (live SNAPSHOT path — no event history needed)."""
    out: dict[int, WorkSpan] = {}
    for instance_id, fold in engine._folds.items():
        lanes = fold.lanes
        if lanes.work > 0:
            out[instance_id] = WorkSpan(work=float(lanes.work), span=lanes.span)
    return out


def annotate_report(
    report: UseCaseReport,
    machine: SimulatedMachine,
    workspans: Mapping[int, WorkSpan] | None = None,
) -> UseCaseReport:
    """A copy of ``report`` where every use case carries its
    ``predicted_speedup`` (sequential kinds get 1.0)."""
    spans = workspans or {}
    annotated = tuple(
        replace(
            u,
            predicted_speedup=predict_use_case(
                u, machine, spans.get(u.instance_id)
            ).predicted_speedup,
        )
        for u in report.use_cases
    )
    return UseCaseReport(
        use_cases=annotated, instances_analyzed=report.instances_analyzed
    )


def rank_report(report: UseCaseReport) -> UseCaseReport:
    """Order use cases by expected payoff, highest first.

    The sort is stable, so use cases with equal (or absent) predictions
    keep the engine's original threshold order — the tie-break the
    acceptance criteria require.
    """
    ranked = tuple(
        sorted(
            report.use_cases,
            key=lambda u: -(u.predicted_speedup if u.predicted_speedup is not None else 1.0),
        )
    )
    return UseCaseReport(
        use_cases=ranked, instances_analyzed=report.instances_analyzed
    )


__all__ = [
    "Prediction",
    "annotate_report",
    "end_to_end_speedup",
    "predict_use_case",
    "rank_report",
    "transform_ways",
    "workspans_from_engine",
    "workspans_from_profiles",
]
