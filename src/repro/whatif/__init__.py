"""Causal what-if profiler: happens-before DAG reconstruction,
work/span analysis, and per-recommendation speedup prediction.

Closes the loop the paper leaves open: after `repro.usecases` flags
*what* to parallelize, this package predicts *how much* each
recommendation would pay on k cores (TASKPROF-style causal profiling
over the recorded event stream), so reports rank by expected payoff."""

from .dag import (
    CriticalPathFold,
    LaneSummary,
    WorkSpan,
    fold_profile,
    fold_raw_events,
    longest_path_span,
    potential_speedup,
)
from .predict import (
    Prediction,
    annotate_report,
    end_to_end_speedup,
    predict_use_case,
    rank_report,
    transform_ways,
    workspans_from_engine,
    workspans_from_profiles,
)
from .report import format_whatif_table

__all__ = [
    "CriticalPathFold",
    "LaneSummary",
    "Prediction",
    "WorkSpan",
    "annotate_report",
    "end_to_end_speedup",
    "fold_profile",
    "fold_raw_events",
    "format_whatif_table",
    "longest_path_span",
    "potential_speedup",
    "predict_use_case",
    "rank_report",
    "transform_ways",
    "workspans_from_engine",
    "workspans_from_profiles",
]
