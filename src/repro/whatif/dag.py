"""Happens-before DAG reconstruction and work/span analysis.

The recorder captures, per instance, a totally ordered event stream
with precise thread ids (§IV).  Within one thread the stream is program
order; across threads, two accesses are ordered only when they
*conflict* (at least one writes — the classic data-race condition).
That relation is the instance's happens-before DAG, and its two scalar
summaries are the currency of causal profiling (TASKPROF, PAPERS.md):

``work``
    Total cost of all events (one abstract unit per access event —
    exactly the granularity :mod:`repro.parallel.transforms` uses).
``span``
    Length of the critical path through the DAG: the cost of the
    longest chain of events that *must* run sequentially no matter how
    many cores execute the rest.

``work / span`` is the instance's inherent parallelism; on ``k`` cores
the classic work/span bound caps its speedup at
``work / max(span, work / k)`` (:func:`potential_speedup`).

The DAG never needs to be materialized.  Because the recorded stream
serializes conflicting accesses in arrival order, the longest path
ending at each event depends only on three running maxima — the end of
its thread's own lane, the end of the latest write, and the end of the
latest read — so :class:`CriticalPathFold` computes work and span in
O(1) time and O(threads) memory per event.  That is what lets the
streaming engine carry a :class:`LaneSummary` per instance without
retaining history (the bounded-memory contract), while
:func:`longest_path_span` keeps the O(n²)-edge textbook computation
around as the property-test oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..events.event import AccessEvent, RawEvent
from ..events.profile import RuntimeProfile
from ..events.types import AccessKind

_READ = int(AccessKind.READ)


@dataclass
class LaneSummary:
    """O(threads) happens-before state of one instance, fed one event
    at a time.

    ``lane_end[tid]`` is the end time of thread ``tid``'s latest event
    (program order), ``last_write_end`` the end of the latest write on
    any thread, ``max_read_end`` the latest read end.  A read must
    follow its lane and every earlier write; a write must additionally
    follow every earlier read.  Each event costs one unit.
    """

    lane_end: dict[int, float] = field(default_factory=dict)
    last_write_end: float = 0.0
    max_read_end: float = 0.0
    work: int = 0

    def feed(self, thread_id: int, is_read: bool) -> None:
        start = self.lane_end.get(thread_id, 0.0)
        if self.last_write_end > start:
            start = self.last_write_end
        if is_read:
            end = start + 1.0
            if end > self.max_read_end:
                self.max_read_end = end
        else:
            if self.max_read_end > start:
                start = self.max_read_end
            end = start + 1.0
            self.last_write_end = end
        self.lane_end[thread_id] = end
        self.work += 1

    @property
    def span(self) -> float:
        """Critical-path length: the latest end over all lanes."""
        return max(self.lane_end.values(), default=0.0)

    @property
    def parallelism(self) -> float:
        """Inherent parallelism ``work / span`` (1.0 when empty)."""
        span = self.span
        return self.work / span if span > 0 else 1.0

    @property
    def thread_count(self) -> int:
        return len(self.lane_end)

    # -- serialization (checkpoint / SNAPSHOT payloads) ------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "lane_end": {str(tid): end for tid, end in self.lane_end.items()},
            "last_write_end": self.last_write_end,
            "max_read_end": self.max_read_end,
            "work": self.work,
        }

    @classmethod
    def from_dict(cls, obj: dict[str, Any] | None) -> "LaneSummary":
        """Rebuild from a serialized dict; ``None`` (a checkpoint
        written before lane summaries existed) yields an empty summary."""
        if not obj:
            return cls()
        return cls(
            lane_end={int(tid): float(end) for tid, end in obj["lane_end"].items()},
            last_write_end=float(obj["last_write_end"]),
            max_read_end=float(obj["max_read_end"]),
            work=int(obj["work"]),
        )


@dataclass(frozen=True)
class WorkSpan:
    """The two causal-profiling scalars of one instance."""

    work: float
    span: float

    @property
    def parallelism(self) -> float:
        return self.work / self.span if self.span > 0 else 1.0

    def speedup_on(self, cores: int) -> float:
        return potential_speedup(self.work, self.span, cores)


def potential_speedup(work: float, span: float, cores: int) -> float:
    """Work/span speedup bound on ``cores`` workers.

    A greedy scheduler finishes within ``max(span, work / cores)``
    (Brent's bound up to a constant), so the attainable speedup is
    ``work`` over that — 1.0 for a fully serial DAG (span == work),
    approaching ``cores`` for embarrassingly parallel ones.
    """
    if cores < 1:
        raise ValueError("cores must be >= 1")
    if work <= 0 or span <= 0:
        return 1.0
    return work / max(span, work / cores)


class CriticalPathFold:
    """Incremental work/span over one instance's event stream."""

    def __init__(self) -> None:
        self.lanes = LaneSummary()

    def feed(self, thread_id: int, is_read: bool) -> None:
        self.lanes.feed(thread_id, is_read)

    def feed_event(self, event: AccessEvent) -> None:
        self.feed(event.thread_id, event.is_read)

    def feed_raw(self, raw: RawEvent) -> None:
        # (instance_id, op, kind, position, size, thread_id, wall_time)
        self.feed(raw[5], raw[2] == _READ)

    def result(self) -> WorkSpan:
        return WorkSpan(work=float(self.lanes.work), span=self.lanes.span)


def fold_profile(profile: RuntimeProfile) -> WorkSpan:
    """Work/span of one batch profile's full event history."""
    fold = CriticalPathFold()
    for event in profile.events:
        fold.feed_event(event)
    return fold.result()


def fold_raw_events(raws: Iterable[RawEvent]) -> dict[int, WorkSpan]:
    """Per-instance work/span over a raw event stream (spill replay)."""
    folds: dict[int, CriticalPathFold] = {}
    for raw in raws:
        fold = folds.get(raw[0])
        if fold is None:
            fold = folds[raw[0]] = CriticalPathFold()
        fold.feed_raw(raw)
    return {iid: fold.result() for iid, fold in folds.items()}


def longest_path_span(events: Sequence[tuple[int, bool]]) -> float:
    """Brute-force critical path: materialize every happens-before edge
    and run the generic longest-path DP.

    ``events`` is ``[(thread_id, is_read), ...]`` in recorded order.
    Edges: program order within a thread; write→anything and
    anything→write across threads (conflicting accesses serialize in
    recorded order).  O(n²) — the property-test oracle for
    :class:`CriticalPathFold`, never the production path.
    """
    n = len(events)
    predecessors: list[list[int]] = [[] for _ in range(n)]
    for j in range(n):
        tid_j, read_j = events[j]
        for i in range(j):
            tid_i, read_i = events[i]
            if tid_i == tid_j:
                predecessors[j].append(i)  # program order
            elif not read_i or not read_j:
                predecessors[j].append(i)  # conflict: at least one writes
    dist = [0.0] * n
    for j in range(n):
        best = 0.0
        for i in predecessors[j]:
            if dist[i] > best:
                best = dist[i]
        dist[j] = best + 1.0
    return max(dist, default=0.0)


__all__ = [
    "CriticalPathFold",
    "LaneSummary",
    "WorkSpan",
    "fold_profile",
    "fold_raw_events",
    "longest_path_span",
    "potential_speedup",
]
