"""Textual rendering of what-if predictions (``dsspy whatif``)."""

from __future__ import annotations

from ..parallel.machine import SimulatedMachine
from ..usecases.engine import UseCaseReport
from ..usecases.model import UseCase
from .dag import WorkSpan
from .predict import Prediction, predict_use_case


def _site_of(use_case: UseCase) -> str:
    site = use_case.site
    if site is None:
        label = use_case.profile.label
        return label if label else f"#{use_case.instance_id}"
    import os

    return f"{os.path.basename(site.filename)}:{site.lineno}"


def format_whatif_table(
    report: UseCaseReport,
    machine: SimulatedMachine,
    workspans: dict[int, WorkSpan] | None = None,
    top: int | None = None,
    title: str = "What-if speedup predictions",
) -> str:
    """Ranked table: one row per use case, highest predicted payoff
    first.  ``report`` should already be annotated and ranked."""
    spans = workspans or {}
    header = (
        f"{'#':>2}  {'pred':>6}  {'kind':<4} {'site':<28} "
        f"{'region':<20} {'work':>10} {'ops':>6} {'ways':>4} {'dag-par':>7}"
    )
    lines = [
        f"{title} (cores={machine.cores})",
        "=" * len(header),
        header,
        "-" * len(header),
    ]
    shown = report.use_cases if top is None else report.use_cases[:top]
    for i, use_case in enumerate(shown, start=1):
        p: Prediction = predict_use_case(
            use_case, machine, spans.get(use_case.instance_id)
        )
        predicted = (
            use_case.predicted_speedup
            if use_case.predicted_speedup is not None
            else p.predicted_speedup
        )
        lines.append(
            f"{i:>2}  {predicted:>5.2f}x  {use_case.kind.abbreviation:<4} "
            f"{_site_of(use_case):<28} {p.region_name:<20} "
            f"{p.region_work:>10.0f} {p.operations:>6} {p.ways:>4} "
            f"{p.dag_parallelism:>6.2f}x"
        )
    if not shown:
        lines.append("(no use cases)")
    if top is not None and len(report.use_cases) > top:
        lines.append(f"... {len(report.use_cases) - top} more below the cut")
    return "\n".join(lines)


__all__ = ["format_whatif_table"]
