"""Mandelbrot — fractal renderer (Table IV row 6).

Reimplements the paper's Mandelbrot benchmark: computes escape
iterations over a pixel grid and produces an indexed-color image.  The
paper's run (1,858 x 1,028 pixels) found seven data structure instances
and four use cases, all true positives, total speedup 3.00 on 8 cores;
three of the parallelized locations matched the hand-parallelized
version.

Data structures (7 instances) and the use cases they carry:

1. ``real_axis``  list — x-coordinates, built by a long append phase
   (Long-Insert, TP: the axis-initialization location the paper's use
   cases two/three point at, speedup 1.77 there).
2. ``imag_axis``  list — y-coordinates (Long-Insert, TP; same paper
   location).
3. ``image``      list — escape counts appended pixel-by-pixel
   (Long-Insert, TP: the create-final-image location, paper speedup
   1.40; the main loop around it is paper use case one, 2.90).
4. ``histogram``  list — iteration-count histogram, scanned repeatedly
   for normalization (Frequent-Long-Read, TP).
5. ``palette``    list — small color table, random-position lookups
   (no use case).
6. ``options``    list — render settings (no use case).
7. ``row_starts`` array — per-row offsets, strided access (no use case).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.machine import ParallelRegion, WorkDecomposition
from .adapters import Containers
from .base import PaperRow, Workload


def escape_iterations(cr: float, ci: float, max_iter: int) -> int:
    """Escape-time iteration count for one point of the complex plane."""
    zr = zi = 0.0
    for n in range(max_iter):
        zr2 = zr * zr
        zi2 = zi * zi
        if zr2 + zi2 > 4.0:
            return n
        zi = 2.0 * zr * zi + ci
        zr = zr2 - zi2 + cr
    return max_iter


@dataclass
class MandelbrotResult:
    """Verifiable output of one render."""

    width: int
    height: int
    pixels: list[int]
    histogram: list[int]
    normalized_total: float

    def pixel(self, x: int, y: int) -> int:
        return self.pixels[y * self.width + x]


class Mandelbrot(Workload):
    """The Mandelbrot evaluation workload."""

    paper = PaperRow(
        name="Mandelbrot",
        domain="Solver",
        loc=150,
        runtime_s=0.11,
        profiling_s=1.20,
        slowdown=10.91,
        instances=7,
        use_cases=4,
        true_positives=4,
        reduction=42.86,
        speedup=3.00,
    )

    #: Base grid; the paper rendered 1858x1028 — we default smaller and
    #: scale up in benchmarks (floors keep every use-case verdict
    #: stable, see Workload docstring).
    BASE_WIDTH = 800
    BASE_HEIGHT = 480
    BASE_MAX_ITER = 40

    # Verdict floors: Long-Insert needs >=100-event phases and enough
    # work to beat the fork/join overhead (true positive).
    MIN_AXIS = 360
    #: Floor keeps the histogram wide enough that its normalization
    #: scans stay a paying parallelization (true positive).
    MIN_MAX_ITER = 24

    #: Normalization passes over the histogram (>10 for FLR).
    NORMALIZE_PASSES = 12

    def run(self, containers: Containers, scale: float = 1.0) -> MandelbrotResult:
        width = self.scaled(self.BASE_WIDTH, scale, self.MIN_AXIS)
        height = self.scaled(self.BASE_HEIGHT, scale, self.MIN_AXIS)
        max_iter = self.scaled(self.BASE_MAX_ITER, scale, self.MIN_MAX_ITER)

        options = containers.new_list(label="options")
        for value in ("indexed", "histogram-equalized", width, height, max_iter):
            options.append(value)

        # Axis initialization: the paper's compiler-switch-parallelized
        # location (use cases two and three).
        real_axis = containers.new_list(label="real_axis")
        for x in range(width):
            real_axis.append(-2.5 + 3.5 * x / (width - 1))
        imag_axis = containers.new_list(label="imag_axis")
        for y in range(height):
            imag_axis.append(-1.25 + 2.5 * y / (height - 1))

        row_starts = containers.new_array(height, label="row_starts")
        for y in range(0, height, 2):  # strided: no adjacent pattern
            row_starts[y] = y * width
        for y in range(1, height, 2):
            row_starts[y] = y * width

        palette = containers.new_list(label="palette")
        for i in range(16):
            palette.append((i * 16, 255 - i * 16, (i * 37) % 256))

        # The image build: use case one / four — the long insertion the
        # paper parallelizes for 2.90 / 1.40.
        reals = real_axis.raw()
        imags = imag_axis.raw()
        image = containers.new_list(label="image")
        histogram_counts = [0] * (max_iter + 1)
        for y in range(height):
            ci = imags[y]
            for x in range(width):
                n = escape_iterations(reals[x], ci, max_iter)
                image.append(n)
                histogram_counts[n] += 1

        histogram = containers.new_list(label="histogram")
        for count in histogram_counts:
            histogram.append(count)

        # Histogram equalization: repeated full scans of the histogram —
        # Frequent-Long-Read.  (Palette lookups jump around: no pattern.)
        pal = palette.raw()
        hist_len = len(histogram)
        normalized_total = 0.0
        total_pixels = width * height
        for _ in range(self.NORMALIZE_PASSES):
            running = 0
            for i in range(hist_len):
                running += histogram[i]
                normalized_total += pal[(running * 7) % len(pal)][0] / total_pixels
            histogram.index(histogram.raw()[-1])  # locate the tail bucket

        return MandelbrotResult(
            width=width,
            height=height,
            pixels=image.raw(),
            histogram=histogram.raw(),
            normalized_total=normalized_total,
        )

    def decomposition(self, scale: float = 1.0) -> WorkDecomposition:
        width = self.scaled(self.BASE_WIDTH, scale, self.MIN_AXIS)
        height = self.scaled(self.BASE_HEIGHT, scale, self.MIN_AXIS)
        max_iter = self.scaled(self.BASE_MAX_ITER, scale, self.MIN_MAX_ITER)
        pixel_work = float(width * height) * (max_iter / 2)
        axis_work = float(width + height)
        histogram_work = float(self.NORMALIZE_PASSES * (max_iter + 1))
        parallel = pixel_work + axis_work + histogram_work
        # Sequential remainder (setup, palette mapping, I/O) — the paper
        # measured 9.09% sequential runtime for Mandelbrot (Table VI).
        sequential = parallel * (50.0 / 500.0)
        return WorkDecomposition(
            sequential_work=sequential,
            regions=(
                ParallelRegion(work=pixel_work, name="pixel computation"),
                ParallelRegion(work=axis_work, name="axis initialization"),
                ParallelRegion(work=histogram_work, name="histogram passes"),
            ),
            name=self.paper.name,
        )
