"""Hand-parallelized variants of the evaluation workloads.

The paper compares DSspy's findings against manually parallelized
versions of GPdotNET and Mandelbrot ("it allows us to compare the
results and speedup gains from DSspy with a parallel version from a
parallel software engineer", §V).  These are those versions for our
reimplementations: each follows exactly the recommended actions of the
detected use cases, using the real thread-based executors, and each is
verified to produce results identical to its sequential original.

On CPython the wall-clock gain is GIL-bound; the *correctness* of the
transforms is what these variants establish (speedups come from the
machine model, DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.executor import ParallelExecutor
from ..parallel.parallel_list import parallel_sorted
from .algorithmia import Algorithmia
from .base import deterministic_rng
from .mandelbrot import Mandelbrot, MandelbrotResult, escape_iterations
from .wordwheel import WordWheelSolver


@dataclass(frozen=True)
class ParallelRunOutcome:
    """Result of a parallel variant plus its equivalence verdict."""

    name: str
    matches_sequential: bool
    detail: str


def mandelbrot_parallel(
    workload: Mandelbrot | None = None,
    scale: float = 0.1,
    executor: ParallelExecutor | None = None,
) -> ParallelRunOutcome:
    """Mandelbrot with the three recommended transforms applied:
    parallel axis initialization (use cases two/three), parallel
    pixel rows (use case one/four).  Must reproduce the sequential
    image bit-for-bit."""
    workload = workload if workload is not None else Mandelbrot()
    executor = executor if executor is not None else ParallelExecutor(4)

    sequential: MandelbrotResult = workload.run_plain(scale=scale)
    width, height = sequential.width, sequential.height
    max_iter = workload.scaled(
        workload.BASE_MAX_ITER, scale, workload.MIN_MAX_ITER
    )

    # Recommended action: parallelize the axis initialization.
    reals = executor.parallel_fill(
        lambda x: -2.5 + 3.5 * x / (width - 1), width
    )
    imags = executor.parallel_fill(
        lambda y: -1.25 + 2.5 * y / (height - 1), height
    )

    # Recommended action: parallelize the image build (rows fan out).
    def render_row(y: int) -> list[int]:
        ci = imags[y]
        return [escape_iterations(reals[x], ci, max_iter) for x in range(width)]

    rows = executor.parallel_map(render_row, list(range(height)))
    pixels = [value for row in rows for value in row]

    matches = pixels == sequential.pixels
    return ParallelRunOutcome(
        name="Mandelbrot",
        matches_sequential=matches,
        detail=f"{width}x{height} pixels, {executor.workers} workers",
    )


def algorithmia_parallel_pq(
    scale: float = 0.1, executor: ParallelExecutor | None = None
) -> ParallelRunOutcome:
    """Algorithmia's priority-queue search, parallelized per the
    Frequent-Long-Read recommendation (the paper's 2.30x location)."""
    executor = executor if executor is not None else ParallelExecutor(4)
    workload = Algorithmia()
    rng = deterministic_rng(99)
    # Reproduce the sequential scenario's priorities (same seed path:
    # scenario 1 consumes the first values, scenario 2 the next block).
    for _ in range(
        workload.scaled(workload.BASE_RANDOM_INIT, scale, workload.MIN_RANDOM_INIT)
    ):
        rng.random()
    pq_size = workload.scaled(workload.BASE_PQ_SIZE, scale, workload.MIN_PQ_SIZE)
    priorities = [rng.random() for _ in range(pq_size)]

    sequential_max = max(priorities)
    parallel_max = executor.parallel_reduce(
        priorities,
        fold=lambda acc, v: v if acc is None or v > acc else acc,
        combine=lambda a, b: b if a is None else (a if b is None or a >= b else b),
        initial=None,
    )
    return ParallelRunOutcome(
        name="Algorithmia priority queue",
        matches_sequential=parallel_max == sequential_max,
        detail=f"{pq_size} elements",
    )


def wordwheel_parallel(
    scale: float = 0.1, executor: ParallelExecutor | None = None
) -> ParallelRunOutcome:
    """WordWheelSolver with the dictionary scan parallelized (the FLR
    recommendation): chunked parallel filtering, order preserved."""
    executor = executor if executor is not None else ParallelExecutor(4)
    workload = WordWheelSolver()
    sequential = workload.run_plain(scale=scale)

    # Rebuild the same dictionary deterministically.
    from .wordwheel import _WHEELS, _synth_word

    rng = deterministic_rng(777)
    dictionary = [
        _synth_word(rng)
        for _ in range(
            workload.scaled(
                workload.BASE_DICTIONARY, scale, workload.MIN_DICTIONARY
            )
        )
    ]

    def candidates_for(wheel: str) -> int:
        mandatory = wheel[0]
        flags = executor.parallel_map(
            lambda word: mandatory in word, dictionary
        )
        return sum(flags)

    parallel_candidates = sum(candidates_for(w) for w in _WHEELS)

    sequential_candidates = sum(
        1 for w in _WHEELS for word in dictionary if w[0] in word
    )
    return ParallelRunOutcome(
        name="WordWheelSolver",
        matches_sequential=parallel_candidates == sequential_candidates,
        detail=f"{len(dictionary)} words x {len(_WHEELS)} wheels",
    )


def sort_after_insert_parallel(
    n: int = 2_000, executor: ParallelExecutor | None = None
) -> ParallelRunOutcome:
    """The Sort-After-Insert recommendation end-to-end: generate in
    parallel (order irrelevant — that's the rule's insight), then
    parallel merge sort; equals sequential build+sort."""
    executor = executor if executor is not None else ParallelExecutor(4)
    rng = deterministic_rng(n)
    values = [rng.random() for _ in range(n)]

    sequential = sorted(values)
    parallel = parallel_sorted(values, executor=executor)
    return ParallelRunOutcome(
        name="Sort-After-Insert",
        matches_sequential=parallel == sequential,
        detail=f"{n} elements",
    )


ALL_PARALLEL_VARIANTS = (
    mandelbrot_parallel,
    algorithmia_parallel_pq,
    wordwheel_parallel,
    sort_after_insert_parallel,
)


def verify_all(scale: float = 0.1) -> list[ParallelRunOutcome]:
    """Run every parallel variant and collect equivalence verdicts."""
    out = []
    for variant in ALL_PARALLEL_VARIANTS:
        if variant is sort_after_insert_parallel:
            out.append(variant())
        else:
            out.append(variant(scale=scale))
    return out
