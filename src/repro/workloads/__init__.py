"""Benchmark workloads: the paper's seven evaluation programs,
synthetic profile generators, and the empirical-study corpus generator.
"""

from .adapters import PLAIN, TRACKED, Containers, PlainArray, PlainDict, PlainList
from .algorithmia import Algorithmia, AlgorithmiaResult, BinaryHeap, ListPriorityQueue
from .astrogrep import AstroGrep, AstroGrepResult
from .base import PaperRow, Workload, deterministic_rng
from .contentfinder import Contentfinder, ContentfinderResult
from .cpubench import CPUBenchmarks, CPUBenchResult, lu_solve, whetstone_cycle
from .generators import (
    USE_CASE_GENERATORS,
    gen_fig2_snippet,
    gen_frequent_long_read,
    gen_frequent_search,
    gen_idf_churn,
    gen_insert_back_read_forward,
    gen_irregular,
    gen_long_insert,
    gen_queue_usage,
    gen_sort_after_insert,
    gen_stack_usage,
    gen_write_without_read,
)
from .gpdotnet import GPdotNET, GPResult
from .mandelbrot import Mandelbrot, MandelbrotResult, escape_iterations
from .parallel_variants import (
    ALL_PARALLEL_VARIANTS,
    ParallelRunOutcome,
    algorithmia_parallel_pq,
    mandelbrot_parallel,
    sort_after_insert_parallel,
    verify_all,
    wordwheel_parallel,
)
from .wordwheel import WordWheelResult, WordWheelSolver, can_form

#: The seven Table IV workloads in the paper's row order.
EVALUATION_WORKLOADS: tuple[Workload, ...] = (
    Algorithmia(),
    AstroGrep(),
    Contentfinder(),
    CPUBenchmarks(),
    GPdotNET(),
    Mandelbrot(),
    WordWheelSolver(),
)


def workload_by_name(name: str) -> Workload:
    """Look up an evaluation workload case-insensitively."""
    for workload in EVALUATION_WORKLOADS:
        if workload.name.lower() == name.lower():
            return workload
    raise KeyError(name)


__all__ = [
    "Algorithmia",
    "AlgorithmiaResult",
    "AstroGrep",
    "AstroGrepResult",
    "BinaryHeap",
    "CPUBenchResult",
    "CPUBenchmarks",
    "Containers",
    "Contentfinder",
    "ContentfinderResult",
    "EVALUATION_WORKLOADS",
    "GPResult",
    "GPdotNET",
    "ListPriorityQueue",
    "ALL_PARALLEL_VARIANTS",
    "Mandelbrot",
    "ParallelRunOutcome",
    "algorithmia_parallel_pq",
    "mandelbrot_parallel",
    "sort_after_insert_parallel",
    "verify_all",
    "wordwheel_parallel",
    "MandelbrotResult",
    "PLAIN",
    "PaperRow",
    "PlainArray",
    "PlainDict",
    "PlainList",
    "TRACKED",
    "USE_CASE_GENERATORS",
    "WordWheelResult",
    "WordWheelSolver",
    "Workload",
    "can_form",
    "deterministic_rng",
    "escape_iterations",
    "gen_fig2_snippet",
    "gen_frequent_long_read",
    "gen_frequent_search",
    "gen_idf_churn",
    "gen_insert_back_read_forward",
    "gen_irregular",
    "gen_long_insert",
    "gen_queue_usage",
    "gen_sort_after_insert",
    "gen_stack_usage",
    "gen_write_without_read",
    "lu_solve",
    "whetstone_cycle",
    "workload_by_name",
]
