"""CPU Benchmarks — Linpack + Whetstone harness (Table IV row 4).

Reimplements the paper's "CPU Benchmarks" program: a benchmarking UI
that runs the two classic kernels Linpack (dense LU solve) and
Whetstone (scalar floating-point mix) and reports statistics.  The
paper found seven data structure instances, five use cases of which
four were true positives, yet only a 1.20 total speedup — because the
program is 94.29% sequential (Table VI): the kernels themselves must
run in order; only the sample bookkeeping around them parallelizes.

Instance budget (7):

1. ``matrix``           array — the Linpack system, strided elimination
   access (no use case; write runs carry no parallel rule).
2. ``whet_e1``          array — Whetstone's 4-slot working set (no use
   case: tiny stationary accesses).
3. ``samples_linpack``  list — per-iteration timing samples (Long-
   Insert, TP).
4. ``samples_whet``     list — ditto for Whetstone (Long-Insert, TP).
5. ``residual_buffer``  list — Linpack residuals scanned repeatedly for
   the report (Frequent-Long-Read, TP).
6. ``check_buffer``     list — Whetstone check values, ditto
   (Frequent-Long-Read, TP).
7. ``ui_log``           list — status lines (Long-Insert, FP: a short
   append phase that doesn't pay for parallelization).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.machine import ParallelRegion, WorkDecomposition
from .adapters import Containers
from .base import PaperRow, Workload, deterministic_rng


def lu_solve(a: list[list[float]], b: list[float]) -> list[float]:
    """In-place Gaussian elimination with partial pivoting on plain
    rows; returns x with a @ x = b.  (The Linpack kernel itself — the
    sequential heart of the program.)"""
    n = len(b)
    for k in range(n):
        pivot = max(range(k, n), key=lambda r: abs(a[r][k]))
        if pivot != k:
            a[k], a[pivot] = a[pivot], a[k]
            b[k], b[pivot] = b[pivot], b[k]
        akk = a[k][k]
        for i in range(k + 1, n):
            factor = a[i][k] / akk
            if factor == 0.0:
                continue
            row_i = a[i]
            row_k = a[k]
            for j in range(k, n):
                row_i[j] -= factor * row_k[j]
            b[i] -= factor * b[k]
    x = [0.0] * n
    for i in range(n - 1, -1, -1):
        acc = b[i]
        row = a[i]
        for j in range(i + 1, n):
            acc -= row[j] * x[j]
        x[i] = acc / row[i]
    return x


def whetstone_cycle(t: float, e1) -> float:
    """One Whetstone-like module mix over the 4-slot array ``e1``."""
    import math

    e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t
    e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t
    e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t
    e1[3] = (-e1[0] + e1[1] + e1[2] + e1[3]) * t
    return math.sin(e1[3]) + math.cos(e1[2])


@dataclass
class CPUBenchResult:
    """Verifiable output: kernel answers plus harness statistics."""

    linpack_residual: float
    whetstone_signal: float
    linpack_mean: float
    whetstone_mean: float
    report_lines: int


class CPUBenchmarks(Workload):
    """The Linpack+Whetstone evaluation workload."""

    paper = PaperRow(
        name="CPU Benchmarks",
        domain="Benchmark",
        loc=400,
        runtime_s=0.01,
        profiling_s=0.55,
        slowdown=55.00,
        instances=7,
        use_cases=5,
        true_positives=4,
        reduction=28.57,
        speedup=1.20,
    )

    BASE_MATRIX = 60
    BASE_SAMPLES = 3000
    MIN_MATRIX = 24
    #: Floor keeps the sample Long-Inserts true positives.
    MIN_SAMPLES = 400
    #: Report passes over each buffer (>10 for FLR).
    REPORT_PASSES = 12
    BUFFER = 2000
    MIN_BUFFER = 300
    #: UI log lines: a 100..250-event phase — fires Long-Insert but
    #: cannot pay for parallelization (the row's false positive).
    UI_LINES = 130

    def run(self, containers: Containers, scale: float = 1.0) -> CPUBenchResult:
        rng = deterministic_rng(1337)
        n = self.scaled(self.BASE_MATRIX, scale, self.MIN_MATRIX)
        n_samples = self.scaled(self.BASE_SAMPLES, scale, self.MIN_SAMPLES)
        buffer_len = self.scaled(self.BUFFER, scale, self.MIN_BUFFER)

        ui_log = containers.new_list(label="ui_log")
        for i in range(self.UI_LINES):
            ui_log.append(f"status line {i}")

        # ---- Linpack ----------------------------------------------------
        matrix = containers.new_array(n * n, label="matrix")
        rows = [[0.0] * n for _ in range(n)]
        b = [0.0] * n
        for i in range(n):
            for j in range(n):
                value = rng.random() - 0.5
                rows[i][j] = value
                matrix[(i * 7 + j * 3) % (n * n)] = value  # strided mirror
            rows[i][i] += n  # diagonally dominant: stable solve
            b[i] = rng.random()
        reference = [row[:] for row in rows]
        x = lu_solve(rows, b[:])

        residual = 0.0
        for i in range(n):
            acc = 0.0
            for j in range(n):
                acc += reference[i][j] * x[j]
            residual = max(residual, abs(acc - b[i]))

        samples_linpack = containers.new_list(label="samples_linpack")
        for k in range(n_samples):
            samples_linpack.append(residual * (1.0 + (k % 17) / 100.0))
        lin_mean_src = samples_linpack.raw()
        linpack_mean = sum(lin_mean_src) / len(lin_mean_src)

        residual_buffer = containers.new_list(label="residual_buffer")
        for k in range(buffer_len):
            residual_buffer.append(lin_mean_src[k % n_samples])
        report_lines = 0
        for _ in range(self.REPORT_PASSES):
            acc = 0.0
            for i in range(buffer_len):
                acc += residual_buffer[i]
            report_lines += 1

        # ---- Whetstone --------------------------------------------------
        whet_e1 = containers.new_array(4, fill=1.0, label="whet_e1")
        signal = 0.0
        for k in range(max(n * 10, 200)):
            signal += whetstone_cycle(0.499, whet_e1)

        samples_whet = containers.new_list(label="samples_whet")
        for k in range(n_samples):
            samples_whet.append(signal * (1.0 + (k % 13) / 100.0))
        whet_src = samples_whet.raw()
        whetstone_mean = sum(whet_src) / len(whet_src)

        check_buffer = containers.new_list(label="check_buffer")
        for k in range(buffer_len):
            check_buffer.append(whet_src[k % n_samples])
        for _ in range(self.REPORT_PASSES):
            acc = 0.0
            for i in range(buffer_len):
                acc += check_buffer[i]
            report_lines += 1

        return CPUBenchResult(
            linpack_residual=residual,
            whetstone_signal=signal,
            linpack_mean=linpack_mean,
            whetstone_mean=whetstone_mean,
            report_lines=report_lines,
        )

    def decomposition(self, scale: float = 1.0) -> WorkDecomposition:
        n = self.scaled(self.BASE_MATRIX, scale, self.MIN_MATRIX)
        n_samples = self.scaled(self.BASE_SAMPLES, scale, self.MIN_SAMPLES)
        buffer_len = self.scaled(self.BUFFER, scale, self.MIN_BUFFER)
        sample_work = float(2 * n_samples)
        report_work = float(2 * self.REPORT_PASSES * buffer_len)
        parallel = sample_work + report_work
        # The kernels themselves are inherently ordered: Table VI
        # measured 94.29% sequential runtime (7,600 of 8,060 ms).
        sequential = parallel * (7600.0 / 460.0)
        return WorkDecomposition(
            sequential_work=sequential,
            regions=(
                ParallelRegion(work=sample_work, name="sample collection"),
                ParallelRegion(work=report_work, name="report statistics"),
            ),
            name=self.paper.name,
        )
