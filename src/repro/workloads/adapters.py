"""Plain (untracked) container adapters.

Every workload is written once against a :class:`Containers` factory and
runs in two modes: *plain* (native containers, no recording — the
baseline for slowdown measurement) and *tracked* (DSspy proxies).  The
plain adapters expose the same extended interface as the tracked
proxies (``add``, ``fill_all``, ``raw`` ...) so workload code is mode-
agnostic; their method bodies are the native operations with no event
recording.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..structures import TrackedArray, TrackedDict, TrackedList


class PlainList(list):
    """Native list with the tracked proxy's extended interface."""

    def __init__(self, iterable: Iterable[Any] | None = None, capacity: int = 0, label: str = ""):
        super().__init__(iterable if iterable is not None else ())

    add = list.append
    add_range = list.extend
    index_of = list.index

    def contains(self, value) -> bool:
        return value in self

    def for_each(self, fn) -> None:
        for item in self:
            fn(item)

    def to_list(self) -> list:
        return list(self)

    def raw(self) -> list:
        return self


class PlainArray:
    """Native fixed-size array with the tracked proxy's interface."""

    __slots__ = ("_data",)

    def __init__(self, length_or_iterable: int | Iterable[Any] = 0, fill: Any = 0, label: str = ""):
        if isinstance(length_or_iterable, int):
            self._data = [fill] * length_or_iterable
        else:
            self._data = list(length_or_iterable)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return self._data[i]
        return self._data[i]

    def __setitem__(self, i, value) -> None:
        self._data[i] = value

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self):
        return iter(self._data)

    def __contains__(self, value) -> bool:
        return value in self._data

    def __eq__(self, other) -> bool:
        if isinstance(other, PlainArray):
            return self._data == other._data
        return self._data == other

    def __repr__(self) -> str:
        return f"PlainArray({self._data!r})"

    def resize(self, new_length: int, fill: Any = 0) -> None:
        if new_length >= len(self._data):
            self._data = self._data + [fill] * (new_length - len(self._data))
        else:
            self._data = self._data[:new_length]

    def insert(self, index: int, value) -> None:
        pos = index + len(self._data) if index < 0 else index
        self._data = self._data[:pos] + [value] + self._data[pos:]

    def delete(self, index: int) -> None:
        pos = index + len(self._data) if index < 0 else index
        if not 0 <= pos < len(self._data):
            raise IndexError("array delete index out of range")
        self._data = self._data[:pos] + self._data[pos + 1 :]

    def index(self, value) -> int:
        return self._data.index(value)

    index_of = index

    def fill_all(self, value) -> None:
        for j in range(len(self._data)):
            self._data[j] = value

    def sort(self, *, key=None, reverse: bool = False) -> None:
        self._data.sort(key=key, reverse=reverse)

    def reverse(self) -> None:
        self._data.reverse()

    def copy(self) -> list:
        return self._data.copy()

    def raw(self) -> list:
        return self._data


class PlainDict(dict):
    """Native dict with the tracked proxy's extended interface."""

    def __init__(self, mapping=None, label: str = ""):
        super().__init__(mapping if mapping is not None else ())

    def raw(self) -> dict:
        return self


@dataclass(frozen=True)
class Containers:
    """Container factory the workloads construct everything through.

    ``new_list(iterable=None, capacity=0, label="")``,
    ``new_array(length_or_iterable, fill=0, label="")`` and
    ``new_dict(mapping=None, label="")`` mirror the tracked
    constructors.
    """

    new_list: Callable[..., Any]
    new_array: Callable[..., Any]
    new_dict: Callable[..., Any]
    tracked: bool

    def __repr__(self) -> str:
        return f"Containers(tracked={self.tracked})"


#: Native containers — the slowdown baseline.
PLAIN = Containers(
    new_list=PlainList, new_array=PlainArray, new_dict=PlainDict, tracked=False
)

#: DSspy proxies — the instrumented mode.
TRACKED = Containers(
    new_list=TrackedList, new_array=TrackedArray, new_dict=TrackedDict, tracked=True
)
