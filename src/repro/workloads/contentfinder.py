"""Contentfinder — text search tool (Table IV row 3).

Reimplements the paper's Contentfinder benchmark: a desktop search that
tokenizes documents and returns snippet matches.  The paper found 11
data structure instances and two use cases, both true positives, total
speedup 1.56.

Instance budget (11):

- ``documents``    list — document registry (no use case)
- 8 per-document ``tokens_*`` lists — token streams, each scanned a few
  times only (no use case)
- ``token_index``  list — flattened tokens, scanned once per query
  (Frequent-Long-Read, TP)
- ``snippets``     list — all matches appended in one long burst
  (Long-Insert, TP: unlike AstroGrep's short result list, Contentfinder
  materializes full snippets — enough work to parallelize)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.machine import ParallelRegion, WorkDecomposition
from .adapters import Containers
from .base import PaperRow, Workload, deterministic_rng

_VOCAB = (
    "invoice", "contract", "report", "draft", "budget", "memo",
    "agenda", "minutes", "policy", "review", "summary", "appendix",
)

_QUERIES = (
    "invoice", "contract", "report", "budget", "memo", "agenda",
    "policy", "review", "summary", "appendix", "draft", "minutes",
)


@dataclass
class ContentfinderResult:
    """Verifiable output of one search session."""

    documents: int
    tokens: int
    snippet_count: int
    per_query_hits: dict[str, int]


class Contentfinder(Workload):
    """The Contentfinder evaluation workload."""

    paper = PaperRow(
        name="Contentfinder",
        domain="File Search",
        loc=290,
        runtime_s=1.80,
        profiling_s=5.20,
        slowdown=2.89,
        instances=11,
        use_cases=2,
        true_positives=2,
        reduction=81.82,
        speedup=1.56,
    )

    DOCUMENTS = 8
    BASE_TOKENS_PER_DOC = 420
    MIN_TOKENS_PER_DOC = 60
    #: Per-document passes; <= 10 keeps the token lists unflagged.
    PER_DOC_PASSES = 4
    #: Snippets materialized: a long append burst (LI true positive).
    BASE_SNIPPETS = 1600
    MIN_SNIPPETS = 320

    def run(self, containers: Containers, scale: float = 1.0) -> ContentfinderResult:
        rng = deterministic_rng(31415)
        tokens_per_doc = self.scaled(
            self.BASE_TOKENS_PER_DOC, scale, self.MIN_TOKENS_PER_DOC
        )
        snippet_target = self.scaled(self.BASE_SNIPPETS, scale, self.MIN_SNIPPETS)

        documents = containers.new_list(label="documents")
        for k in range(self.DOCUMENTS):
            documents.append(f"doc_{k:02d}.txt")

        doc_tokens = []
        for k in range(self.DOCUMENTS):
            tokens = containers.new_list(label=f"tokens_{k:02d}")
            for _ in range(tokens_per_doc):
                tokens.append(rng.choice(_VOCAB))
            doc_tokens.append(tokens)

        # Language statistics per document: a few full passes each.
        stopword_hits = 0
        for tokens in doc_tokens:
            for _ in range(self.PER_DOC_PASSES):
                for i in range(len(tokens)):
                    if tokens[i] == "memo":
                        stopword_hits += 1

        # Flatten into the global index.
        token_index = containers.new_list(label="token_index")
        for tokens in doc_tokens:
            for token in tokens.raw():
                token_index.append(token)

        # Query loop: one full index scan per query (FLR, TP).
        per_query_hits: dict[str, int] = {}
        n = len(token_index)
        for query in _QUERIES:
            hits = 0
            for i in range(n):
                if token_index[i] == query:
                    hits += 1
            per_query_hits[query] = hits

        # Snippet materialization: a long append burst (LI, TP).
        snippets = containers.new_list(label="snippets")
        raw_index = token_index.raw()
        for j in range(snippet_target):
            pos = (j * 131) % n
            snippets.append(f"...{raw_index[pos]}@{pos}...")

        return ContentfinderResult(
            documents=self.DOCUMENTS,
            tokens=self.DOCUMENTS * tokens_per_doc,
            snippet_count=len(snippets),
            per_query_hits=per_query_hits,
        )

    def decomposition(self, scale: float = 1.0) -> WorkDecomposition:
        tokens_per_doc = self.scaled(
            self.BASE_TOKENS_PER_DOC, scale, self.MIN_TOKENS_PER_DOC
        )
        total_tokens = self.DOCUMENTS * tokens_per_doc
        query_work = float(len(_QUERIES) * total_tokens)
        snippet_work = float(
            self.scaled(self.BASE_SNIPPETS, scale, self.MIN_SNIPPETS)
        )
        parallel = query_work + snippet_work
        # Back-solved from the paper's 1.56 total speedup on 8 cores
        # (Amdahl: s ~= 0.59).
        sequential = parallel * (0.59 / 0.41)
        return WorkDecomposition(
            sequential_work=sequential,
            regions=(
                ParallelRegion(work=query_work, name="index scans"),
                ParallelRegion(work=snippet_work, name="snippet build"),
            ),
            name=self.paper.name,
        )
