"""Synthetic access-profile generators.

Small deterministic drivers that exercise tracked structures to produce
the canonical profile shapes from the paper: the Figure 2 snippet, the
Figure 3 insert/read/clear cycle, and one generator per use-case kind.
The empirical-study reproduction (Tables II/III) composes per-program
profile suites from these primitives; the figure benchmarks render them
directly.

Every generator creates its structures on the *active* collector, so
call them inside :func:`repro.events.collecting`.
"""

from __future__ import annotations

from ..structures import TrackedArray, TrackedList
from .base import deterministic_rng


def gen_fig2_snippet() -> TrackedList:
    """The paper's Figure 2 program, transliterated from C#::

        List<int> list = new List<int>(10);
        for (int i=0; i<10; i++) list.Add(i);
        for (int i=9; i>=0; i--) Debug.Write(list[i]);
    """
    lst = TrackedList(capacity=10, label="fig2")
    for i in range(10):
        lst.add(i)
    for i in range(9, -1, -1):
        _ = lst[i]
    return lst


def gen_insert_back_read_forward(
    items: int = 50, rounds: int = 10, label: str = "fig3"
) -> TrackedList:
    """Figure 3's shape: repeatedly append a batch, read it front-to-end,
    then clear — Insert-Back and Read-Forward patterns, repeated."""
    lst = TrackedList(label=label)
    for _ in range(rounds):
        for i in range(items):
            lst.append(i)
        for i in range(len(lst)):
            _ = lst[i]
        lst.clear()
    return lst


def gen_long_insert(n: int = 500, label: str = "long-insert") -> TrackedList:
    """One long insertion phase (Long-Insert's canonical shape)."""
    lst = TrackedList(label=label)
    for i in range(n):
        lst.append(i)
    return lst


def gen_queue_usage(n: int = 90, label: str = "queue-usage") -> TrackedList:
    """A list used like a queue: append at back, remove from front.

    Default ``n`` sits below the Long-Insert phase threshold (100) so
    the generated profile carries the Implement-Queue diagnosis alone.
    """
    lst = TrackedList(label=label)
    for i in range(n):
        lst.append(i)
    while len(lst):
        lst.pop(0)
    return lst


def gen_stack_usage(
    n: int = 20, rounds: int = 5, label: str = "stack-usage"
) -> TrackedList:
    """A list used like a stack: push and pop at the same end."""
    lst = TrackedList(label=label)
    for _ in range(rounds):
        for i in range(n):
            lst.append(i)
        for _ in range(n):
            lst.pop()
    return lst


def gen_sort_after_insert(n: int = 200, label: str = "sort-after-insert") -> TrackedList:
    """A long insertion phase followed by a sort."""
    rng = deterministic_rng(n)
    lst = TrackedList(label=label)
    for _ in range(n):
        lst.append(rng.random())
    lst.sort()
    return lst


def gen_frequent_search(
    searches: int = 1200, size: int = 100, label: str = "frequent-search"
) -> TrackedList:
    """Many explicit search operations on a linear structure."""
    rng = deterministic_rng(size)
    lst = TrackedList(range(size), label=label)
    for _ in range(searches):
        lst.index(rng.randrange(size))
    return lst


def gen_frequent_long_read(
    scans: int = 12, size: int = 60, label: str = "frequent-long-read"
) -> TrackedList:
    """Repeated full sequential scans — the disguised-search shape."""
    lst = TrackedList(range(size), label=label)
    for _ in range(scans):
        best = None
        for i in range(len(lst)):
            value = lst[i]
            if best is None or value > best:
                best = value
        lst.index(best)  # breaks runs between scans, like a found-element access
    return lst


def gen_insert_and_scan(
    items: int = 300, rounds: int = 12, label: str = "insert-and-scan"
) -> TrackedList:
    """One location, two parallel use cases — the Figure 3 situation.

    Each round rebuilds the list (a >=100-event insertion phase) and
    scans it twice in full; the balance (1/3 inserts, 2/3 reads) keeps
    both Long-Insert (insert fraction >30%) and Frequent-Long-Read
    (read fraction >=50%, >10 long patterns) above threshold on the
    same profile.
    """
    lst = TrackedList(label=label)
    total = 0
    for _ in range(rounds):
        for i in range(items):
            lst.append(i)
        for _scan in range(2):
            for i in range(len(lst)):
                total += lst[i]
        lst.clear()
    return lst


def gen_idf_churn(ops: int = 10, label: str = "idf-churn") -> TrackedArray:
    """Insert/delete churn on a fixed-size array (IDF's shape)."""
    arr = TrackedArray([0], label=label)
    for i in range(ops):
        arr.insert(0, i)
        arr.delete(0)
    return arr


def gen_write_without_read(size: int = 20, label: str = "wwr") -> TrackedList:
    """A profile that ends with a null-out write sweep."""
    lst = TrackedList(range(size), label=label)
    total = 0
    for i in range(size):
        total += lst[i]
    for i in range(size):
        lst[i] = None
    return lst


def gen_irregular(
    events: int = 100, size: int = 50, seed: int = 7, label: str = "irregular"
) -> TrackedList:
    """No-regularity noise: random-position reads/writes with gaps.

    Positions jump by at least 2 between consecutive accesses so no
    adjacent runs can form -- the 'contains no regularity' control.
    """
    rng = deterministic_rng(seed)
    lst = TrackedList(range(size), label=label)
    pos = 0
    for k in range(events):
        jump = rng.randrange(2, max(size // 2, 3))
        pos = (pos + jump) % size
        if k % 3 == 0:
            lst[pos] = k
        else:
            _ = lst[pos]
    return lst


#: Generator registry for the study's per-use-case suites.
USE_CASE_GENERATORS = {
    "LI": gen_long_insert,
    "IQ": gen_queue_usage,
    "SAI": gen_sort_after_insert,
    "FS": gen_frequent_search,
    "FLR": gen_frequent_long_read,
    "IDF": gen_idf_churn,
    "SI": gen_stack_usage,
    "WWR": gen_write_without_read,
}
