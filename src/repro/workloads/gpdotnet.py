"""GPdotNET — genetic-programming engine (Table IV row 5).

Reimplements the paper's GPdotNET benchmark: a genetic algorithm that
evolves arithmetic expressions to fit a discrete time series.  The
paper's run found 37 data structure instances and five use cases
(Table V): a Frequent-Long-Read on the terminal-set array, a
Frequent-Long-Read plus Long-Insert on the population list, and a
Frequent-Long-Read plus Long-Insert on the selection structure.  Two of
the five were true positives (the population pair — the same structure
the hand-parallelized version parallelizes); total program speedup 2.93.

Instance budget (37):

- ``population``       list — the GA's main structure (FLR TP + LI TP)
- ``terminals``        array — input samples, repeatedly aggregated
  (FLR, FP: too short for parallelization to pay — paper use case one)
- ``selection_pool``   list — roulette/tournament pool (FLR FP + LI FP:
  the paper's "executed rarely" pair)
- ``function_set``     list — operator table (no use case)
- ``options``          list — engine settings (no use case)
- 32 elite ``genes``   lists — one per elite chromosome (no use case:
  expression evaluation reads genes at computed jump offsets)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.machine import ParallelRegion, WorkDecomposition
from .adapters import Containers
from .base import PaperRow, Workload, deterministic_rng

#: Gene vocabulary: index 0-3 are operators, higher values terminals.
_OPS = ("add", "sub", "mul", "max")


def _evaluate_genes(genes, x: float) -> float:
    """Evaluate a linear gene program.

    Genes are read at stride 2 (opcode, operand, opcode, operand ...)
    starting from the back — computed jump offsets, so the reads never
    form adjacent runs (deliberately: gene lists must not look like
    disguised searches to DSspy; real GP interpreters jump similarly).
    """
    acc = x
    n = len(genes)
    for i in range(n - 2, -1, -2):
        op = genes[i]
        operand = genes[i + 1]
        if op == 0:
            acc = acc + operand
        elif op == 1:
            acc = acc - operand
        elif op == 2:
            acc = acc * (1.0 + operand / 10.0)
        else:
            acc = max(acc, operand)
    return acc


@dataclass
class GPResult:
    """Verifiable output of one evolution run."""

    generations: int
    population_size: int
    best_fitness: float
    fitness_trace: list[float]


class GPdotNET(Workload):
    """The GPdotNET evaluation workload."""

    paper = PaperRow(
        name="Gpdotnet",
        domain="Simulation",
        loc=7000,
        runtime_s=0.36,
        profiling_s=78.00,
        slowdown=216.67,
        instances=37,
        use_cases=5,
        true_positives=2,
        reduction=86.49,
        speedup=2.93,
    )

    BASE_POPULATION = 600
    BASE_GENERATIONS = 12
    #: Floors keep the Long-Insert phases >= the true-positive boundary
    #: and the FLR pattern counts > 10 at every scale.
    MIN_POPULATION = 350
    MIN_GENERATIONS = 12

    #: Terminal samples: fixed small so the terminal-set FLR stays a
    #: false positive ("the length of the data structure was too short
    #: for parallelization to yield a speedup" — §V).
    TERMINAL_SAMPLES = 18
    #: Elite chromosomes that keep explicit gene lists.
    ELITE = 32
    GENES_PER_CHROMOSOME = 8
    #: Selection pool: one >=100-event build (generation zero), then a
    #: small elite pool re-scanned each generation — both phases sized
    #: under the pay-off boundary (the paper's "executed rarely" pair).
    POOL_INITIAL_BUILD = 110
    POOL_ELITE = 30
    POOL_SCAN = 17

    def run(self, containers: Containers, scale: float = 1.0) -> GPResult:
        rng = deterministic_rng(4212)
        pop_size = self.scaled(self.BASE_POPULATION, scale, self.MIN_POPULATION)
        generations = self.scaled(
            self.BASE_GENERATIONS, scale, self.MIN_GENERATIONS
        )

        options = containers.new_list(label="options")
        for value in ("timeseries", pop_size, generations, 0.7, 0.1):
            options.append(value)

        function_set = containers.new_list(label="function_set")
        for op in _OPS:
            function_set.append(op)

        # GenerateTerminalSet: the input samples (paper use case one).
        terminals = containers.new_array(self.TERMINAL_SAMPLES, label="terminals")
        for i in range(self.TERMINAL_SAMPLES):
            terminals[i] = float(i % 7) + 0.5 * (i % 3)

        # Elite chromosomes carry explicit gene lists.
        elite_genes = []
        for e in range(self.ELITE):
            genes = containers.new_list(label=f"genes_{e}")
            for g in range(self.GENES_PER_CHROMOSOME):
                genes.append(
                    rng.randrange(4) if g % 2 == 0 else rng.random() * 4
                )
            elite_genes.append(genes)

        # CHPopulation constructor: the Long-Insert the paper
        # parallelizes (use case three).
        population = containers.new_list(label="population")
        for _ in range(pop_size):
            population.append(rng.random() * 10.0)

        # Selection pool: large roulette build once (generation zero) ...
        selection_pool = containers.new_list(label="selection_pool")
        for i in range(self.POOL_INITIAL_BUILD):
            selection_pool.append(rng.random())
        selection_pool.clear()
        # ... then a small elite pool kept for tournament selection.
        for i in range(self.POOL_ELITE):
            selection_pool.append(rng.random())

        fitness_trace: list[float] = []
        best = float("-inf")
        for gen in range(generations):
            # Fitness scan 1: evaluate every chromosome against the
            # terminal aggregate (paper use case two — the search the
            # manual parallelization also parallelized).
            target = 0.0
            for i in range(self.TERMINAL_SAMPLES):
                target += terminals[i]
            gen_best = float("-inf")
            gen_best_idx = 0
            for i in range(pop_size):
                fitness = -abs(population[i] - target / self.TERMINAL_SAMPLES)
                if fitness > gen_best:
                    gen_best = fitness
                    gen_best_idx = i
            # Fitness scan 2: selection pressure statistics.
            mean_acc = 0.0
            for i in range(pop_size):
                mean_acc += population[i]
            mean = mean_acc / pop_size

            # Tournament over the small elite pool (paper use cases
            # four/five — rebuilt rarely, scanned briefly).
            running = 0.0
            for i in range(self.POOL_SCAN):
                running += selection_pool[i]

            # Evaluate elite gene programs (jump-offset reads).
            elite_signal = 0.0
            for genes in elite_genes:
                elite_signal += _evaluate_genes(genes, mean)

            best = max(best, gen_best)
            fitness_trace.append(gen_best)

            # New generation: clear + rebuild — the recurring
            # Long-Insert phases.
            survivor = population[gen_best_idx]
            population.clear()
            mutation_scale = 1.0 + (elite_signal % 3.0) / 10.0
            for k in range(pop_size):
                population.append(
                    survivor + (rng.random() - 0.5) * mutation_scale
                )

        return GPResult(
            generations=generations,
            population_size=pop_size,
            best_fitness=best,
            fitness_trace=fitness_trace,
        )

    def decomposition(self, scale: float = 1.0) -> WorkDecomposition:
        pop_size = self.scaled(self.BASE_POPULATION, scale, self.MIN_POPULATION)
        generations = self.scaled(
            self.BASE_GENERATIONS, scale, self.MIN_GENERATIONS
        )
        fitness_work = float(2 * pop_size * generations)
        rebuild_work = float(pop_size * generations)
        elite_work = float(
            self.ELITE * self.GENES_PER_CHROMOSOME // 2 * generations
        )
        parallel = fitness_work + rebuild_work + elite_work
        # Table VI: GPdotNET is 3.89% sequential (7,000 ms of 180,000).
        sequential = parallel * (7000.0 / 173000.0)
        return WorkDecomposition(
            sequential_work=sequential,
            regions=(
                ParallelRegion(work=fitness_work, name="fitness evaluation"),
                ParallelRegion(work=rebuild_work, name="population rebuild"),
                ParallelRegion(work=elite_work, name="elite evaluation"),
            ),
            name=self.paper.name,
        )
