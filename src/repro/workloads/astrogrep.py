"""AstroGrep — file search utility (Table IV row 2).

Reimplements the paper's AstroGrep benchmark: a grep-style tool that
scans a file tree for search terms and collects matching lines.  The
paper found 21 data structure instances and two use cases, one true
positive, with a 2.90 speedup at the parallelized search location and a
90.48% search-space reduction.

Instance budget (21):

- ``file_names``     list — the scanned tree (no use case)
- 18 per-file ``lines_*`` lists — file contents; each is searched at
  most 8 times, under the FLR pattern threshold (no use case)
- ``corpus_index``   list — all lines flattened for cross-file search;
  scanned once per query (Frequent-Long-Read, TP: the grep loop the
  paper parallelizes for 2.90)
- ``results``        list — matches appended in one short burst
  (Long-Insert, FP: a 100+-event phase with too little work to pay)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.machine import ParallelRegion, WorkDecomposition
from .adapters import Containers
from .base import PaperRow, Workload, deterministic_rng

_WORDS = (
    "galaxy", "nebula", "quasar", "pulsar", "comet", "meteor", "orbit",
    "lens", "redshift", "parsec", "flux", "corona", "plasma", "dust",
)

#: Cross-file search queries (>10 so the corpus scans register as FLR).
_QUERIES = (
    "galaxy", "nebula", "quasar", "pulsar", "comet", "meteor",
    "orbit", "redshift", "parsec", "corona", "plasma", "flux",
)


def _synth_line(rng, lineno: int) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(6)) + f" #{lineno}"


@dataclass
class AstroGrepResult:
    """Verifiable output of one search session."""

    files_scanned: int
    total_lines: int
    matches: int
    per_query_hits: dict[str, int]


class AstroGrep(Workload):
    """The AstroGrep evaluation workload."""

    paper = PaperRow(
        name="Astrogrep",
        domain="File Search",
        loc=4800,
        runtime_s=4.80,
        profiling_s=5.80,
        slowdown=1.21,
        instances=21,
        use_cases=2,
        true_positives=1,
        reduction=90.48,
        speedup=2.90,
    )

    FILES = 18
    BASE_LINES_PER_FILE = 260
    MIN_LINES_PER_FILE = 40
    #: Per-file pre-filter passes; must stay <= 10 so file lists don't
    #: register as FLR themselves.
    PER_FILE_PASSES = 6
    #: The results burst: 100..250 consecutive appends (LI fires, FP).
    RESULT_BURST = 120

    def run(self, containers: Containers, scale: float = 1.0) -> AstroGrepResult:
        rng = deterministic_rng(2718)
        lines_per_file = self.scaled(
            self.BASE_LINES_PER_FILE, scale, self.MIN_LINES_PER_FILE
        )

        file_names = containers.new_list(label="file_names")
        for k in range(self.FILES):
            file_names.append(f"src/module_{k:02d}.cs")

        # Read the tree: one lines-list per file.
        file_lines = []
        for k in range(self.FILES):
            lines = containers.new_list(label=f"lines_{k:02d}")
            for ln in range(lines_per_file):
                lines.append(_synth_line(rng, ln))
            file_lines.append(lines)

        # Pre-filter pass per file: a few full scans (<= 10 patterns,
        # so the per-file lists stay out of the result set).
        prefilter_hits = 0
        for lines in file_lines:
            for _ in range(self.PER_FILE_PASSES):
                for i in range(len(lines)):
                    if "quasar" in lines[i]:
                        prefilter_hits += 1

        # Flatten into the cross-file index the actual search runs on.
        corpus_index = containers.new_list(label="corpus_index")
        for lines in file_lines:
            source = lines.raw()
            for line in source:
                corpus_index.append(line)

        # The grep loop: one full scan per query — the paper's
        # parallelized search location (Frequent-Long-Read, TP).
        per_query_hits: dict[str, int] = {}
        match_lines: list[str] = []
        n = len(corpus_index)
        for query in _QUERIES:
            hits = 0
            for i in range(n):
                if query in corpus_index[i]:
                    hits += 1
                    if len(match_lines) < self.RESULT_BURST:
                        match_lines.append(corpus_index.raw()[i])
            per_query_hits[query] = hits

        # Results list: the UI appends the retained matches in one
        # burst (Long-Insert, FP — paper's second use case).
        results = containers.new_list(label="results")
        for line in match_lines[: self.RESULT_BURST]:
            results.append(line)

        return AstroGrepResult(
            files_scanned=self.FILES,
            total_lines=self.FILES * lines_per_file,
            matches=sum(per_query_hits.values()),
            per_query_hits=per_query_hits,
        )

    def decomposition(self, scale: float = 1.0) -> WorkDecomposition:
        lines_per_file = self.scaled(
            self.BASE_LINES_PER_FILE, scale, self.MIN_LINES_PER_FILE
        )
        total_lines = self.FILES * lines_per_file
        grep_work = float(len(_QUERIES) * total_lines)
        prefilter_work = float(self.PER_FILE_PASSES * total_lines)
        parallel = grep_work + prefilter_work
        # No Table VI row; sequential share back-solved from the 2.90
        # total speedup on 8 cores (Amdahl: s ~= 0.25).
        sequential = parallel * (0.25 / 0.75)
        return WorkDecomposition(
            sequential_work=sequential,
            regions=(
                ParallelRegion(work=grep_work, name="cross-file grep"),
                ParallelRegion(work=prefilter_work, name="per-file prefilter"),
            ),
            name=self.paper.name,
        )
