"""Algorithmia — data structures & algorithms library (Table IV row 1).

Reimplements the paper's Algorithmia benchmark: a small DS/algorithms
library driven by 16 unit-test-style scenarios.  The paper used 16 such
tests as DSspy input and received four use cases with an average
speedup of 1.83:

- use case one: Long-Insert on a list initialized with random values
  (TP, local speedup 1.35);
- use case two: Frequent-Long-Read on a priority queue implemented as a
  list, whose max-priority search is linear (TP, 2.30 at 100k elements);
- use cases three and four: Long-Inserts on small initializations that
  yield no speedup (FP).

Instance budget (16): the scenarios below create exactly 16 tracked
structures; only the four named above are flagged.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.machine import ParallelRegion, WorkDecomposition
from .adapters import Containers
from .base import PaperRow, Workload, deterministic_rng


class ListPriorityQueue:
    """Priority queue implemented on a plain list — the misuse the
    paper's use case two uncovers.  ``pop_max`` scans linearly."""

    def __init__(self, backing) -> None:
        self.items = backing

    def push(self, priority: float) -> None:
        self.items.append(priority)

    def find_max(self) -> float:
        """Linear scan for the maximum priority (the disguised search)."""
        best = None
        for i in range(len(self.items)):
            value = self.items[i]
            if best is None or value > best:
                best = value
        return best

    def __len__(self) -> int:
        return len(self.items)


class BinaryHeap:
    """A proper heap — what the library *also* offers; its jumping
    parent/child accesses form no sequential patterns."""

    def __init__(self, backing) -> None:
        self.items = backing

    def push(self, value: float) -> None:
        self.items.append(value)
        i = len(self.items) - 1
        while i > 0:
            parent = (i - 1) // 2
            if self.items[parent] >= self.items[i]:
                break
            tmp = self.items[parent]
            self.items[parent] = self.items[i]
            self.items[i] = tmp
            i = parent

    def peek_max(self) -> float:
        return self.items[0]


@dataclass
class AlgorithmiaResult:
    """Verifiable outputs of the 16 scenarios."""

    random_sum: float
    pq_max_trace: list[float]
    heap_max: float
    sorted_ok: bool
    reversed_head: int
    scenario_count: int


class Algorithmia(Workload):
    """The Algorithmia evaluation workload."""

    paper = PaperRow(
        name="Algorithmia",
        domain="Library",
        loc=2800,
        runtime_s=0.50,
        profiling_s=2.40,
        slowdown=4.80,
        instances=16,
        use_cases=4,
        true_positives=2,
        reduction=75.00,
        speedup=1.83,
    )

    BASE_RANDOM_INIT = 5000
    MIN_RANDOM_INIT = 400
    BASE_PQ_SIZE = 3000
    MIN_PQ_SIZE = 120
    #: >10 max-searches so the PQ's scans register as FLR.
    PQ_SEARCHES = 14
    #: Small-init scenarios: 100..250-event phases (false positives).
    SMALL_INIT_A = 140
    SMALL_INIT_B = 110

    def run(self, containers: Containers, scale: float = 1.0) -> AlgorithmiaResult:
        rng = deterministic_rng(99)
        scenarios = 0

        # Scenario 1 — random list initialization (use case one, LI TP).
        random_list = containers.new_list(label="random_list")
        for _ in range(self.scaled(self.BASE_RANDOM_INIT, scale, self.MIN_RANDOM_INIT)):
            random_list.append(rng.random())
        random_sum = sum(random_list.raw())
        scenarios += 1

        # Scenario 2 — priority queue as list (use case two, FLR TP).
        pq_backing = containers.new_list(label="priority_queue")
        pq = ListPriorityQueue(pq_backing)
        pq_size = self.scaled(self.BASE_PQ_SIZE, scale, self.MIN_PQ_SIZE)
        base_priorities = [rng.random() for _ in range(pq_size)]
        pq.items.extend(base_priorities)
        pq_max_trace = []
        for k in range(self.PQ_SEARCHES):
            pq_max_trace.append(pq.find_max())
            pq.items.index(pq_max_trace[-1])  # locate it, as a consumer would
        scenarios += 1

        # Scenarios 3/4 — small initializations (use cases three/four,
        # LI FPs: phases over 100 events but too little work to pay).
        small_a = containers.new_list(label="small_init_a")
        for i in range(self.SMALL_INIT_A):
            small_a.append(i * 2)
        small_b = containers.new_list(label="small_init_b")
        for i in range(self.SMALL_INIT_B):
            small_b.append(str(i))
        scenarios += 2

        # Scenario 5 — binary heap (jumping accesses: no use case).
        heap_backing = containers.new_list(label="heap")
        heap = BinaryHeap(heap_backing)
        for _ in range(60):
            heap.push(rng.random())
        heap_max = heap.peek_max()
        scenarios += 1

        # Scenario 6 — sorting utilities.
        sort_input = containers.new_list(label="sort_input")
        for _ in range(80):
            sort_input.append(rng.randrange(1000))
        sort_input.sort()
        raw_sorted = sort_input.raw()
        sorted_ok = all(
            raw_sorted[i] <= raw_sorted[i + 1] for i in range(len(raw_sorted) - 1)
        )
        scenarios += 1

        # Scenario 7 — reversal.
        rev = containers.new_list(label="reverse_demo")
        for i in range(40):
            rev.append(i)
        rev.reverse()
        reversed_head = rev[0]
        scenarios += 1

        # Scenario 8 — stack discipline on the library stack type.
        stack_demo = containers.new_list(label="stack_demo")
        for i in range(30):
            stack_demo.append(i)
        while len(stack_demo):
            stack_demo.pop()
        scenarios += 1

        # Scenario 9 — deduplication via dict.
        dedupe = containers.new_dict(label="dedupe")
        for i in range(50):
            dedupe[i % 17] = i
        scenarios += 1

        # Scenario 10 — binary search over a sorted array.
        bs_array = containers.new_array(64, label="bsearch_array")
        for i in range(0, 64, 3):  # strided init: no long write runs
            bs_array[i] = i
        for i in range(1, 64, 3):
            bs_array[i] = i
        for i in range(2, 64, 3):
            bs_array[i] = i
        for target in (5, 23, 61):
            lo, hi = 0, 63
            while lo < hi:
                mid = (lo + hi) // 2
                if bs_array[mid] < target:
                    lo = mid + 1
                else:
                    hi = mid
        scenarios += 1

        # Scenarios 11-16 — small fixtures exercising the library API.
        fixtures = []
        for k in range(6):
            fixture = containers.new_list(label=f"fixture_{k}")
            for i in range(12):
                fixture.append((i * (k + 3)) % 11)
            _ = fixture[k % 12]
            fixtures.append(fixture)
            scenarios += 1

        return AlgorithmiaResult(
            random_sum=random_sum,
            pq_max_trace=pq_max_trace,
            heap_max=heap_max,
            sorted_ok=sorted_ok,
            reversed_head=reversed_head,
            scenario_count=scenarios,
        )

    def decomposition(self, scale: float = 1.0) -> WorkDecomposition:
        init_work = float(
            self.scaled(self.BASE_RANDOM_INIT, scale, self.MIN_RANDOM_INIT)
        )
        pq_work = float(
            self.scaled(self.BASE_PQ_SIZE, scale, self.MIN_PQ_SIZE)
            * self.PQ_SEARCHES
        )
        parallel = init_work + pq_work
        # No Table VI row; sequential share back-solved from the paper's
        # 1.83 total speedup on 8 cores (Amdahl: s ~= 0.48).
        sequential = parallel * (0.48 / 0.52)
        return WorkDecomposition(
            sequential_work=sequential,
            regions=(
                ParallelRegion(work=init_work, name="random initialization"),
                ParallelRegion(work=pq_work, name="priority-queue searches"),
            ),
            name=self.paper.name,
        )
