"""Workload framework for the seven evaluation programs (Table IV).

Each workload is a deterministic reimplementation of one benchmark
program from the paper's evaluation, written against the
:class:`~repro.workloads.adapters.Containers` factory so it can run
plain (baseline) or tracked (DSspy capture).  A workload knows its
paper-published reference numbers (:class:`PaperRow`) and reports its
own work decomposition for the simulated-machine speedup analysis.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

from ..parallel.machine import WorkDecomposition
from .adapters import PLAIN, TRACKED, Containers


@dataclass(frozen=True, slots=True)
class PaperRow:
    """The Table IV row this workload reproduces (reference values)."""

    name: str
    domain: str
    loc: int
    runtime_s: float
    profiling_s: float
    slowdown: float
    instances: int
    use_cases: int
    true_positives: int
    reduction: float  # percent
    speedup: float


class Workload(abc.ABC):
    """One evaluation benchmark program.

    Subclasses implement :meth:`run`, which must

    - construct every data structure through the ``containers`` factory,
    - be deterministic (seeded randomness only), and
    - return a result value a test can verify.

    ``scale`` shrinks the workload for fast test runs; verdict-critical
    sizes (phase lengths that decide true/false positives) are floored
    so detection results are scale-stable in ``[0.05, 1]``.
    """

    paper: PaperRow

    @abc.abstractmethod
    def run(self, containers: Containers, scale: float = 1.0) -> Any:
        """Execute the program; all containers come from the factory."""

    @abc.abstractmethod
    def decomposition(self, scale: float = 1.0) -> WorkDecomposition:
        """Sequential/parallel work split for the machine model
        (drives the Table IV 'Total Speedup' and Table VI columns)."""

    # -- conveniences ----------------------------------------------------

    def run_plain(self, scale: float = 1.0) -> Any:
        return self.run(PLAIN, scale=scale)

    def run_tracked(self, scale: float = 1.0) -> Any:
        return self.run(TRACKED, scale=scale)

    @property
    def name(self) -> str:
        return self.paper.name

    @staticmethod
    def scaled(base: int, scale: float, floor: int) -> int:
        """``base * scale`` with a floor protecting detection verdicts."""
        return max(int(base * scale), floor)


def deterministic_rng(seed: int):
    """Seeded ``random.Random`` — workloads must not use global random."""
    import random

    return random.Random(seed)
