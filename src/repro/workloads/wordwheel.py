"""WordWheelSolver — puzzle solver (Table IV row 7).

Reimplements the paper's WordWheelSolver benchmark: given a 9-letter
wheel with one mandatory center letter, find every dictionary word that
can be formed.  The paper found five data structure instances and two
use cases, one true positive, total speedup 1.50.

Instance budget (5):

- ``dictionary``  list — the word list, fully scanned once per wheel
  (Frequent-Long-Read, TP: the solver's main loop)
- ``letters``     list — the 9 wheel letters, probed with explicit
  membership searches (Frequent-Search, FP: thousands of searches, but
  each scans at most nine elements — nothing to parallelize)
- ``found``       list — accepted words (short appends, no use case)
- ``counts``      array — per-letter multiplicities, random-position
  updates (no use case)
- ``wheels``      list — the puzzle inputs (no use case)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.machine import ParallelRegion, WorkDecomposition
from .adapters import Containers
from .base import PaperRow, Workload, deterministic_rng

_SYLLABLES = ("ra", "to", "ne", "li", "sa", "mo", "de", "pi", "cu", "ve")

#: Twelve puzzle wheels (>10 so the dictionary scans register as FLR).
_WHEELS = (
    "rationels", "toleransi", "nematodes", "liberated", "salvatore",
    "mondrians", "detonates", "pilasters", "cumulated", "velodrome",
    "operative", "calendars",
)


def _synth_word(rng) -> str:
    return "".join(rng.choice(_SYLLABLES) for _ in range(rng.randrange(2, 5)))


def can_form(word: str, letters, counts) -> bool:
    """Can ``word`` be formed from the wheel letters (each used once)?

    Counts multiplicities into the ``counts`` array (positions depend on
    the letter values — no sequential pattern), probing the ``letters``
    list with explicit searches.
    """
    for i in range(len(counts)):
        counts[i] = 0
    for ch in word:
        if not letters.contains(ch):
            return False
    for ch in word:
        slot = (ord(ch) * 7) % len(counts)
        counts[slot] += 1
        if counts[slot] > 3:
            return False
    return True


@dataclass
class WordWheelResult:
    """Verifiable output of one solve session."""

    wheels: int
    dictionary_size: int
    found_words: int
    searches: int


class WordWheelSolver(Workload):
    """The WordWheelSolver evaluation workload."""

    paper = PaperRow(
        name="WordWheelSolver",
        domain="Solver",
        loc=110,
        runtime_s=0.04,
        profiling_s=1.50,
        slowdown=38.46,
        instances=5,
        use_cases=2,
        true_positives=1,
        reduction=60.00,
        speedup=1.50,
    )

    BASE_DICTIONARY = 900
    MIN_DICTIONARY = 120
    #: Words actually letter-probed per wheel; keeps the explicit search
    #: count above the Frequent-Search threshold (> 1000 overall).
    PROBES_PER_WHEEL = 120

    def run(self, containers: Containers, scale: float = 1.0) -> WordWheelResult:
        rng = deterministic_rng(777)
        dict_size = self.scaled(self.BASE_DICTIONARY, scale, self.MIN_DICTIONARY)

        wheels = containers.new_list(label="wheels")
        for wheel in _WHEELS:
            wheels.append(wheel)

        dictionary = containers.new_list(label="dictionary")
        for _ in range(dict_size):
            dictionary.append(_synth_word(rng))

        counts = containers.new_array(9, label="counts")
        found = containers.new_list(label="found")

        # Letters list: one instance, refilled per wheel.
        letters = containers.new_list(label="letters")

        searches = 0
        found_count = 0
        for w, wheel in enumerate(_WHEELS):
            letters.clear()
            for ch in wheel:
                letters.append(ch)
            mandatory = wheel[0]
            # The solver's main loop: scan the whole dictionary
            # (Frequent-Long-Read, TP), probing candidate words against
            # the wheel letters (Frequent-Search on ``letters``, FP).
            probed = 0
            for i in range(len(dictionary)):
                word = dictionary[i]
                if mandatory not in word:
                    continue
                if probed >= self.PROBES_PER_WHEEL:
                    continue
                probed += 1
                searches += len(word)
                if can_form(word, letters, counts):
                    found_count += 1
                    if len(found) < 60:  # UI shows the first page only
                        found.append(word)

        return WordWheelResult(
            wheels=len(_WHEELS),
            dictionary_size=dict_size,
            found_words=found_count,
            searches=searches,
        )

    def decomposition(self, scale: float = 1.0) -> WorkDecomposition:
        dict_size = self.scaled(self.BASE_DICTIONARY, scale, self.MIN_DICTIONARY)
        scan_work = float(len(_WHEELS) * dict_size)
        probe_work = float(len(_WHEELS) * self.PROBES_PER_WHEEL * 4)
        parallel = scan_work + probe_work
        # Table VI: WordWheelSolver is 28.21% sequential (55 of 195 ms).
        sequential = parallel * (55.0 / 140.0)
        return WorkDecomposition(
            sequential_work=sequential,
            regions=(
                ParallelRegion(work=scan_work, name="dictionary scans"),
                ParallelRegion(work=probe_work, name="letter probes"),
            ),
            name=self.paper.name,
        )
