"""Synthetic corpus generator for the empirical study (Table I, Fig 1).

The paper's 37-program C# corpus (SourceForge/CodePlex, 2013) is not
recoverable, so this module *synthesizes* a Python corpus with exactly
the published marginals — per-program dynamic-instance counts
(Figure 1), per-kind frequency totals (list 1,275, dictionary 324, ...,
plus 785 arrays) and per-domain LOC (Table I, scaled) — and the study
pipeline then measures those numbers back through the real static-
analysis scanner.  What is being validated end-to-end is the *pipeline*
(site recognition, classification, aggregation); the corpus content is
ground truth by construction (see DESIGN.md §2).

Determinism: same seed → byte-identical corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..events.types import StructureKind
from ..study.domains import (
    FIG1_PROGRAMS,
    KIND_TOTALS,
    TABLE1_DOMAINS,
    TOTAL_ARRAY_INSTANCES,
)
from .base import deterministic_rng

#: How each kind is spelled so the scanner classifies it correctly.
_KIND_SNIPPETS: dict[StructureKind, str] = {
    StructureKind.LIST: "{var} = []",
    StructureKind.DICTIONARY: "{var} = dict()",
    StructureKind.ARRAY_LIST: "{var} = ArrayList()",
    StructureKind.STACK: "{var} = Stack()",
    StructureKind.QUEUE: "{var} = Queue()",
    StructureKind.HASH_SET: "{var} = set()",
    StructureKind.SORTED_LIST: "{var} = SortedList()",
    StructureKind.SORTED_SET: "{var} = SortedSet()",
    StructureKind.SORTED_DICTIONARY: "{var} = SortedDictionary()",
    StructureKind.LINKED_LIST: "{var} = LinkedList()",
    StructureKind.HASHTABLE: "{var} = Hashtable()",
    StructureKind.ARRAY: "{var} = [0] * {n}",
}


def apportion(total: int, weights: list[int]) -> list[int]:
    """Largest-remainder apportionment of ``total`` by ``weights``.

    Deterministic; the result sums to ``total`` exactly, which is what
    lets the generated corpus hit every published marginal at once.
    """
    weight_sum = sum(weights)
    if weight_sum == 0:
        out = [0] * len(weights)
        for i in range(total):
            out[i % len(weights)] += 1
        return out
    exact = [total * w / weight_sum for w in weights]
    floors = [int(e) for e in exact]
    remainder = total - sum(floors)
    order = sorted(
        range(len(weights)), key=lambda i: (floors[i] - exact[i], i)
    )
    for i in order[:remainder]:
        floors[i] += 1
    return floors


@dataclass(frozen=True)
class GeneratedProgram:
    """One synthetic program: name, domain, source files."""

    name: str
    domain: str
    files: dict[str, str]
    kind_counts: dict[StructureKind, int]
    arrays: int
    loc: int


def _emit_program(
    name: str,
    domain: str,
    kind_counts: dict[StructureKind, int],
    arrays: int,
    loc_target: int,
    seed: int,
) -> GeneratedProgram:
    rng = deterministic_rng(seed)
    lines: list[str] = [f'"""{name} — synthetic {domain} program."""']
    var = 0

    def fresh() -> str:
        nonlocal var
        var += 1
        return f"v{var}"

    # Instantiation sites, shuffled so kinds interleave like real code.
    sites: list[str] = []
    for kind, count in kind_counts.items():
        snippet = _KIND_SNIPPETS[kind]
        for _ in range(count):
            sites.append(snippet.format(var=fresh(), n=rng.randrange(4, 64)))
    for _ in range(arrays):
        sites.append(
            _KIND_SNIPPETS[StructureKind.ARRAY].format(
                var=fresh(), n=rng.randrange(4, 64)
            )
        )
    rng.shuffle(sites)

    # Wrap sites in functions, interleaved with filler logic lines to
    # reach the LOC target.
    body: list[str] = []
    fn = 0
    site_iter = iter(sites)
    exhausted = False
    while not exhausted or len(body) + len(lines) < loc_target:
        fn += 1
        body.append(f"def routine_{fn}(x):")
        block = 0
        for _ in range(rng.randrange(2, 6)):
            site = next(site_iter, None)
            if site is None:
                exhausted = True
                break
            body.append("    " + site)
            block += 1
        filler = max(
            rng.randrange(1, 8),
            0 if exhausted else 1,
        )
        for k in range(filler):
            body.append(f"    x = x * {rng.randrange(2, 9)} + {k}")
        body.append("    return x")
        if exhausted and len(body) + len(lines) >= loc_target:
            break
    source = "\n".join(lines + body) + "\n"

    from ..instrument.corpus import count_loc

    return GeneratedProgram(
        name=name,
        domain=domain,
        files={"main.py": source},
        kind_counts=dict(kind_counts),
        arrays=arrays,
        loc=count_loc(source),
    )


def generate_corpus(loc_scale: float = 0.1, seed: int = 2014) -> list[GeneratedProgram]:
    """Generate the 37-program corpus.

    Per-program kind mixes are apportioned from the global kind totals
    proportionally to each program's Figure 1 instance count, then
    corrected per kind so every global total is exact.  Arrays (785)
    are apportioned the same way.  LOC targets are the Table I domain
    totals scaled by ``loc_scale`` and split per program by instance
    weight.
    """
    weights = [p.instances for p in FIG1_PROGRAMS]
    n = len(FIG1_PROGRAMS)

    # kind → per-program counts, exact in both directions.
    per_kind: dict[StructureKind, list[int]] = {
        kind: apportion(total, weights) for kind, total in KIND_TOTALS.items()
    }
    # The apportionment is exact per kind but may drift per program;
    # rebalance program totals onto LIST (the dominant kind) so each
    # program's Σ matches Figure 1 exactly.
    for i, program in enumerate(FIG1_PROGRAMS):
        current = sum(per_kind[kind][i] for kind in per_kind)
        drift = program.instances - current
        per_kind[StructureKind.LIST][i] += drift
        if per_kind[StructureKind.LIST][i] < 0:  # pragma: no cover - defensive
            raise ValueError(f"negative list count for {program.name}")
    # Compensate the list total back to exactness by shifting the
    # residue onto the largest programs.
    list_drift = sum(per_kind[StructureKind.LIST]) - KIND_TOTALS[StructureKind.LIST]
    order = sorted(range(n), key=lambda i: -weights[i])
    j = 0
    while list_drift != 0:
        i = order[j % n]
        step = -1 if list_drift > 0 else 1
        if per_kind[StructureKind.LIST][i] + step >= 0:
            per_kind[StructureKind.LIST][i] += step
            list_drift += step
        j += 1

    arrays = apportion(TOTAL_ARRAY_INSTANCES, weights)

    # LOC: domain totals scaled, split by instance weight inside the
    # domain (minimum a handful of lines per program).
    domain_programs: dict[str, list[int]] = {}
    for i, program in enumerate(FIG1_PROGRAMS):
        domain_programs.setdefault(program.domain, []).append(i)
    loc_targets = [0] * n
    for domain, indices in domain_programs.items():
        domain_loc = int(TABLE1_DOMAINS[domain][1] * loc_scale)
        split = apportion(domain_loc, [max(weights[i], 1) for i in indices])
        for idx, share in zip(indices, split):
            loc_targets[idx] = max(share, 10)

    programs: list[GeneratedProgram] = []
    for i, descriptor in enumerate(FIG1_PROGRAMS):
        kind_counts = {
            kind: per_kind[kind][i]
            for kind in per_kind
            if per_kind[kind][i] > 0
        }
        programs.append(
            _emit_program(
                descriptor.name,
                descriptor.domain,
                kind_counts,
                arrays[i],
                loc_targets[i],
                seed=seed + i,
            )
        )
    return programs


def write_corpus(
    root: str | Path, loc_scale: float = 0.1, seed: int = 2014
) -> Path:
    """Materialize the corpus under ``root`` (one directory per program)."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    for program in generate_corpus(loc_scale=loc_scale, seed=seed):
        program_dir = root / program.name
        program_dir.mkdir(exist_ok=True)
        for filename, source in program.files.items():
            (program_dir / filename).write_text(source, encoding="utf-8")
    return root


def corpus_domains() -> dict[str, str]:
    """Program name → domain (for the corpus scanner)."""
    return {p.name: p.domain for p in FIG1_PROGRAMS}
