"""The empirical-study ground truth recovered from the paper.

Three data sets, all transcribed from the published tables/figures:

- :data:`FIG1_PROGRAMS` — the 37 benchmark programs with their domain
  and total dynamic-instance count (Figure 1's x-axis; the per-domain
  sums reproduce Table I's instance column exactly).
- :data:`TABLE1_DOMAINS` — Table I's per-domain LOC and instance totals.
- :data:`KIND_TOTALS` — the corpus-wide frequency of each dynamic
  structure kind (Figure 1 legend plus the <2% species enumerated in
  §II-A), 1,960 instances total, plus 785 arrays.
- :data:`TABLE2_PROGRAMS` — the 15 mined programs with their LOC,
  recurring-regularity and parallel-use-case counts (Table II).
- :data:`TABLE3_PROGRAMS` — the use-case survey rows (Table III):
  per-program counts by category, column sums LI 49 / IQ 3 / SAI 1 /
  FS 3 / FLR 10, total 66.  (The published table prints 24 rows though
  the text says 23 programs; we keep the rows, whose marginals check
  out.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events.types import StructureKind


@dataclass(frozen=True, slots=True)
class ProgramDescriptor:
    """One Figure 1 program: name, domain, dynamic instance count."""

    name: str
    domain: str
    instances: int


#: Figure 1, x-axis order (programs sorted ascending within domain).
FIG1_PROGRAMS: tuple[ProgramDescriptor, ...] = (
    ProgramDescriptor("7zip", "Comp", 2),
    ProgramDescriptor("dsa", "DS lib", 10),
    ProgramDescriptor("compgeo", "DS lib", 13),
    ProgramDescriptor("SequenceViz", "Vis", 57),
    ProgramDescriptor("dotspatial", "DS lib", 663),
    ProgramDescriptor("orazio1", "DS lib", 32),
    ProgramDescriptor("Contentfinder", "Srch", 11),
    ProgramDescriptor("rrrsroguelike", "Game", 5),
    ProgramDescriptor("sharpener", "Opt", 16),
    ProgramDescriptor("ittycoon.net", "Game", 27),
    ProgramDescriptor("ManicDigger2011", "Game", 153),
    ProgramDescriptor("theAirline", "Game", 130),
    ProgramDescriptor("zedgraph", "Graph lib", 2),
    ProgramDescriptor("TreeLayoutHelper", "Graph lib", 22),
    ProgramDescriptor("cognitionmaster", "Img lib", 60),
    ProgramDescriptor("graphsharp", "Graph lib", 160),
    ProgramDescriptor("ProcessHacker", "Office software", 4),
    ProgramDescriptor("TerraBIB", "Office software", 13),
    ProgramDescriptor("BeHappy", "Office software", 7),
    ProgramDescriptor("metaclip", "Office software", 14),
    ProgramDescriptor("clipper", "Office software", 20),
    ProgramDescriptor("waveletstudio", "Office software", 28),
    ProgramDescriptor("netinfotrace", "Office software", 30),
    ProgramDescriptor("dddpds", "Office software", 34),
    ProgramDescriptor("greatmaps", "Office software", 77),
    ProgramDescriptor("OsmExplorer", "Office software", 169),
    ProgramDescriptor("csparser", "Parser", 51),
    ProgramDescriptor("starsystemsimulator", "Simulation", 1),
    ProgramDescriptor("Net_With_UI", "Simulation", 1),
    ProgramDescriptor("twodsphsim", "Simulation", 8),
    ProgramDescriptor("Arcanum", "Simulation", 2),
    ProgramDescriptor("rushHour", "Simulation", 8),
    ProgramDescriptor("fire", "Simulation", 8),
    ProgramDescriptor("borys-MeshRouting", "Simulation", 19),
    ProgramDescriptor("evo", "Simulation", 31),
    ProgramDescriptor("dotqcf", "Simulation", 35),
    ProgramDescriptor("gpdotnet", "Simulation", 37),
)

#: Table I: domain → (instance count, LOC).
TABLE1_DOMAINS: dict[str, tuple[int, int]] = {
    "Srch": (11, 1_046),
    "Opt": (16, 2_048),
    "Comp": (2, 4_342),
    "Vis": (57, 10_712),
    "Parser": (51, 17_836),
    "Img lib": (60, 41_456),
    "Game": (315, 45_512),
    "Simulation": (150, 63_548),
    "Graph lib": (184, 69_472),
    "Office software": (396, 151_220),
    "DS lib": (718, 529_164),
}

TOTAL_DYNAMIC_INSTANCES = 1_960
TOTAL_ARRAY_INSTANCES = 785
TOTAL_LOC = 936_356

#: Corpus-wide dynamic-structure frequency (Figure 1 legend + §II-A).
KIND_TOTALS: dict[StructureKind, int] = {
    StructureKind.LIST: 1_275,
    StructureKind.DICTIONARY: 324,
    StructureKind.ARRAY_LIST: 192,
    StructureKind.STACK: 49,
    StructureKind.QUEUE: 41,
    StructureKind.HASH_SET: 38,
    StructureKind.SORTED_LIST: 20,
    StructureKind.SORTED_SET: 10,
    StructureKind.SORTED_DICTIONARY: 8,
    StructureKind.LINKED_LIST: 3,
    StructureKind.HASHTABLE: 0,
}


@dataclass(frozen=True, slots=True)
class RegularityRow:
    """One Table II row."""

    name: str
    domain: str
    loc: int
    regularities: int
    parallel_use_cases: int


#: Table II: recurring regularities in 15 programs (72,613 LOC total).
TABLE2_PROGRAMS: tuple[RegularityRow, ...] = (
    RegularityRow("TerraBIB", "Office", 10_309, 1, 0),
    RegularityRow("rrrsroguelike", "Game", 659, 1, 1),
    RegularityRow("fire", "Simulation", 2_137, 1, 2),
    RegularityRow("dotqcf", "Simulation", 27_170, 2, 0),
    RegularityRow("Contentfinder", "Search", 1_046, 2, 2),
    RegularityRow("astrogrep", "Computation", 846, 2, 3),
    RegularityRow("borys-MeshRouting", "Simulation", 6_429, 3, 3),
    RegularityRow("csparser", "Parser", 17_836, 5, 5),
    RegularityRow("dsa", "DS lib", 4_099, 5, 0),
    RegularityRow("TreeLayoutHelper", "Graph lib", 4_673, 6, 0),
    RegularityRow("ManicDigger2011", "Game", 24_970, 6, 6),
    RegularityRow("clipper", "Office", 3_270, 9, 5),
    RegularityRow("Net_With_UI", "Simulation", 1_034, 11, 2),
    RegularityRow("netinfotrace", "Office", 7_311, 13, 5),
    RegularityRow("MidiSheetMusic", "Office", 4_792, 14, 7),
)

TABLE2_TOTAL_LOC = 72_613
TABLE2_TOTAL_REGULARITIES = 81
TABLE2_TOTAL_PARALLEL_USE_CASES = 41


@dataclass(frozen=True, slots=True)
class SurveyRow:
    """One Table III row: use cases by category for one program.

    A regularity can carry at most one *parallel-use-case* count per
    category; where the published scan is ambiguous the assignment is a
    reconstruction constrained by the row and column sums (documented
    in EXPERIMENTS.md).
    """

    name: str
    li: int = 0
    iq: int = 0
    sai: int = 0
    fs: int = 0
    flr: int = 0

    @property
    def total(self) -> int:
        return self.li + self.iq + self.sai + self.fs + self.flr


#: Table III: 66 use cases by category.
TABLE3_PROGRAMS: tuple[SurveyRow, ...] = (
    SurveyRow("QIT", li=6, iq=1, sai=1),
    SurveyRow("ManicDigger2011", li=3, iq=1, fs=1, flr=1),
    SurveyRow("csparser", li=5),
    SurveyRow("clipper", li=4, flr=1),
    SurveyRow("gpdotnet", li=4, flr=1),
    SurveyRow("netlinwhetcpu", li=3, fs=1, flr=1),
    SurveyRow("Mandelbrot", li=3),
    SurveyRow("quickgraph", li=3),
    SurveyRow("astrogrep", li=2, flr=1),
    SurveyRow("borys-MeshRouting", li=3),
    SurveyRow("Contentfinder", li=1, flr=1),
    SurveyRow("DambachMulti", li=2),
    SurveyRow("LinearAlgebra", li=2),
    SurveyRow("MathNetIridium", li=1, flr=1),
    SurveyRow("Net_With_UI", li=2),
    SurveyRow("fire", li=1, flr=1),
    SurveyRow("DesktopSuche", li=1),
    SurveyRow("FIPL", li=1),
    SurveyRow("FreeFlowSPH", li=1),
    SurveyRow("networkminer", iq=1),
    SurveyRow("rrrsroguelike", li=1),
    SurveyRow("WordWheelSolver", fs=1),
    SurveyRow("wordSorter", flr=1),
    SurveyRow("Algorithmia", flr=1),
)

TABLE3_TOTALS = {"LI": 49, "IQ": 3, "SAI": 1, "FS": 3, "FLR": 10}
TABLE3_TOTAL_USE_CASES = 66
