"""Cross-table consistency checks on the transcribed study data.

The ground truth in :mod:`repro.study.domains` was recovered from a
scan of the paper; these checks encode every internal relationship the
published numbers must satisfy, so a transcription error cannot slip in
silently.  They run in the test suite and are callable as a library
(``verify_study_data()``) for anyone editing the tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events.types import StructureKind
from .domains import (
    FIG1_PROGRAMS,
    KIND_TOTALS,
    TABLE1_DOMAINS,
    TABLE2_PROGRAMS,
    TABLE3_PROGRAMS,
    TABLE3_TOTALS,
    TOTAL_ARRAY_INSTANCES,
    TOTAL_DYNAMIC_INSTANCES,
    TOTAL_LOC,
)


@dataclass(frozen=True, slots=True)
class ConsistencyIssue:
    check: str
    detail: str


def verify_study_data() -> list[ConsistencyIssue]:
    """All violated relationships (empty = consistent)."""
    issues: list[ConsistencyIssue] = []

    def check(condition: bool, name: str, detail: str) -> None:
        if not condition:
            issues.append(ConsistencyIssue(check=name, detail=detail))

    # Figure 1 totals vs Table I.
    fig1_total = sum(p.instances for p in FIG1_PROGRAMS)
    check(
        fig1_total == TOTAL_DYNAMIC_INSTANCES,
        "fig1-total",
        f"Figure 1 programs sum to {fig1_total}, expected "
        f"{TOTAL_DYNAMIC_INSTANCES}",
    )
    per_domain: dict[str, int] = {}
    for program in FIG1_PROGRAMS:
        per_domain[program.domain] = (
            per_domain.get(program.domain, 0) + program.instances
        )
    for domain, (instances, _loc) in TABLE1_DOMAINS.items():
        check(
            per_domain.get(domain, 0) == instances,
            "domain-sum",
            f"{domain}: Figure 1 gives {per_domain.get(domain, 0)}, "
            f"Table I says {instances}",
        )
    check(
        len(FIG1_PROGRAMS) == 37,
        "program-count",
        f"{len(FIG1_PROGRAMS)} programs, expected 37",
    )
    check(
        len({p.name for p in FIG1_PROGRAMS}) == len(FIG1_PROGRAMS),
        "program-names-unique",
        "duplicate program names in Figure 1",
    )

    # Kind totals.
    kind_sum = sum(KIND_TOTALS.values())
    check(
        kind_sum == TOTAL_DYNAMIC_INSTANCES,
        "kind-total",
        f"kind totals sum to {kind_sum}",
    )
    list_share = KIND_TOTALS[StructureKind.LIST] / TOTAL_DYNAMIC_INSTANCES
    check(
        abs(list_share - 0.6505) < 0.0005,
        "list-share",
        f"list share {list_share:.4f}, paper says 65.05%",
    )
    lists_arrays = (
        KIND_TOTALS[StructureKind.LIST] + TOTAL_ARRAY_INSTANCES
    ) / (TOTAL_DYNAMIC_INSTANCES + TOTAL_ARRAY_INSTANCES)
    check(
        lists_arrays > 0.75,
        "lists-arrays-share",
        f"lists+arrays share {lists_arrays:.4f}, paper says >75%",
    )

    # Table I LOC.
    loc_sum = sum(loc for _, loc in TABLE1_DOMAINS.values())
    check(loc_sum == TOTAL_LOC, "table1-loc", f"LOC sum {loc_sum}")

    # Table II.
    check(
        sum(r.regularities for r in TABLE2_PROGRAMS) == 81,
        "table2-regularities",
        "regularity total != 81",
    )
    check(
        sum(r.parallel_use_cases for r in TABLE2_PROGRAMS) == 41,
        "table2-use-cases",
        "parallel use-case total != 41",
    )
    for row in TABLE2_PROGRAMS:
        check(
            row.parallel_use_cases <= 2 * row.regularities,
            "table2-row-bound",
            f"{row.name}: {row.parallel_use_cases} use cases exceed twice "
            f"its {row.regularities} regularities",
        )

    # Table III.
    check(
        sum(r.total for r in TABLE3_PROGRAMS) == 66,
        "table3-total",
        "use-case total != 66",
    )
    for abbrev, column in (
        ("LI", lambda r: r.li),
        ("IQ", lambda r: r.iq),
        ("SAI", lambda r: r.sai),
        ("FS", lambda r: r.fs),
        ("FLR", lambda r: r.flr),
    ):
        total = sum(column(r) for r in TABLE3_PROGRAMS)
        check(
            total == TABLE3_TOTALS[abbrev],
            "table3-column",
            f"{abbrev} column sums to {total}, expected "
            f"{TABLE3_TOTALS[abbrev]}",
        )

    # Cross-table: Table II programs drawn "from the same sample" must
    # exist in the 37-program corpus where they overlap by name.
    fig1_names = {p.name.lower() for p in FIG1_PROGRAMS}
    overlap = [
        r.name
        for r in TABLE2_PROGRAMS
        if r.name.lower() in fig1_names
    ]
    check(
        len(overlap) >= 8,
        "table2-overlap",
        f"only {len(overlap)} Table II programs found in Figure 1",
    )

    return issues
