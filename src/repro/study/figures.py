"""Figure 1 as an SVG chart.

The published Figure 1 is a stacked/grouped bar chart of data structure
occurrence per program.  This module renders the measured equivalent
as a standalone SVG — stacked bars per program in the published x-axis
order, one color per major structure kind, domains separated by gaps.
"""

from __future__ import annotations

from pathlib import Path

from ..events.types import StructureKind
from .domains import FIG1_PROGRAMS
from .occurrence import OccurrenceStudy

_KIND_COLORS: dict[StructureKind, str] = {
    StructureKind.LIST: "#4878cf",
    StructureKind.DICTIONARY: "#ee854a",
    StructureKind.ARRAY_LIST: "#6acc64",
    StructureKind.STACK: "#d65f5f",
    StructureKind.QUEUE: "#956cb4",
    StructureKind.OTHER: "#8c8c8c",
}


def figure1_svg(
    study: OccurrenceStudy,
    width: int = 1200,
    height: int = 420,
    log_hint: bool = False,
) -> str:
    """Render the per-program stacked occurrence chart."""
    names, series = study.figure1_series()
    kinds = [k for k in _KIND_COLORS if k in series]

    margin_left, margin_bottom, margin_top = 48, 120, 28
    plot_w = width - margin_left - 16
    plot_h = height - margin_bottom - margin_top

    totals = [sum(series[k][i] for k in kinds) for i in range(len(names))]
    peak = max(totals) if totals else 1

    domains = {p.name: p.domain for p in FIG1_PROGRAMS}
    bar_w = plot_w / max(len(names), 1) * 0.8
    step = plot_w / max(len(names), 1)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{margin_left}" y="18" font-family="sans-serif" '
        f'font-size="14">Figure 1 — data structure occurrence per program '
        f'(Σ = {sum(totals)})</text>',
    ]

    def y_of(value: float) -> float:
        return margin_top + plot_h * (1 - value / peak)

    previous_domain = None
    for i, name in enumerate(names):
        x = margin_left + i * step
        # Domain separator.
        if domains.get(name) != previous_domain and previous_domain is not None:
            parts.append(
                f'<line x1="{x - step * 0.1:.1f}" y1="{margin_top}" '
                f'x2="{x - step * 0.1:.1f}" y2="{margin_top + plot_h}" '
                f'stroke="#dddddd"/>'
            )
        previous_domain = domains.get(name)

        running = 0
        for kind in kinds:
            value = series[kind][i]
            if value == 0:
                continue
            top = y_of(running + value)
            bottom = y_of(running)
            parts.append(
                f'<rect x="{x:.1f}" y="{top:.1f}" width="{bar_w:.1f}" '
                f'height="{bottom - top:.1f}" fill="{_KIND_COLORS[kind]}"/>'
            )
            running += value
        # Rotated program label.
        label_x = x + bar_w / 2
        label_y = margin_top + plot_h + 8
        parts.append(
            f'<text x="{label_x:.1f}" y="{label_y:.1f}" font-family="sans-serif" '
            f'font-size="9" text-anchor="end" '
            f'transform="rotate(-60 {label_x:.1f} {label_y:.1f})">'
            f"{name} (Σ:{totals[i]})</text>"
        )

    # Legend.
    legend_x = margin_left
    legend_y = height - 14
    for kind in kinds:
        parts.append(
            f'<rect x="{legend_x}" y="{legend_y - 10}" width="10" height="10" '
            f'fill="{_KIND_COLORS[kind]}"/>'
        )
        label = "Rest" if kind is StructureKind.OTHER else kind.value
        parts.append(
            f'<text x="{legend_x + 14}" y="{legend_y}" font-family="sans-serif" '
            f'font-size="11">{label} (Σ:{sum(series[kind])})</text>'
        )
        legend_x += 150

    parts.append(
        f'<line x1="{margin_left}" y1="{margin_top + plot_h}" '
        f'x2="{margin_left + plot_w}" y2="{margin_top + plot_h}" stroke="black"/>'
    )
    parts.append("</svg>")
    return "\n".join(parts)


def save_figure1(study: OccurrenceStudy, path: str | Path, **kwargs) -> Path:
    path = Path(path)
    path.write_text(figure1_svg(study, **kwargs), encoding="utf-8")
    return path
