"""The empirical study (§II–III): Tables I–III and Figure 1."""

from .consistency import ConsistencyIssue, verify_study_data
from .domains import (
    FIG1_PROGRAMS,
    KIND_TOTALS,
    TABLE1_DOMAINS,
    TABLE2_PROGRAMS,
    TABLE2_TOTAL_PARALLEL_USE_CASES,
    TABLE2_TOTAL_REGULARITIES,
    TABLE3_PROGRAMS,
    TABLE3_TOTAL_USE_CASES,
    TABLE3_TOTALS,
    TOTAL_ARRAY_INSTANCES,
    TOTAL_DYNAMIC_INSTANCES,
    TOTAL_LOC,
    ProgramDescriptor,
    RegularityRow,
    SurveyRow,
)
from .figures import figure1_svg, save_figure1
from .occurrence import OccurrenceStudy, run_occurrence_study
from .regularities import (
    MinedProgram,
    RegularityStudy,
    build_program_suite,
    run_regularity_study,
)
from .usecase_survey import (
    SurveyedProgram,
    UseCaseSurvey,
    build_survey_suite,
    run_usecase_survey,
)

__all__ = [
    "FIG1_PROGRAMS",
    "KIND_TOTALS",
    "MinedProgram",
    "OccurrenceStudy",
    "ProgramDescriptor",
    "RegularityRow",
    "RegularityStudy",
    "SurveyRow",
    "SurveyedProgram",
    "TABLE1_DOMAINS",
    "TABLE2_PROGRAMS",
    "TABLE2_TOTAL_PARALLEL_USE_CASES",
    "TABLE2_TOTAL_REGULARITIES",
    "TABLE3_PROGRAMS",
    "TABLE3_TOTALS",
    "TABLE3_TOTAL_USE_CASES",
    "TOTAL_ARRAY_INSTANCES",
    "TOTAL_DYNAMIC_INSTANCES",
    "TOTAL_LOC",
    "UseCaseSurvey",
    "ConsistencyIssue",
    "build_program_suite",
    "figure1_svg",
    "save_figure1",
    "verify_study_data",
    "build_survey_suite",
    "run_occurrence_study",
    "run_regularity_study",
    "run_usecase_survey",
]
