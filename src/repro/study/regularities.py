"""Recurring-regularity mining (§III-A: Table II).

The paper inspected the runtime profiles of 15 programs and counted 81
locations with recurring regularities, 41 of which led to parallel use
cases.  The original programs are unavailable, so each program is
represented by a *profile suite* synthesized to its published counts:
``parallel_use_cases`` profiles carrying one parallel use case each,
``regularities - parallel_use_cases`` profiles that are regular but
only sequentially interesting, and irregular filler.  The suites then
flow through the *real* mining pipeline — regularity classifier and
use-case engine — and the benchmark asserts that the measured counts
reproduce Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events.collector import collecting
from ..events.profile import RuntimeProfile
from ..patterns.regularity import RegularityClassifier
from ..usecases.engine import UseCaseEngine
from ..usecases.rules import PARALLEL_RULES
from ..workloads import generators as gen
from .domains import TABLE2_PROGRAMS, RegularityRow

#: Parallel-use-case profile makers, cycled deterministically per
#: program.  Each yields a profile that is regular AND carries exactly
#: one parallel use case.
_PARALLEL_MAKERS = (
    lambda i: gen.gen_long_insert(500, label=f"li_{i}"),
    lambda i: gen.gen_frequent_long_read(12, 60, label=f"flr_{i}"),
    lambda i: gen.gen_queue_usage(90, label=f"iq_{i}"),
    lambda i: gen.gen_sort_after_insert(200, label=f"sai_{i}"),
)

#: Regular-but-sequential profile makers (no parallel use case).
_SEQUENTIAL_MAKERS = (
    lambda i: gen.gen_stack_usage(20, 5, label=f"si_{i}"),
    lambda i: gen.gen_insert_back_read_forward(50, 4, label=f"cycle_{i}"),
    lambda i: gen.gen_write_without_read(40, label=f"wwr_{i}"),
)

#: Irregular filler profiles added to every program suite.
_IRREGULAR_PER_PROGRAM = 2


def build_program_suite(row: RegularityRow) -> list[RuntimeProfile]:
    """Synthesize the profile suite for one Table II program.

    Some published rows report more parallel use cases than
    regularities (fire: 1/2, astrogrep: 2/3): a single location can
    carry two use cases, like Figure 3's Insert-Back + Read-Forward
    list.  Such rows get ``P - R`` dual-use-case profiles; the rest are
    single-use-case or sequential-regularity profiles.
    """
    dual = max(row.parallel_use_cases - row.regularities, 0)
    single = row.parallel_use_cases - 2 * dual
    sequential = row.regularities - dual - single
    with collecting() as session:
        for i in range(dual):
            gen.gen_insert_and_scan(label=f"dual_{i}")
        for i in range(single):
            _PARALLEL_MAKERS[i % len(_PARALLEL_MAKERS)](i)
        for i in range(sequential):
            _SEQUENTIAL_MAKERS[i % len(_SEQUENTIAL_MAKERS)](i)
        for i in range(_IRREGULAR_PER_PROGRAM):
            gen.gen_irregular(120, 50, seed=hash(row.name) % 10_000 + i)
    return session.profiles()


@dataclass(frozen=True)
class MinedProgram:
    """Measured mining result for one program."""

    row: RegularityRow
    regularities_found: int
    parallel_use_cases_found: int

    @property
    def matches_paper(self) -> bool:
        return (
            self.regularities_found == self.row.regularities
            and self.parallel_use_cases_found == self.row.parallel_use_cases
        )


@dataclass(frozen=True)
class RegularityStudy:
    """The full Table II reproduction."""

    programs: tuple[MinedProgram, ...]

    @property
    def total_regularities(self) -> int:
        return sum(p.regularities_found for p in self.programs)

    @property
    def total_parallel_use_cases(self) -> int:
        return sum(p.parallel_use_cases_found for p in self.programs)

    @property
    def all_match(self) -> bool:
        return all(p.matches_paper for p in self.programs)

    def rows(self) -> list[tuple[str, str, int, int, int]]:
        """(name, domain, loc, regularities, parallel) — Table II rows."""
        return [
            (
                p.row.name,
                p.row.domain,
                p.row.loc,
                p.regularities_found,
                p.parallel_use_cases_found,
            )
            for p in self.programs
        ]


def run_regularity_study(
    classifier: RegularityClassifier | None = None,
    engine: UseCaseEngine | None = None,
) -> RegularityStudy:
    """Mine every Table II program suite through the real pipeline."""
    classifier = classifier if classifier is not None else RegularityClassifier()
    engine = engine if engine is not None else UseCaseEngine(rules=PARALLEL_RULES)
    mined = []
    for row in TABLE2_PROGRAMS:
        profiles = build_program_suite(row)
        regular = classifier.count_regular(profiles)
        report = engine.analyze(profiles)
        mined.append(
            MinedProgram(
                row=row,
                regularities_found=regular,
                parallel_use_cases_found=len(report.use_cases),
            )
        )
    return RegularityStudy(programs=tuple(mined))
