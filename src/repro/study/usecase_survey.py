"""Use-case survey (§III-B: Table III).

The paper evaluated the five parallel-potential use cases on 23
benchmark programs and found 66 use cases: Long-Insert 49,
Implement-Queue 3, Sort-After-Insert 1, Frequent-Search 3,
Frequent-Long-Read 10.  As with Table II, each program is represented
by a synthesized profile suite carrying its published per-category
counts; the suites run through the real use-case engine and the
benchmark asserts the measured distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events.collector import collecting
from ..events.profile import RuntimeProfile
from ..usecases.engine import UseCaseEngine
from ..usecases.model import UseCaseKind
from ..usecases.rules import PARALLEL_RULES
from ..workloads import generators as gen
from .domains import TABLE3_PROGRAMS, SurveyRow


def build_survey_suite(row: SurveyRow) -> list[RuntimeProfile]:
    """Synthesize one program's profile suite for the survey.

    One profile per published use case (sized above the firing
    thresholds), plus two innocuous filler profiles so the engine sees
    unflagged instances too.
    """
    with collecting() as session:
        for i in range(row.li):
            gen.gen_long_insert(300 + 50 * i, label=f"{row.name}_li{i}")
        for i in range(row.iq):
            gen.gen_queue_usage(90, label=f"{row.name}_iq{i}")
        for i in range(row.sai):
            gen.gen_sort_after_insert(250, label=f"{row.name}_sai{i}")
        for i in range(row.fs):
            gen.gen_frequent_search(1200, 120, label=f"{row.name}_fs{i}")
        for i in range(row.flr):
            gen.gen_frequent_long_read(14, 80, label=f"{row.name}_flr{i}")
        gen.gen_irregular(100, 40, seed=abs(hash(row.name)) % 9999)
        gen.gen_stack_usage(15, 3, label=f"{row.name}_filler")
    return session.profiles()


@dataclass(frozen=True)
class SurveyedProgram:
    """Measured survey result for one program."""

    row: SurveyRow
    counts: dict[UseCaseKind, int]

    @property
    def total_found(self) -> int:
        return sum(self.counts.values())

    @property
    def matches_paper(self) -> bool:
        expected = {
            UseCaseKind.LONG_INSERT: self.row.li,
            UseCaseKind.IMPLEMENT_QUEUE: self.row.iq,
            UseCaseKind.SORT_AFTER_INSERT: self.row.sai,
            UseCaseKind.FREQUENT_SEARCH: self.row.fs,
            UseCaseKind.FREQUENT_LONG_READ: self.row.flr,
        }
        return all(
            self.counts.get(kind, 0) == value for kind, value in expected.items()
        )


@dataclass(frozen=True)
class UseCaseSurvey:
    """The full Table III reproduction."""

    programs: tuple[SurveyedProgram, ...]

    def totals(self) -> dict[UseCaseKind, int]:
        out: dict[UseCaseKind, int] = {}
        for program in self.programs:
            for kind, count in program.counts.items():
                out[kind] = out.get(kind, 0) + count
        return out

    @property
    def total_use_cases(self) -> int:
        return sum(self.totals().values())

    @property
    def all_match(self) -> bool:
        return all(p.matches_paper for p in self.programs)

    def rows(self) -> list[tuple[str, int, int, int, int, int, int]]:
        """(name, LI, IQ, SAI, FS, FLR, Σ) — Table III rows."""
        out = []
        for program in self.programs:
            counts = program.counts
            out.append(
                (
                    program.row.name,
                    counts.get(UseCaseKind.LONG_INSERT, 0),
                    counts.get(UseCaseKind.IMPLEMENT_QUEUE, 0),
                    counts.get(UseCaseKind.SORT_AFTER_INSERT, 0),
                    counts.get(UseCaseKind.FREQUENT_SEARCH, 0),
                    counts.get(UseCaseKind.FREQUENT_LONG_READ, 0),
                    program.total_found,
                )
            )
        return out


def run_usecase_survey(engine: UseCaseEngine | None = None) -> UseCaseSurvey:
    """Survey every Table III program suite through the real engine."""
    engine = engine if engine is not None else UseCaseEngine(rules=PARALLEL_RULES)
    surveyed = []
    for row in TABLE3_PROGRAMS:
        profiles = build_survey_suite(row)
        report = engine.analyze(profiles)
        counts: dict[UseCaseKind, int] = {}
        for use_case in report.use_cases:
            counts[use_case.kind] = counts.get(use_case.kind, 0) + 1
        surveyed.append(SurveyedProgram(row=row, counts=counts))
    return UseCaseSurvey(programs=tuple(surveyed))
