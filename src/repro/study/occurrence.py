"""Data-structure occurrence study (§II-A: Table I and Figure 1).

Generates the synthetic corpus (published marginals by construction),
scans it with the real static-analysis pipeline, and aggregates the
results into the paper's two presentations: the per-domain Table I and
the per-program Figure 1 distribution.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

from ..events.types import StructureKind
from ..instrument.corpus import CorpusStats, scan_corpus
from ..workloads.corpus_gen import corpus_domains, write_corpus
from .domains import (
    FIG1_PROGRAMS,
    KIND_TOTALS,
    TABLE1_DOMAINS,
)

#: Domain presentation order of Table I (ascending LOC).
TABLE1_ORDER = list(TABLE1_DOMAINS)


@dataclass(frozen=True)
class OccurrenceStudy:
    """Scan results plus the paper-facing aggregations."""

    corpus: CorpusStats

    # -- Table I ---------------------------------------------------------

    def table1_rows(self) -> list[tuple[str, int, int]]:
        """(domain, #instances, LOC) rows in Table I order."""
        totals = self.corpus.domain_totals()
        return [
            (domain, *totals.get(domain, (0, 0)))
            for domain in TABLE1_ORDER
        ]

    @property
    def total_instances(self) -> int:
        return self.corpus.total_dynamic_instances

    @property
    def total_loc(self) -> int:
        return self.corpus.total_loc

    # -- Figure 1 -----------------------------------------------------------

    def figure1_series(
        self, min_share: float = 0.02
    ) -> tuple[list[str], dict[StructureKind, list[int]]]:
        """Per-program counts by kind, Figure 1 style.

        Returns the program names (Figure 1 x-axis order) and one count
        series per kind whose corpus-wide share is at least
        ``min_share``; rarer kinds aggregate into the ``OTHER`` series
        ("Rest"), exactly as the published figure cuts at 2%.
        """
        by_name = {p.name: p for p in self.corpus.programs}
        names = [d.name for d in FIG1_PROGRAMS if d.name in by_name]

        total = max(self.total_instances, 1)
        kind_totals = self.corpus.counts_by_kind()
        major = [
            kind
            for kind in KIND_TOTALS
            if kind_totals.get(kind, 0) / total >= min_share
        ]

        series: dict[StructureKind, list[int]] = {k: [] for k in major}
        series[StructureKind.OTHER] = []
        for name in names:
            counts = by_name[name].counts
            rest = 0
            for kind in KIND_TOTALS:
                value = counts.get(kind, 0)
                if kind in series:
                    series[kind].append(value)
                else:
                    rest += value
            series[StructureKind.OTHER].append(rest)
        return names, series

    # -- headline shares --------------------------------------------------------

    def share(self, kind: StructureKind) -> float:
        return self.corpus.kind_share(kind)

    @property
    def list_share(self) -> float:
        """The paper's headline: 65.05% of dynamic instances are lists."""
        return self.share(StructureKind.LIST)

    @property
    def list_to_dictionary_ratio(self) -> float:
        """The paper's 3.94x list-vs-dictionary ratio."""
        counts = self.corpus.counts_by_kind()
        dictionary = counts.get(StructureKind.DICTIONARY, 0)
        if dictionary == 0:
            return float("inf")
        return counts.get(StructureKind.LIST, 0) / dictionary

    @property
    def lists_and_arrays_share(self) -> float:
        """Lists + arrays over all instances (paper: >75%)."""
        counts = self.corpus.counts_by_kind()
        lists = counts.get(StructureKind.LIST, 0)
        arrays = self.corpus.total_array_instances
        total = self.total_instances + arrays
        if total == 0:
            return 0.0
        return (lists + arrays) / total


def run_occurrence_study(
    corpus_root: str | Path | None = None,
    loc_scale: float = 0.1,
    seed: int = 2014,
) -> OccurrenceStudy:
    """Generate (or reuse) the corpus and scan it.

    Pass ``corpus_root`` to materialize the corpus at a stable path
    (benchmarks cache it); otherwise a temporary directory is used and
    cleaned up after the scan.
    """
    domains = corpus_domains()
    if corpus_root is not None:
        root = Path(corpus_root)
        if not any(root.glob("*/main.py")):
            write_corpus(root, loc_scale=loc_scale, seed=seed)
        return OccurrenceStudy(corpus=scan_corpus(root, domains=domains))
    with tempfile.TemporaryDirectory() as tmp:
        write_corpus(tmp, loc_scale=loc_scale, seed=seed)
        return OccurrenceStudy(corpus=scan_corpus(tmp, domains=domains))
