"""Parallel data containers — the recommendation targets.

When DSspy recommends "employ a parallel queue" or "parallelize the
search operation", these are the classes the engineer migrates to.
:class:`ParallelList` offers thread-safe mutation plus chunked parallel
queries; :class:`ParallelQueue` is the thread-safe FIFO the
Implement-Queue rule points at (the TPL/PPL/TBB concurrent-container
analog from the paper's related work).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Iterable, Iterator, Sequence, TypeVar

from .executor import ParallelExecutor

T = TypeVar("T")


class ParallelList:
    """Thread-safe list with parallel bulk operations.

    Mutations take an internal lock; parallel queries snapshot the
    backing storage and fan out over a :class:`ParallelExecutor`.
    """

    def __init__(
        self,
        iterable: Iterable[Any] | None = None,
        executor: ParallelExecutor | None = None,
    ) -> None:
        self._data: list[Any] = list(iterable) if iterable is not None else []
        self._lock = threading.RLock()
        self._executor = executor if executor is not None else ParallelExecutor()

    # -- sequential interface (thread-safe) -------------------------------

    def append(self, value) -> None:
        with self._lock:
            self._data.append(value)

    def extend(self, iterable: Iterable[Any]) -> None:
        with self._lock:
            self._data.extend(iterable)

    def __getitem__(self, i):
        with self._lock:
            return self._data[i]

    def __setitem__(self, i, value) -> None:
        with self._lock:
            self._data[i] = value

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.snapshot())

    def __contains__(self, value) -> bool:
        return self.parallel_contains(value)

    def snapshot(self) -> list[Any]:
        """Consistent copy of the contents."""
        with self._lock:
            return list(self._data)

    def sort(self, **kwargs) -> None:
        with self._lock:
            self._data.sort(**kwargs)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    # -- parallel bulk operations ------------------------------------------

    def parallel_fill(self, fn: Callable[[int], Any], n: int) -> None:
        """Replace contents with ``[fn(0), ..., fn(n-1)]`` built in
        parallel — the Long-Insert transform."""
        values = self._executor.parallel_fill(fn, n)
        with self._lock:
            self._data = values

    def parallel_extend(self, fn: Callable[[int], Any], n: int) -> None:
        """Append ``n`` generated elements, generation parallelized."""
        values = self._executor.parallel_fill(fn, n)
        with self._lock:
            self._data.extend(values)

    def parallel_search(self, predicate: Callable[[Any], bool]) -> int | None:
        """Chunked parallel linear search (lowest matching index)."""
        return self._executor.parallel_search(self.snapshot(), predicate)

    def parallel_index(self, value) -> int:
        hit = self.parallel_search(lambda x: x == value)
        if hit is None:
            raise ValueError(f"{value!r} is not in list")
        return hit

    def parallel_contains(self, value) -> bool:
        return self.parallel_search(lambda x: x == value) is not None

    def parallel_map(self, fn: Callable[[Any], Any]) -> list[Any]:
        return self._executor.parallel_map(fn, self.snapshot())

    def parallel_max(self, key: Callable[[Any], Any] = lambda x: x):
        """Parallel maximum — the Frequent-Long-Read transform for the
        priority-queue-as-list case the paper describes (speedup 2.30
        at 100k elements)."""
        data = self.snapshot()
        if not data:
            raise ValueError("parallel_max on empty list")
        sentinel = object()

        def fold(acc, item):
            if acc is sentinel or key(item) > key(acc):
                return item
            return acc

        def combine(a, b):
            if a is sentinel:
                return b
            if b is sentinel:
                return a
            return a if key(a) >= key(b) else b

        result = self._executor.parallel_reduce(data, fold, combine, sentinel)
        return result


class ParallelQueue:
    """Thread-safe FIFO queue (the Implement-Queue recommendation).

    Backed by a ``deque`` with a condition variable; ``dequeue`` can
    optionally block until an element arrives, enabling the
    producer/consumer overlap that makes the queue-as-list use case
    profit from parallelization.
    """

    def __init__(self, iterable: Iterable[Any] | None = None) -> None:
        self._data: deque = deque(iterable) if iterable is not None else deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    def enqueue(self, value) -> None:
        with self._not_empty:
            self._data.append(value)
            self._not_empty.notify()

    def dequeue(self, block: bool = False, timeout: float | None = None):
        with self._not_empty:
            if block:
                if not self._not_empty.wait_for(lambda: self._data, timeout=timeout):
                    raise TimeoutError("dequeue timed out")
            if not self._data:
                raise IndexError("dequeue from empty queue")
            return self._data.popleft()

    def peek(self):
        with self._lock:
            if not self._data:
                raise IndexError("peek on empty queue")
            return self._data[0]

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __bool__(self) -> bool:
        return len(self) > 0

    def snapshot(self) -> list[Any]:
        with self._lock:
            return list(self._data)


def parallel_sorted(
    items: Sequence[Any],
    executor: ParallelExecutor | None = None,
    key=None,
) -> list[Any]:
    """Parallel merge sort (Sort-After-Insert transform): chunks sorted
    concurrently, then merged.  Stable, like ``sorted``."""
    import heapq

    executor = executor if executor is not None else ParallelExecutor()
    data = list(items)
    if len(data) < 2:
        return data
    from .executor import chunk_ranges

    ranges = chunk_ranges(len(data), executor.workers)
    chunks = executor.parallel_map(
        lambda r: sorted(data[r.start : r.stop], key=key), ranges
    )
    return list(heapq.merge(*chunks, key=key))
