"""Applying recommended actions: estimated transform outcomes.

Given a detected :class:`~repro.usecases.model.UseCase`, this module
estimates the work that the recommended transform parallelizes (from the
use case's own evidence and profile) and evaluates it on a
:class:`~repro.parallel.machine.SimulatedMachine`.  The result mirrors
the paper's evaluation procedure: "we manually looked through all 24 use
cases and followed the recommended actions ... and classified the use
cases in true and false positives" — a use case is a *true positive*
when following its recommendation yields a speedup.

Work units are access events (one event ≈ one element operation), which
is exactly the granularity the profiles record.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events.types import OperationKind
from ..usecases.model import UseCase, UseCaseKind
from .machine import ParallelRegion, SimulatedMachine

#: A transform must beat this to count as a successful parallelization.
SPEEDUP_SUCCESS_THRESHOLD = 1.1


@dataclass(frozen=True, slots=True)
class TransformOutcome:
    """Result of (virtually) applying one recommendation."""

    use_case: UseCase
    region: ParallelRegion
    sequential_time: float
    parallel_time: float

    @property
    def speedup(self) -> float:
        if self.parallel_time <= 0:
            return 1.0
        return self.sequential_time / self.parallel_time

    @property
    def is_true_positive(self) -> bool:
        """Did following the recommendation pay off?"""
        return self.speedup > SPEEDUP_SUCCESS_THRESHOLD

    def describe(self) -> str:
        verdict = "true positive" if self.is_true_positive else "false positive"
        return (
            f"{self.use_case.kind.label}: work={self.region.work:.0f}, "
            f"speedup={self.speedup:.2f} ({verdict})"
        )


def estimate_region(use_case: UseCase) -> ParallelRegion:
    """Parallelizable work implied by a use case's evidence.

    - Long-Insert: the events inside insertion phases.
    - Implement-Queue: end-operations overlap producer/consumer style,
      so at most 2-way parallelism.
    - Sort-After-Insert: insert phase plus the sort's n·log n work.
    - Frequent-Search: each explicit search costs half a scan of the
      structure on average.
    - Frequent-Long-Read: the events inside the long read patterns.
    """
    kind = use_case.kind
    profile = use_case.profile
    analysis = use_case.analysis
    evidence = use_case.evidence

    if kind is UseCaseKind.LONG_INSERT:
        work = analysis.events_in(lambda p: p.pattern_type.is_insert)
        return ParallelRegion(work=float(work), name="insert phases")

    if kind is UseCaseKind.IMPLEMENT_QUEUE:
        work = profile.count(OperationKind.INSERT) + profile.count(
            OperationKind.DELETE
        )
        return ParallelRegion(
            work=float(work), max_parallelism=2, name="queue end operations"
        )

    if kind is UseCaseKind.SORT_AFTER_INSERT:
        import math

        insert_work = analysis.events_in(lambda p: p.pattern_type.is_insert)
        n = max(profile.max_size, 2)
        sort_work = n * math.log2(n)
        return ParallelRegion(
            work=float(insert_work + sort_work), name="insert + sort"
        )

    if kind is UseCaseKind.FREQUENT_SEARCH:
        # Granularity matters: each search is its own fork/join region
        # (one scan of half the structure on average), so thousands of
        # tiny searches do NOT aggregate into one big parallel region.
        avg_scan = max(profile.max_size, 1) / 2
        return ParallelRegion(work=float(avg_scan), name="single search scan")

    if kind is UseCaseKind.FREQUENT_LONG_READ:
        work = analysis.events_in(lambda p: p.pattern_type.is_read)
        return ParallelRegion(work=float(work), name="long read patterns")

    # Sequential-optimization kinds carry no parallel region.
    return ParallelRegion(work=0.0, max_parallelism=1, name="sequential advice")


def estimate_operations(use_case: UseCase) -> int:
    """How many times the region executes (fork/join paid per run).

    One for the phase-shaped use cases; the number of explicit searches
    for Frequent-Search, whose region is a single scan.
    """
    if use_case.kind is UseCaseKind.FREQUENT_SEARCH:
        return int(
            use_case.evidence.get(
                "search_ops", use_case.profile.count(OperationKind.SEARCH)
            )
        )
    return 1


def apply_recommendation(
    use_case: UseCase, machine: SimulatedMachine
) -> TransformOutcome:
    """Virtually apply the recommendation and measure on ``machine``."""
    region = estimate_region(use_case)
    operations = estimate_operations(use_case)
    sequential = region.work * operations
    if sequential <= 0:
        return TransformOutcome(
            use_case=use_case,
            region=region,
            sequential_time=0.0,
            parallel_time=0.0,
        )
    parallel = operations * machine.parallel_time(region.chunks(machine))
    return TransformOutcome(
        use_case=use_case,
        region=region,
        sequential_time=sequential,
        parallel_time=parallel,
    )


def apply_all(
    use_cases: list[UseCase], machine: SimulatedMachine
) -> list[TransformOutcome]:
    """Outcomes for every *parallel* use case (sequential advice is
    excluded, as in Table IV's true-positive accounting)."""
    return [
        apply_recommendation(u, machine) for u in use_cases if u.kind.parallel
    ]
