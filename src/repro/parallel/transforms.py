"""Applying recommended actions: estimated transform outcomes.

Given a detected :class:`~repro.usecases.model.UseCase`, this module
estimates the work that the recommended transform parallelizes (from the
use case's own evidence and profile) and evaluates it on a
:class:`~repro.parallel.machine.SimulatedMachine`.  The result mirrors
the paper's evaluation procedure: "we manually looked through all 24 use
cases and followed the recommended actions ... and classified the use
cases in true and false positives" — a use case is a *true positive*
when following its recommendation yields a speedup.

Work units are access events (one event ≈ one element operation), which
is exactly the granularity the profiles record.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events.types import OperationKind
from ..usecases.model import UseCase, UseCaseKind
from .executor import ParallelExecutor, chunk_ranges
from .machine import ParallelRegion, SimulatedMachine

#: A transform must beat this to count as a successful parallelization.
SPEEDUP_SUCCESS_THRESHOLD = 1.1


@dataclass(frozen=True, slots=True)
class TransformOutcome:
    """Result of (virtually) applying one recommendation."""

    use_case: UseCase
    region: ParallelRegion
    sequential_time: float
    parallel_time: float

    @property
    def speedup(self) -> float:
        if self.parallel_time <= 0:
            return 1.0
        return self.sequential_time / self.parallel_time

    @property
    def is_true_positive(self) -> bool:
        """Did following the recommendation pay off?"""
        return self.speedup > SPEEDUP_SUCCESS_THRESHOLD

    def describe(self) -> str:
        verdict = "true positive" if self.is_true_positive else "false positive"
        return (
            f"{self.use_case.kind.label}: work={self.region.work:.0f}, "
            f"speedup={self.speedup:.2f} ({verdict})"
        )


def estimate_region(use_case: UseCase) -> ParallelRegion:
    """Parallelizable work implied by a use case's evidence.

    - Long-Insert: the events inside insertion phases.
    - Implement-Queue: end-operations overlap producer/consumer style,
      so at most 2-way parallelism.
    - Sort-After-Insert: insert phase plus the sort's n·log n work.
    - Frequent-Search: each explicit search costs half a scan of the
      structure on average.
    - Frequent-Long-Read: the events inside the long read patterns.
    """
    kind = use_case.kind
    profile = use_case.profile
    analysis = use_case.analysis
    evidence = use_case.evidence

    if kind is UseCaseKind.LONG_INSERT:
        work = analysis.events_in(lambda p: p.pattern_type.is_insert)
        return ParallelRegion(work=float(work), name="insert phases")

    if kind is UseCaseKind.IMPLEMENT_QUEUE:
        work = profile.count(OperationKind.INSERT) + profile.count(
            OperationKind.DELETE
        )
        return ParallelRegion(
            work=float(work), max_parallelism=2, name="queue end operations"
        )

    if kind is UseCaseKind.SORT_AFTER_INSERT:
        import math

        insert_work = analysis.events_in(lambda p: p.pattern_type.is_insert)
        n = max(profile.max_size, 2)
        sort_work = n * math.log2(n)
        return ParallelRegion(
            work=float(insert_work + sort_work), name="insert + sort"
        )

    if kind is UseCaseKind.FREQUENT_SEARCH:
        # Granularity matters: each search is its own fork/join region
        # (one scan of half the structure on average), so thousands of
        # tiny searches do NOT aggregate into one big parallel region.
        avg_scan = max(profile.max_size, 1) / 2
        return ParallelRegion(work=float(avg_scan), name="single search scan")

    if kind is UseCaseKind.FREQUENT_LONG_READ:
        work = analysis.events_in(lambda p: p.pattern_type.is_read)
        return ParallelRegion(work=float(work), name="long read patterns")

    # Sequential-optimization kinds carry no parallel region.
    return ParallelRegion(work=0.0, max_parallelism=1, name="sequential advice")


def estimate_operations(use_case: UseCase) -> int:
    """How many times the region executes (fork/join paid per run).

    One for the phase-shaped use cases; the number of explicit searches
    for Frequent-Search, whose region is a single scan.
    """
    if use_case.kind is UseCaseKind.FREQUENT_SEARCH:
        return int(
            use_case.evidence.get(
                "search_ops", use_case.profile.count(OperationKind.SEARCH)
            )
        )
    return 1


def transform_ways(
    region_work: float, max_parallelism: int | None, cores: int
) -> int:
    """How many ways a transform actually splits its region: capped by
    the core count, the region's structural limit (e.g. 2-way for a
    producer/consumer queue), and the number of work items.  Shared by
    the analytic what-if prediction and the measured execution so both
    describe the same schedule."""
    items = max(int(round(region_work)), 1)
    ways = cores if max_parallelism is None else min(cores, max_parallelism)
    return max(1, min(ways, items))


#: Execution correctness is checked on at most this many real items;
#: the *accounted* schedule always reflects the full region.
_MAX_EXECUTED_ITEMS = 1 << 16


@dataclass(frozen=True, slots=True)
class ExecutedTransform:
    """Result of *really* applying one recommendation.

    Unlike :class:`TransformOutcome` (equal-split accounting of a
    virtual schedule), this runs the recommended transform on a thread
    pool via :class:`~repro.parallel.executor.ParallelExecutor`, checks
    the parallel result against the sequential one, and accounts the
    *actual* chunk schedule — including per-task spawn overhead and LPT
    placement — on the machine model.  The gap between this and the
    analytic prediction is what the ``bench --whatif`` accuracy band
    measures.
    """

    use_case: UseCase
    region: ParallelRegion
    operations: int
    ways: int
    chunk_sizes: tuple[int, ...]
    matches_sequential: bool
    sequential_time: float
    parallel_time: float

    @property
    def speedup(self) -> float:
        if self.parallel_time <= 0:
            return 1.0
        return self.sequential_time / self.parallel_time


def _run_transform_body(
    kind: UseCaseKind, n: int, executor: ParallelExecutor
) -> bool:
    """Execute a representative body of the recommended transform on
    real threads and verify it against the sequential result."""
    items = list(range(n))
    if kind is UseCaseKind.FREQUENT_SEARCH:
        # Parallel chunked search — the recommended transform itself.
        target = items[-1]
        return executor.parallel_index(items, target) == items.index(target)
    if kind is UseCaseKind.IMPLEMENT_QUEUE:
        # End-operations overlap 2-way: a chunked fold stands in for the
        # producer/consumer split.
        parallel = executor.parallel_reduce(
            items, lambda acc, x: acc + x, lambda a, b: a + b, 0
        )
        return parallel == sum(items)
    # Insert/read phases (LI, SAI, FLR): parallel fill of the phase.
    filled = executor.parallel_fill(lambda i: i * 2 + 1, n)
    return filled == [i * 2 + 1 for i in items]


def execute_transform(
    use_case: UseCase,
    machine: SimulatedMachine,
    executor: ParallelExecutor | None = None,
) -> ExecutedTransform:
    """Apply the recommendation for real and measure its schedule.

    The region is split into :func:`transform_ways` contiguous chunks
    (:func:`~repro.parallel.executor.chunk_ranges` — the exact split the
    executor runs), the body executes on a thread pool with the result
    checked against the sequential computation, and the measured
    parallel time is the machine model's accounting of the actual chunk
    sizes: ``fork_join + LPT-makespan(chunk + task_overhead)`` per
    operation.
    """
    region = estimate_region(use_case)
    operations = estimate_operations(use_case)
    sequential = region.work * operations
    if not use_case.kind.parallel or sequential <= 0:
        return ExecutedTransform(
            use_case=use_case,
            region=region,
            operations=operations,
            ways=1,
            chunk_sizes=(),
            matches_sequential=True,
            sequential_time=0.0,
            parallel_time=0.0,
        )
    n = max(int(round(region.work)), 1)
    ways = transform_ways(region.work, region.max_parallelism, machine.cores)
    if executor is None:
        executor = ParallelExecutor(workers=ways)
    exec_n = min(n, _MAX_EXECUTED_ITEMS)
    matches = _run_transform_body(use_case.kind, exec_n, executor)
    # Account the real chunk split of the full region; each item carries
    # region.work / n work units (== 1 except for rounding).
    unit = region.work / n
    chunks = chunk_ranges(n, ways)
    chunk_sizes = tuple(len(r) for r in chunks)
    parallel = operations * machine.parallel_time(
        [size * unit for size in chunk_sizes]
    )
    return ExecutedTransform(
        use_case=use_case,
        region=region,
        operations=operations,
        ways=ways,
        chunk_sizes=chunk_sizes,
        matches_sequential=matches,
        sequential_time=sequential,
        parallel_time=parallel,
    )


def apply_recommendation(
    use_case: UseCase, machine: SimulatedMachine
) -> TransformOutcome:
    """Virtually apply the recommendation and measure on ``machine``."""
    region = estimate_region(use_case)
    operations = estimate_operations(use_case)
    sequential = region.work * operations
    if sequential <= 0:
        return TransformOutcome(
            use_case=use_case,
            region=region,
            sequential_time=0.0,
            parallel_time=0.0,
        )
    parallel = operations * machine.parallel_time(region.chunks(machine))
    return TransformOutcome(
        use_case=use_case,
        region=region,
        sequential_time=sequential,
        parallel_time=parallel,
    )


def apply_all(
    use_cases: list[UseCase], machine: SimulatedMachine
) -> list[TransformOutcome]:
    """Outcomes for every *parallel* use case (sequential advice is
    excluded, as in Table IV's true-positive accounting)."""
    return [
        apply_recommendation(u, machine) for u in use_cases if u.kind.parallel
    ]
