"""Deterministic simulated multicore machine.

The paper measures speedups on an 8-core AMD FX 8120; this container has
a single core, so wall-clock threading cannot reproduce those numbers
(see DESIGN.md §2).  :class:`SimulatedMachine` is the substitution: a
work/span cost model with an LPT (longest-processing-time-first) greedy
scheduler, per-task spawn overhead and per-region fork/join overhead.
Speedup *shapes* — who wins, Amdahl ceilings, where parallelization
stops paying — are properties of this model, and they are what
EXPERIMENTS.md compares against the paper.

Costs are abstract work units; only ratios matter.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True, slots=True)
class MachineConfig:
    """Cost-model parameters.

    Attributes
    ----------
    cores:
        Worker count; 8 matches the paper's test system.
    task_overhead:
        Work units added per spawned task (scheduling, closure setup).
    fork_join_overhead:
        Fixed work units per parallel region (thread wake-up, barrier).
        This is what makes tiny regions not worth parallelizing — the
        mechanism behind the paper's false positives ("initializations
        without speedup").
    """

    cores: int = 8
    task_overhead: float = 1.0
    fork_join_overhead: float = 200.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.task_overhead < 0 or self.fork_join_overhead < 0:
            raise ValueError("overheads must be >= 0")


#: The paper's evaluation machine.
PAPER_MACHINE = MachineConfig(cores=8)


def amdahl(sequential_fraction: float, cores: int) -> float:
    """Amdahl's-law speedup ceiling for a given sequential fraction."""
    if not 0.0 <= sequential_fraction <= 1.0:
        raise ValueError("sequential_fraction must be in [0, 1]")
    if cores < 1:
        raise ValueError("cores must be >= 1")
    return 1.0 / (sequential_fraction + (1.0 - sequential_fraction) / cores)


class SimulatedMachine:
    """Schedules abstract task costs onto ``cores`` workers."""

    def __init__(self, config: MachineConfig | None = None) -> None:
        self.config = config if config is not None else MachineConfig()

    @property
    def cores(self) -> int:
        return self.config.cores

    # -- scheduling ----------------------------------------------------

    def makespan(self, costs: Sequence[float]) -> float:
        """LPT-greedy makespan of the given task costs (no overheads)."""
        if not costs:
            return 0.0
        loads = [0.0] * min(self.cores, len(costs))
        heapq.heapify(loads)
        for cost in sorted(costs, reverse=True):
            load = heapq.heappop(loads)
            heapq.heappush(loads, load + cost)
        return max(loads)

    def parallel_time(self, costs: Sequence[float]) -> float:
        """Wall-time of one parallel region executing ``costs``."""
        if not costs:
            return 0.0
        cfg = self.config
        overheaded = [c + cfg.task_overhead for c in costs]
        return cfg.fork_join_overhead + self.makespan(overheaded)

    @staticmethod
    def sequential_time(costs: Sequence[float]) -> float:
        return float(sum(costs))

    def region_speedup(self, costs: Sequence[float]) -> float:
        """Speedup of parallelizing one region vs running it inline."""
        seq = self.sequential_time(costs)
        if seq <= 0:
            return 1.0
        return seq / self.parallel_time(costs)

    # -- convenience: evenly divisible work ------------------------------

    def chunk_work(self, total_work: float, chunks: int | None = None) -> list[float]:
        """Split ``total_work`` into equal chunks (default: one per core)."""
        n = chunks if chunks is not None else self.cores
        n = max(int(n), 1)
        return [total_work / n] * n

    def data_parallel_speedup(
        self, total_work: float, chunks: int | None = None
    ) -> float:
        """Speedup of a perfectly divisible region of ``total_work``."""
        if total_work <= 0:
            return 1.0
        return self.region_speedup(self.chunk_work(total_work, chunks))


@dataclass(frozen=True, slots=True)
class ParallelRegion:
    """One parallelizable phase of a program.

    ``work`` is the region's total cost; ``max_parallelism`` caps how
    many ways it can split (e.g. a producer/consumer queue overlaps at
    most 2-way regardless of core count).
    """

    work: float
    max_parallelism: int | None = None
    name: str = ""

    def chunks(self, machine: SimulatedMachine) -> list[float]:
        ways = machine.cores
        if self.max_parallelism is not None:
            ways = min(ways, self.max_parallelism)
        ways = max(ways, 1)
        return [self.work / ways] * ways


@dataclass(frozen=True)
class WorkDecomposition:
    """A program as sequential work plus parallelizable regions.

    This is what each workload module declares (measured from its actual
    operation counts) and what Table VI's sequential-fraction analysis
    consumes.
    """

    sequential_work: float
    regions: tuple[ParallelRegion, ...] = ()
    name: str = ""

    @property
    def parallel_work(self) -> float:
        return sum(r.work for r in self.regions)

    @property
    def total_work(self) -> float:
        return self.sequential_work + self.parallel_work

    @property
    def sequential_fraction(self) -> float:
        """Table VI's metric: share of runtime that must stay sequential."""
        total = self.total_work
        if total <= 0:
            return 1.0
        return self.sequential_work / total

    def sequential_time(self) -> float:
        return self.total_work

    def parallel_time(self, machine: SimulatedMachine) -> float:
        time = self.sequential_work
        for region in self.regions:
            time += machine.parallel_time(region.chunks(machine))
        return time

    def speedup(self, machine: SimulatedMachine) -> float:
        """End-to-end program speedup after parallelizing all regions."""
        par = self.parallel_time(machine)
        if par <= 0:
            return 1.0
        return self.sequential_time() / par

    def amdahl_limit(self, cores: int | None = None) -> float:
        """Ideal ceiling ignoring overheads (for reporting)."""
        return amdahl(self.sequential_fraction, cores or 8)
