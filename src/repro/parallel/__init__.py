"""Parallel substrate: simulated multicore machine, real thread
executors, parallel containers, and recommendation transforms."""

from .contention import (
    PAPER_CONTENDED_MACHINE,
    ContendedMachine,
    ContentionConfig,
    speedup_under_contention,
)
from .executor import ParallelExecutor, chunk_ranges, default_workers
from .machine import (
    PAPER_MACHINE,
    MachineConfig,
    ParallelRegion,
    SimulatedMachine,
    WorkDecomposition,
    amdahl,
)
from .parallel_list import ParallelList, ParallelQueue, parallel_sorted
from .transforms import (
    SPEEDUP_SUCCESS_THRESHOLD,
    ExecutedTransform,
    TransformOutcome,
    apply_all,
    apply_recommendation,
    estimate_operations,
    estimate_region,
    execute_transform,
    transform_ways,
)
from .validate import ValidationPoint, measure_point, validate_machine_model

__all__ = [
    "ContendedMachine",
    "ContentionConfig",
    "MachineConfig",
    "PAPER_CONTENDED_MACHINE",
    "PAPER_MACHINE",
    "speedup_under_contention",
    "ParallelExecutor",
    "ParallelList",
    "ParallelQueue",
    "ParallelRegion",
    "SPEEDUP_SUCCESS_THRESHOLD",
    "ExecutedTransform",
    "SimulatedMachine",
    "TransformOutcome",
    "ValidationPoint",
    "measure_point",
    "validate_machine_model",
    "WorkDecomposition",
    "amdahl",
    "apply_all",
    "apply_recommendation",
    "chunk_ranges",
    "default_workers",
    "estimate_operations",
    "estimate_region",
    "execute_transform",
    "parallel_sorted",
    "transform_ways",
]
