"""Validating the machine model against real concurrency.

The evaluation speedups come from :class:`SimulatedMachine` because the
host has one CPU core.  One class of work *does* genuinely overlap on a
single core: blocking waits (I/O, sleeps) release the GIL, so a thread
pool achieves real wall-clock speedup on wait-bound tasks.  This module
runs such a workload both ways — measured with real threads, predicted
by the machine model — giving an end-to-end calibration check that the
model's *shape* (near-linear scaling until task count < workers, sharp
overhead penalty for tiny tasks) matches reality where reality is
observable.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from .machine import MachineConfig, SimulatedMachine


@dataclass(frozen=True, slots=True)
class ValidationPoint:
    """One (task count, task duration) measurement."""

    tasks: int
    task_seconds: float
    workers: int
    measured_sequential: float
    measured_parallel: float
    predicted_speedup: float

    @property
    def measured_speedup(self) -> float:
        if self.measured_parallel <= 0:
            return 1.0
        return self.measured_sequential / self.measured_parallel

    @property
    def relative_error(self) -> float:
        """|measured − predicted| / measured."""
        measured = self.measured_speedup
        if measured <= 0:
            return float("inf")
        return abs(measured - self.predicted_speedup) / measured


def _wait_task(seconds: float) -> None:
    time.sleep(seconds)


def measure_point(
    tasks: int,
    task_seconds: float,
    workers: int,
    spawn_overhead_seconds: float = 0.0005,
) -> ValidationPoint:
    """Run ``tasks`` wait-bound tasks sequentially and pooled, and
    predict the pooled time with a machine model whose cost unit is one
    second and whose overheads reflect thread-pool reality."""
    start = time.perf_counter()
    for _ in range(tasks):
        _wait_task(task_seconds)
    sequential = time.perf_counter() - start

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_wait_task, task_seconds) for _ in range(tasks)]
        for future in futures:
            future.result()
    parallel = time.perf_counter() - start

    machine = SimulatedMachine(
        MachineConfig(
            cores=workers,
            task_overhead=spawn_overhead_seconds,
            fork_join_overhead=spawn_overhead_seconds * workers,
        )
    )
    predicted = machine.region_speedup([task_seconds] * tasks)

    return ValidationPoint(
        tasks=tasks,
        task_seconds=task_seconds,
        workers=workers,
        measured_sequential=sequential,
        measured_parallel=parallel,
        predicted_speedup=predicted,
    )


def validate_machine_model(
    workers: int = 4,
    task_seconds: float = 0.01,
    task_counts: tuple[int, ...] = (1, 4, 8, 16),
) -> list[ValidationPoint]:
    """Calibration sweep: the model should track measured speedups of a
    wait-bound workload within tens of percent, and reproduce the shape
    (speedup grows with task count, saturates at ``workers``)."""
    return [
        measure_point(n, task_seconds, workers) for n in task_counts
    ]
