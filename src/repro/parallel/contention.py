"""Memory-bandwidth contention extension of the machine model.

The plain :class:`~repro.parallel.machine.SimulatedMachine` assumes
cores never contend, so large data-parallel regions approach their
Amdahl limits — which is why our simulated GPdotNET/Mandelbrot speedups
(≈5–8×) overshoot the paper's measured ≈3× on a real 8-core AMD FX
(one shared memory interface, two cores per module on that chip).

:class:`ContendedMachine` adds a single parameter: each task's work is
split into a compute fraction (scales freely) and a memory fraction
(serialized onto a shared-bandwidth budget of ``memory_lanes``
concurrent streams).  The effective parallel time of a region becomes::

    compute_part / cores  +  memory_part / min(cores, memory_lanes)

plus the usual overheads.  With ``memory_intensity≈0.45`` and
``memory_lanes=2`` the evaluation workloads land in the paper's 2–3×
regime (see ``benchmarks/test_ablation.py`` / EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from .machine import MachineConfig, SimulatedMachine, WorkDecomposition


@dataclass(frozen=True, slots=True)
class ContentionConfig:
    """Bandwidth-contention parameters on top of a machine config.

    Attributes
    ----------
    memory_intensity:
        Fraction of every task's work that is memory-bound (0 = pure
        compute, 1 = pure streaming).  Container-operation-heavy
        workloads — exactly what DSspy profiles — sit near 0.4–0.6.
    memory_lanes:
        How many memory streams the socket sustains concurrently; 2
        approximates the paper's AMD FX 8120 (shared FPU/memory per
        module).
    """

    machine: MachineConfig = MachineConfig()
    memory_intensity: float = 0.45
    memory_lanes: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.memory_intensity <= 1.0:
            raise ValueError("memory_intensity must be in [0, 1]")
        if self.memory_lanes < 1:
            raise ValueError("memory_lanes must be >= 1")


class ContendedMachine(SimulatedMachine):
    """Simulated machine with a shared memory-bandwidth ceiling."""

    def __init__(self, config: ContentionConfig | None = None) -> None:
        self.contention = config if config is not None else ContentionConfig()
        super().__init__(self.contention.machine)

    def parallel_time(self, costs) -> float:
        """Cores execute their full task costs; additionally the
        memory-bound share of the region's total work must stream
        through at most ``memory_lanes`` concurrent channels, so the
        region cannot finish faster than that shared pipe allows."""
        if not costs:
            return 0.0
        cfg = self.config
        overheaded = [c + cfg.task_overhead for c in costs]
        compute_span = self.makespan(overheaded)
        memory_work = sum(costs) * self.contention.memory_intensity
        memory_span = memory_work / min(self.cores, self.contention.memory_lanes)
        return cfg.fork_join_overhead + max(compute_span, memory_span)

    def effective_parallelism(self, region_work: float) -> float:
        """Asymptotic speedup of an infinitely divisible region."""
        if region_work <= 0:
            return 1.0
        return region_work / max(
            self.parallel_time(self.chunk_work(region_work))
            - self.config.fork_join_overhead,
            1e-12,
        )


#: Contention model tuned to the paper's test system: with it, the
#: evaluation workloads' total speedups land in the published 1.2–3.0
#: band (see the contention ablation bench).
PAPER_CONTENDED_MACHINE = ContendedMachine(
    ContentionConfig(
        machine=MachineConfig(cores=8),
        memory_intensity=0.45,
        memory_lanes=2,
    )
)


def speedup_under_contention(
    decomposition: WorkDecomposition,
    machine: ContendedMachine = PAPER_CONTENDED_MACHINE,
) -> float:
    """End-to-end speedup of a decomposition on the contended machine."""
    return decomposition.speedup(machine)
