"""Real thread-based parallel execution helpers.

These implement the recommended actions *for real*: chunked parallel
search, parallel map/fill, parallel for.  On CPython the GIL limits
wall-clock gains for pure-Python bodies, so correctness (identical
results to the sequential operation) is asserted here and the
speedup *numbers* for the evaluation tables come from the simulated
machine (see DESIGN.md §2).  The chunking logic is shared: the
simulated results describe exactly the schedules these executors run.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Any, Callable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """Worker count: core count, min 2 so overlap paths are exercised
    even on single-core hosts."""
    return max(os.cpu_count() or 1, 2)


def chunk_ranges(n: int, chunks: int) -> list[range]:
    """Split ``range(n)`` into ≤``chunks`` contiguous, balanced ranges."""
    if n <= 0:
        return []
    chunks = max(min(chunks, n), 1)
    base, extra = divmod(n, chunks)
    out: list[range] = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        out.append(range(start, start + size))
        start += size
    return out


class ParallelExecutor:
    """Thread-pool wrapper with chunked data-parallel primitives."""

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    # -- map/fill -------------------------------------------------------

    def parallel_map(
        self, fn: Callable[[T], R], items: Sequence[T]
    ) -> list[R]:
        """Order-preserving map over chunks."""
        if not items:
            return []
        results: list[Any] = [None] * len(items)

        def run_chunk(indices: range) -> None:
            for i in indices:
                results[i] = fn(items[i])

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                pool.submit(run_chunk, r)
                for r in chunk_ranges(len(items), self.workers)
            ]
            for future in futures:
                future.result()
        return results

    def parallel_fill(self, fn: Callable[[int], R], n: int) -> list[R]:
        """Build ``[fn(0), ..., fn(n-1)]`` in parallel — the transform
        recommended for Long-Insert initialization phases."""
        results: list[Any] = [None] * n

        def run_chunk(indices: range) -> None:
            for i in indices:
                results[i] = fn(i)

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                pool.submit(run_chunk, r) for r in chunk_ranges(n, self.workers)
            ]
            for future in futures:
                future.result()
        return results

    def parallel_for(self, body: Callable[[int], None], n: int) -> None:
        """Parallel index loop with no result collection."""

        def run_chunk(indices: range) -> None:
            for i in indices:
                body(i)

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                pool.submit(run_chunk, r) for r in chunk_ranges(n, self.workers)
            ]
            for future in futures:
                future.result()

    # -- search ------------------------------------------------------------

    def parallel_search(
        self, items: Sequence[T], predicate: Callable[[T], bool]
    ) -> int | None:
        """Lowest index whose element satisfies ``predicate``.

        The list is split into chunks searched concurrently; the chunked
        minimum matches the sequential ``index()`` semantics.  Chunks
        after an already-found lower hit are cancelled cooperatively.
        """
        if not items:
            return None
        best: list[int | None] = [None]

        def search_chunk(indices: range) -> int | None:
            for i in indices:
                found = best[0]
                if found is not None and found < indices.start:
                    return None  # a lower chunk already won
                if predicate(items[i]):
                    current = best[0]
                    if current is None or i < current:
                        best[0] = i
                    return i
            return None

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                pool.submit(search_chunk, r)
                for r in chunk_ranges(len(items), self.workers)
            ]
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
        hits = [f.result() for f in futures if f.result() is not None]
        return min(hits) if hits else None

    def parallel_index(self, items: Sequence[T], value: T) -> int:
        """Parallel equivalent of ``list.index`` (raises ``ValueError``)."""
        hit = self.parallel_search(items, lambda x: x == value)
        if hit is None:
            raise ValueError(f"{value!r} is not in list")
        return hit

    def parallel_any(
        self, items: Sequence[T], predicate: Callable[[T], bool]
    ) -> bool:
        return self.parallel_search(items, predicate) is not None

    # -- reduce ---------------------------------------------------------------

    def parallel_reduce(
        self,
        items: Sequence[T],
        fold: Callable[[R, T], R],
        combine: Callable[[R, R], R],
        initial: R,
    ) -> R:
        """Chunked fold + combine (e.g. parallel max-priority scan)."""
        if not items:
            return initial

        def fold_chunk(indices: range) -> R:
            acc = initial
            for i in indices:
                acc = fold(acc, items[i])
            return acc

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            partials = [
                pool.submit(fold_chunk, r)
                for r in chunk_ranges(len(items), self.workers)
            ]
            result = initial
            for future in partials:
                result = combine(result, future.result())
        return result
