"""repro — a reproduction of DSspy (IPDPS 2014).

"Locating Parallelization Potential in Object-Oriented Data Structures"
(Molitorisz, Karcher, Bieleš, Tichy).  The package profiles the runtime
behaviour of object-oriented data structures, detects recurring access
patterns, derives use cases with parallel potential, and recommends how
to parallelize them.

Quickstart::

    from repro import collecting, TrackedList, UseCaseEngine

    with collecting() as session:
        xs = TrackedList(label="items")
        for i in range(500):
            xs.append(i)
        for _ in range(20):
            _ = [x for x in xs]

    report = UseCaseEngine().analyze_collector(session)
    for uc in report.use_cases:
        print(uc.describe())
        print("  ->", uc.recommendation.action)

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.events` — access events, runtime profiles, collectors
- :mod:`repro.structures` — instrumented (proxy) containers
- :mod:`repro.instrument` — static analysis + AST instrumentation
- :mod:`repro.patterns` — access-pattern detection
- :mod:`repro.usecases` — use-case rules and recommendations
- :mod:`repro.viz` — runtime-profile visualization (ASCII/SVG)
- :mod:`repro.parallel` — parallel executors + simulated multicore machine
- :mod:`repro.workloads` — the paper's benchmark programs, reimplemented
- :mod:`repro.study` — the empirical study (Tables I–III, Figure 1)
- :mod:`repro.eval` — the evaluation harness (Tables IV–VI)
"""

from .events import (
    AccessEvent,
    AccessKind,
    AllocationSite,
    EventCollector,
    OperationKind,
    RuntimeProfile,
    StructureKind,
    collecting,
    read_profiles,
    save_collector,
    save_profiles,
)
from .instrument import (
    analyze_function,
    instrument_imports,
    instrumented,
    run_instrumented,
)
from .patterns import (
    AccessPattern,
    PatternAnalysis,
    PatternDetector,
    PatternType,
    RegularityClassifier,
    compare_profiles,
    compare_reports,
    compute_stats,
    detect,
)
from .structures import (
    TrackedArray,
    TrackedDict,
    TrackedLinkedList,
    TrackedList,
    TrackedQueue,
    TrackedSet,
    TrackedSortedList,
    TrackedStack,
    as_tracked,
)
from .usecases import (
    PAPER_THRESHOLDS,
    Thresholds,
    UseCase,
    UseCaseEngine,
    UseCaseKind,
    UseCaseReport,
    explain_profile,
    format_table_v,
    near_misses,
    report_to_json,
)

__version__ = "1.0.0"

__all__ = [
    "AccessEvent",
    "AccessKind",
    "AccessPattern",
    "AllocationSite",
    "EventCollector",
    "OperationKind",
    "PAPER_THRESHOLDS",
    "PatternAnalysis",
    "PatternDetector",
    "PatternType",
    "RegularityClassifier",
    "RuntimeProfile",
    "StructureKind",
    "Thresholds",
    "TrackedArray",
    "TrackedDict",
    "TrackedLinkedList",
    "TrackedList",
    "TrackedQueue",
    "TrackedSet",
    "TrackedSortedList",
    "TrackedStack",
    "UseCase",
    "UseCaseEngine",
    "UseCaseKind",
    "UseCaseReport",
    "analyze_function",
    "as_tracked",
    "collecting",
    "compare_profiles",
    "compare_reports",
    "compute_stats",
    "detect",
    "explain_profile",
    "format_table_v",
    "instrument_imports",
    "instrumented",
    "near_misses",
    "read_profiles",
    "report_to_json",
    "run_instrumented",
    "save_collector",
    "save_profiles",
    "__version__",
]
