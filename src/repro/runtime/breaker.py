"""Circuit breaker and watchdog for the instrumentation runtime.

The firewall (:mod:`~repro.runtime.guard`) contains individual profiler
faults; the :class:`CircuitBreaker` decides when enough have happened
that instrumentation should stop trying altogether.  Its policy is an
*error budget*: every contained fault spends one unit, and when the
budget is exhausted the breaker trips to ``open`` — tracked structures
degrade to near-zero-overhead plain delegates (the guard's pass-through
cell) and stay that way.  With a ``cooldown`` configured the breaker
supports a *half-open* re-probe: after the cooldown elapses, traffic is
let through again; one more fault during probation re-trips (with a
doubled cooldown), while a quiet probation closes the breaker and
restores the full budget.

The :class:`Watchdog` covers the failure modes that never raise: a
stalled channel drainer or a daemon that stopped answering heartbeats
hangs silently instead of throwing.  A background thread evaluates
registered health probes and trips the breaker on the guard's behalf
when one reports a stall; the same thread drives the time-based
half-open transitions, keeping every clock read off the recording hot
path.

All timing goes through a :class:`~repro.testing.clock.Clock`, so tests
walk trip → re-probe → close schedules on a ``SimClock`` without
sleeping.
"""

from __future__ import annotations

import threading
from typing import Callable

from ..testing.clock import SYSTEM_CLOCK, Clock


class CircuitBreaker:
    """Error-budget breaker: ``closed`` → ``open`` → (``half-open``).

    Parameters
    ----------
    budget:
        Faults tolerated before tripping.  The *n*-th fault trips.
    cooldown:
        Seconds the breaker stays ``open`` before a half-open re-probe
        is allowed.  ``None`` (the default) disables re-probing: once
        tripped, instrumentation stays off for the rest of the run —
        the conservative production posture.  Each failed re-probe
        doubles the effective cooldown (capped at 8x).
    probation:
        Seconds the half-open state must stay fault-free before the
        breaker closes again.
    clock:
        Time source for cooldown/probation arithmetic.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        budget: int = 25,
        cooldown: float | None = None,
        probation: float = 1.0,
        clock: Clock | None = None,
    ) -> None:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.budget = budget
        self.cooldown = cooldown
        self.probation = probation
        self._clock = clock if clock is not None else SYSTEM_CLOCK
        self._lock = threading.Lock()
        self.state = self.CLOSED
        self.faults = 0
        self.trips = 0
        self.reprobes = 0
        self.trip_reason: str | None = None
        self._tripped_at: float | None = None
        self._reprobed_at: float | None = None

    # -- fault accounting -----------------------------------------------

    def record_fault(self, category: str = "") -> bool:
        """Spend one unit of budget; returns True when this fault
        tripped the breaker (caller applies the pass-through side
        effects exactly once)."""
        with self._lock:
            if self.state == self.OPEN:
                return False
            if self.state == self.HALF_OPEN:
                # The re-probe failed: straight back to open.
                self._trip(f"re-probe failed ({category or 'fault'})")
                return True
            self.faults += 1
            if self.faults >= self.budget:
                self._trip(
                    f"error budget exhausted "
                    f"({self.faults}/{self.budget} faults, last: {category or 'fault'})"
                )
                return True
            return False

    def trip(self, reason: str) -> bool:
        """Force the breaker open (watchdog-detected stalls); returns
        False if it was already open."""
        with self._lock:
            if self.state == self.OPEN:
                return False
            self._trip(reason)
            return True

    def _trip(self, reason: str) -> None:
        self.state = self.OPEN
        self.trips += 1
        self.trip_reason = reason
        self._tripped_at = self._clock.monotonic()
        self._reprobed_at = None

    # -- time-based transitions ------------------------------------------

    def poll(self) -> str | None:
        """Advance cooldown/probation state; called off the hot path
        (watchdog tick).  Returns ``"half-open"`` when a re-probe just
        began, ``"closed"`` when probation completed, else ``None``."""
        with self._lock:
            now = self._clock.monotonic()
            if (
                self.state == self.OPEN
                and self.cooldown is not None
                and self._tripped_at is not None
            ):
                backoff = self.cooldown * min(2 ** max(self.trips - 1, 0), 8)
                if now - self._tripped_at >= backoff:
                    self.state = self.HALF_OPEN
                    self.reprobes += 1
                    self._reprobed_at = now
                    return "half-open"
            elif self.state == self.HALF_OPEN and self._reprobed_at is not None:
                if now - self._reprobed_at >= self.probation:
                    self.state = self.CLOSED
                    self.faults = 0
                    self.trip_reason = None
                    self._tripped_at = None
                    self._reprobed_at = None
                    return "closed"
        return None

    @property
    def tripped(self) -> bool:
        return self.state == self.OPEN


# -- health probes ----------------------------------------------------------


def channel_stall_probe(channel) -> Callable[[], bool]:
    """Healthy while the channel's drainer thread is alive and has not
    recorded an internal error.  Duck-typed: works for any channel with
    a ``_drainer`` thread (BatchingChannel, RemoteChannel); channels
    without one are always healthy."""

    def probe() -> bool:
        if getattr(channel, "_closed", False):
            return True  # a drained channel is done, not stalled
        if getattr(channel, "drainer_error", None) is not None:
            return False
        drainer = getattr(channel, "_drainer", None)
        if drainer is not None and not drainer.is_alive():
            return False
        return True

    return probe


def heartbeat_probe(
    channel, max_down: float = 10.0, clock: Clock | None = None
) -> Callable[[], bool]:
    """Healthy while the remote link has been down for less than
    ``max_down`` seconds.  Reads :class:`~repro.service.client.
    RemoteChannel`'s failure bookkeeping; a channel that gave up (its
    own give-up deadline fired) is reported stalled immediately."""
    clock = clock if clock is not None else SYSTEM_CLOCK

    def probe() -> bool:
        if getattr(channel, "gave_up", False):
            return False
        down_since = getattr(channel, "_down_since", None)
        if down_since is not None and clock.monotonic() - down_since > max_down:
            return False
        return True

    return probe


class Watchdog:
    """Background health monitor driving stall detection and re-probes.

    One daemon thread wakes every ``interval`` seconds, advances the
    guard's breaker through its time-based transitions
    (:meth:`CircuitBreaker.poll`), and evaluates every registered
    probe.  A probe returning ``False`` trips the guard (stalls do not
    raise, so the firewall cannot see them); a probe *raising* is
    itself a profiler-internal fault and is contained and counted like
    any other.  The whole tick runs under the guard's re-entrancy flag,
    so a probe touching tracked structures records nothing.
    """

    def __init__(self, guard, interval: float = 0.25) -> None:
        self.guard = guard
        self.interval = interval
        self._probes: list[tuple[str, Callable[[], bool]]] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def add_probe(self, name: str, probe: Callable[[], bool]) -> None:
        with self._lock:
            self._probes.append((name, probe))

    def start(self) -> "Watchdog":
        if self._thread is None or not self._thread.is_alive():
            self._stop = threading.Event()
            self._thread = threading.Thread(
                target=self._run, name="dsspy-guard-watchdog", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def tick(self) -> None:
        """One evaluation cycle (exposed for deterministic tests)."""
        guard = self.guard
        tls = guard._tls
        outer = tls.inside
        tls.inside = True
        try:
            guard.poll()
            with self._lock:
                probes = list(self._probes)
            for name, probe in probes:
                try:
                    healthy = probe()
                except Exception as exc:
                    guard._note_fault("watchdog", exc)
                    continue
                if healthy is False and not guard.tripped:
                    guard.trip(f"watchdog: {name} stalled")
        finally:
            tls.inside = outer

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.tick()

    def __enter__(self) -> "Watchdog":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
