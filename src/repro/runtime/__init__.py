"""Fail-open instrumentation runtime: containment between profiler and host.

DSspy's contract is that profiling is an *observer* — the instrumented
program must behave identically even when the profiler itself
misbehaves.  This subsystem enforces that contract at the host-process
boundary with four cooperating pieces:

:mod:`~repro.runtime.guard`
    The exception firewall (:class:`RuntimeGuard`): contains and counts
    profiler-internal exceptions by category, suppresses re-entrant
    recording via a thread-local in-profiler flag, and exposes a
    :class:`GuardReport`.

:mod:`~repro.runtime.breaker`
    The :class:`CircuitBreaker` (error budget, optional half-open
    re-probe) and the :class:`Watchdog` with its stall probes — the
    machinery that flips instrumentation to near-zero-overhead
    pass-through mode when the fault budget is spent or a transport
    stalls silently.

:mod:`~repro.runtime.lifecycle`
    Fork safety (``os.register_at_fork`` child handlers: fresh locks
    and buffers, never a byte on an inherited socket) and the bounded
    ``atexit`` drain (:func:`finish_with_deadline`).

Arming is explicit: with no guard armed, behaviour is byte-identical to
the fail-loud seed.  ``dsspy analyze`` arms one by default
(``--guard-budget``); library embedders call :func:`install` once.
"""

from .breaker import CircuitBreaker, Watchdog, channel_stall_probe, heartbeat_probe
from .guard import (
    FAULT_CATEGORIES,
    GuardReport,
    RuntimeGuard,
    active_guard,
    arm,
    disarm,
    firewall,
)
from .lifecycle import (
    disable_fork_safety,
    finish_with_deadline,
    install,
    install_exit_drain,
    install_fork_safety,
)

__all__ = [
    "FAULT_CATEGORIES",
    "CircuitBreaker",
    "GuardReport",
    "RuntimeGuard",
    "Watchdog",
    "active_guard",
    "arm",
    "channel_stall_probe",
    "disarm",
    "disable_fork_safety",
    "finish_with_deadline",
    "firewall",
    "heartbeat_probe",
    "install",
    "install_exit_drain",
    "install_fork_safety",
]
