"""Host-process lifecycle safety: fork handlers and bounded exit drain.

Two lifecycle events can make an otherwise healthy profiler hurt its
host.  A ``fork()`` while a recording thread holds a buffer lock leaves
the child with a poisoned lock and — worse — a *shared* daemon socket:
any byte the child writes interleaves with the parent's length-prefixed
frames and corrupts the stream for both.  And at interpreter exit, a
terminal drain that waits on a dead daemon (or a wedged drainer) hangs
shutdown indefinitely.

:func:`install_fork_safety` registers an ``os.register_at_fork``
*after-in-child* handler that walks every live collector and tells its
channel to reinitialize: fresh locks/buffers/thread-locals, drainer and
heartbeat threads restarted (threads do not survive a fork), and the
inherited socket file descriptor closed **without writing a single
byte** — closing the child's fd copy sends nothing on the wire because
the parent still holds its own.  The ``fork_policy`` picks what happens
next in the child:

``"disable"`` (default)
    The child keeps recording locally but never ships: safest for
    ``fork()+exec()`` and worker-pool patterns where the child's events
    are not wanted.

``"resession"``
    The child opens a *fresh* daemon session on its next harvest
    (re-sending instance registrations), so both sides of the fork are
    profiled as distinct sessions.

:func:`install_exit_drain` registers one ``atexit`` hook that finishes
every live collector through :func:`finish_with_deadline`: the drain
runs on a daemon worker thread and is joined with a deadline, so
pending events flush on a normal exit but a dead daemon can never hang
host shutdown — on timeout the guard trips and the interpreter exits
anyway.

:func:`install` is the one-call production posture: arm a firewall,
install both handlers.
"""

from __future__ import annotations

import atexit
import os
import threading

from .guard import RuntimeGuard, active_guard, arm

#: One-slot policy cell read by the (permanently registered) fork
#: handler; ``None`` makes the handler inert.
_FORK_POLICY: list = [None]
_fork_handler_registered = False

_exit_handler_registered = False
_install_lock = threading.Lock()


def install(
    guard: RuntimeGuard | None = None,
    *,
    budget: int = 25,
    fork_policy: str = "disable",
    exit_deadline: float = 5.0,
) -> RuntimeGuard:
    """Arm a firewall and install fork + exit safety in one call.

    Returns the armed guard.  ``dsspy analyze --guard-budget`` goes
    through this; library embedders call it once at startup::

        from repro.runtime import install
        guard = install(budget=25, fork_policy="resession")
    """
    if guard is None:
        guard = RuntimeGuard(budget=budget, exit_deadline=exit_deadline)
    arm(guard)
    install_fork_safety(fork_policy)
    install_exit_drain()
    return guard


# -- fork safety ------------------------------------------------------------


def install_fork_safety(policy: str = "disable") -> None:
    """Register the after-fork-in-child handler (idempotent).

    ``os.register_at_fork`` offers no unregister, so the handler is
    registered exactly once per process and consults the policy cell on
    every fork; :func:`disable_fork_safety` empties the cell to make it
    inert again."""
    global _fork_handler_registered
    if policy not in ("disable", "resession"):
        raise ValueError(
            f"fork_policy must be 'disable' or 'resession', got {policy!r}"
        )
    with _install_lock:
        _FORK_POLICY[0] = policy
        if not _fork_handler_registered:
            os.register_at_fork(after_in_child=_after_fork_child)
            _fork_handler_registered = True


def disable_fork_safety() -> None:
    """Make the fork handler inert (test isolation helper)."""
    _FORK_POLICY[0] = None


def _after_fork_child() -> None:
    """Runs in the child immediately after ``fork()``.

    Everything here must assume arbitrary lock state was frozen at the
    fork point; handlers replace synchronization primitives rather than
    acquiring them.  Failures are contained by the guard (category
    ``fork``) — a broken reinit degrades the child to pass-through, it
    never breaks the child's own work."""
    policy = _FORK_POLICY[0]
    if policy is None:
        return
    guard = active_guard()
    if guard is not None:
        # The re-entrancy flag may have been frozen True at fork time.
        guard._tls = type(guard._tls)()
        guard._lock = threading.Lock()
    try:
        from ..events.collector import iter_collectors

        for collector in iter_collectors():
            try:
                collector._after_fork_child(policy)
            except Exception as exc:
                if guard is not None:
                    guard.fault("fork", exc)
    except Exception as exc:
        if guard is not None:
            guard.fault("fork", exc)


# -- bounded exit drain ------------------------------------------------------


def finish_with_deadline(
    collector,
    guard: RuntimeGuard | None = None,
    deadline: float | None = None,
) -> bool:
    """Finish ``collector`` on a worker thread, bounded by ``deadline``.

    Returns True when the drain completed in time.  On timeout the
    worker is abandoned (it is a daemon thread; a wedged drain cannot
    outlive the interpreter) and the guard trips so nothing else waits
    on the same dead transport.  Exceptions from the drain are contained
    as category ``drain`` when a guard is present, re-raised otherwise
    (seed fail-loud behaviour)."""
    if guard is None:
        guard = active_guard()
    if deadline is None:
        deadline = guard.exit_deadline if guard is not None else 5.0
    box: list = [None]

    def _work() -> None:
        try:
            collector.finish()
        except BaseException as exc:  # noqa: BLE001 - boxed, re-raised below
            box[0] = exc

    worker = threading.Thread(
        target=_work, name="dsspy-exit-drain", daemon=True
    )
    worker.start()
    worker.join(deadline)
    if worker.is_alive():
        if guard is not None:
            guard.trip(
                f"exit drain exceeded its {deadline:.1f}s deadline "
                f"(transport wedged or daemon unreachable)"
            )
        return False
    exc = box[0]
    if exc is not None:
        if guard is not None:
            guard.fault("drain", exc)
            return False
        raise exc
    return True


def install_exit_drain() -> None:
    """Register the bounded atexit drain (idempotent)."""
    global _exit_handler_registered
    with _install_lock:
        if not _exit_handler_registered:
            atexit.register(_exit_drain)
            _exit_handler_registered = True


def _exit_drain() -> None:
    """Atexit hook: bounded-finish every live collector.

    Each collector gets its own deadline slice; an already-finished
    collector is a no-op (``finish`` is idempotent)."""
    guard = active_guard()
    try:
        from ..events.collector import iter_collectors

        for collector in iter_collectors():
            if collector.finished:
                continue
            finish_with_deadline(collector, guard=guard)
    except Exception as exc:
        if guard is not None:
            guard.fault("drain", exc)
