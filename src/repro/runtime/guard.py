"""Exception firewall for the instrumentation hot path.

DSspy's contract is that profiling is an *observer*: the instrumented
program must behave identically even when the profiler itself
misbehaves.  The :class:`RuntimeGuard` enforces that contract at the
host-process boundary.  When a guard is *armed* (via :func:`arm`, the
:func:`firewall` context manager, or ``dsspy analyze --guard-budget``),
every recording hook — ``TrackedBase._record``, ``register_instance``,
channel ``post``/``flush``, remote sends, the exit drain — runs under
it:

* profiler-internal exceptions are swallowed and counted by category
  instead of propagating into user code;
* a thread-local *in-profiler* flag suppresses re-entrant recording, so
  profiler internals that touch tracked structures cannot recurse or
  deadlock;
* a :class:`~repro.runtime.breaker.CircuitBreaker` spends one unit of
  error budget per fault and trips to **pass-through mode** when it is
  exhausted: the guard's blocked cell flips, tracked structures degrade
  to near-zero-overhead plain delegates, and watched channels fail
  open so no producer can block on a dead drainer.

Arming is explicit and scoped.  With no guard armed the seed behaviour
is byte-identical: profiler exceptions propagate loudly, which is what
the test-bench and library-embedding modes want (a silently broken
profiler is worse than a loud one there).  The firewall is a production
posture you opt into.

Hot-path cost discipline: the ambient guard lives in a one-slot list
cell (``ACTIVE_GUARD[0]`` is a single C subscript, the same trick as
``BatchingChannel``'s ``_open`` gate), the blocked flag is another
cell, and the re-entrancy flag is a ``threading.local`` subclass with a
class-level default so unarmed and healthy-armed paths never take a
lock or raise.  The added cost is gated by the ``guard_vs_plain``
metric in ``benchmarks/overhead.py``.
"""

from __future__ import annotations

import threading
import traceback
import weakref
from collections import Counter, deque
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..testing.clock import Clock
from .breaker import CircuitBreaker

#: Fault categories the firewall distinguishes (GuardReport keys).
FAULT_CATEGORIES = (
    "record",  # TrackedBase._record -> EventCollector.record
    "register",  # instance registration at construction
    "site",  # allocation-site frame walk
    "post",  # channel post/producer
    "flush",  # channel flush/drain paths
    "send",  # remote wire writes
    "drain",  # terminal drain / exit drain
    "fork",  # after-fork reinitialization
    "stall",  # watchdog-detected stalls
    "watchdog",  # a health probe itself raised
    "internal",  # fault handling machinery failed
)

#: One-slot cell holding the armed guard (or None).  Read on every
#: recorded operation — keep it a plain list subscript.
ACTIVE_GUARD: list = [None]

_guard_stack: list = []
_stack_lock = threading.Lock()


class _GuardLocal(threading.local):
    """Re-entrancy flag with a class-level default: reading
    ``tls.inside`` on a fresh thread costs one attribute lookup and no
    ``__init__`` call."""

    inside = False


@dataclass
class GuardReport:
    """Point-in-time snapshot of the firewall's health, surfaced via
    collector stats and ``dsspy analyze``."""

    state: str
    budget: int
    faults: int
    by_category: dict = field(default_factory=dict)
    recent: list = field(default_factory=list)
    trip_reason: str | None = None
    trips: int = 0
    reprobes: int = 0

    @property
    def tripped(self) -> bool:
        return self.state == CircuitBreaker.OPEN

    def describe(self) -> str:
        """Human-oriented one-paragraph rendering for the CLI."""
        lines = [
            f"guard: {self.state} "
            f"({self.faults}/{self.budget} fault budget spent, "
            f"{self.trips} trip(s), {self.reprobes} re-probe(s))"
        ]
        if self.trip_reason:
            lines.append(f"  tripped: {self.trip_reason}")
        for category, count in sorted(self.by_category.items()):
            lines.append(f"  {category}: {count} contained fault(s)")
        for category, text in self.recent:
            first = text.strip().splitlines()[-1] if text.strip() else text
            lines.append(f"  last {category}: {first}")
        return "\n".join(lines)


class RuntimeGuard:
    """Containment boundary between the profiler and the host program.

    Parameters
    ----------
    budget:
        Contained faults tolerated before the breaker trips to
        pass-through mode.
    cooldown / probation:
        Optional half-open re-probe schedule (see
        :class:`~repro.runtime.breaker.CircuitBreaker`).  The default
        ``cooldown=None`` means a trip is final for the run.
    exit_deadline:
        Seconds the bounded exit drain may spend flushing pending
        events before giving up (see
        :func:`~repro.runtime.lifecycle.finish_with_deadline`).
    clock:
        Injectable time source for deterministic tests.
    """

    def __init__(
        self,
        budget: int = 25,
        cooldown: float | None = None,
        probation: float = 1.0,
        exit_deadline: float = 5.0,
        clock: Clock | None = None,
    ) -> None:
        self.exit_deadline = exit_deadline
        self._breaker = CircuitBreaker(
            budget=budget, cooldown=cooldown, probation=probation, clock=clock
        )
        #: One-slot pass-through cell: True once the breaker has
        #: tripped.  Hot path reads ``guard._blocked[0]`` only.
        self._blocked: list = [False]
        self._tls = _GuardLocal()
        self._lock = threading.Lock()
        self._by_category: Counter = Counter()
        self._recent: deque = deque(maxlen=8)
        self._channels: list = []  # weakrefs to watched channels

    # -- hot-path state ---------------------------------------------------

    @property
    def tripped(self) -> bool:
        return self._blocked[0]

    @property
    def budget(self) -> int:
        return self._breaker.budget

    @property
    def faults(self) -> int:
        return self._breaker.faults

    # -- fault intake -----------------------------------------------------

    def fault(self, category: str, exc: BaseException) -> None:
        """Record one contained profiler fault.  Never raises: this is
        the last line of defence between the profiler and user code."""
        try:
            self._note_fault(category, exc)
        except Exception:
            # The fault machinery itself failed; force pass-through so
            # nothing else can go wrong.
            self._blocked[0] = True

    def _note_fault(self, category: str, exc: BaseException) -> None:
        with self._lock:
            self._by_category[category] += 1
            try:
                text = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
            except Exception:
                text = repr(exc)
            self._recent.append((category, text))
        if self._breaker.record_fault(category):
            self._apply_trip()

    @contextmanager
    def shield(self, category: str):
        """Run a profiler-internal block under the firewall: exceptions
        are contained and counted, re-entrant recording is suppressed
        for the duration."""
        tls = self._tls
        outer = tls.inside
        tls.inside = True
        try:
            yield
        except Exception as exc:
            self.fault(category, exc)
        finally:
            tls.inside = outer

    def trip(self, reason: str) -> None:
        """Force pass-through mode (watchdog stalls, exit-drain
        timeouts)."""
        if self._breaker.trip(reason):
            self._apply_trip()

    def _apply_trip(self) -> None:
        self._blocked[0] = True
        with self._lock:
            channels = [ref() for ref in self._channels]
        for channel in channels:
            if channel is None:
                continue
            fail_open = getattr(channel, "fail_open", None)
            if fail_open is not None:
                try:
                    fail_open()
                except Exception:
                    pass

    def poll(self) -> None:
        """Advance the breaker's time-based transitions (watchdog
        tick): re-open the pass-through cell on half-open/closed."""
        transition = self._breaker.poll()
        if transition in ("half-open", "closed"):
            self._blocked[0] = False

    # -- watched channels -------------------------------------------------

    def watch_channel(self, channel) -> None:
        """Register a channel whose ``fail_open()`` must run when the
        breaker trips (so producers can never block on a dead
        drainer).  Held by weakref when possible, so drained channels
        just drop out; slotted channels without ``__weakref__`` (the
        synchronous one) are held strongly — they have no ``fail_open``
        anyway and the guard's lifetime is one run."""
        try:
            ref = weakref.ref(channel)
        except TypeError:
            def ref(obj=channel):
                return obj
        with self._lock:
            self._channels.append(ref)

    # -- reporting --------------------------------------------------------

    def report(self) -> GuardReport:
        with self._lock:
            by_category = dict(self._by_category)
            recent = list(self._recent)
        return GuardReport(
            state=self._breaker.state,
            budget=self._breaker.budget,
            faults=self._breaker.faults,
            by_category=by_category,
            recent=recent,
            trip_reason=self._breaker.trip_reason,
            trips=self._breaker.trips,
            reprobes=self._breaker.reprobes,
        )

    # -- arming -----------------------------------------------------------

    def __enter__(self) -> "RuntimeGuard":
        arm(self)
        return self

    def __exit__(self, *exc) -> None:
        disarm(self)


def arm(guard: RuntimeGuard) -> RuntimeGuard:
    """Make ``guard`` the ambient firewall.  Nests: re-arming pushes the
    previous guard, :func:`disarm` restores it."""
    with _stack_lock:
        _guard_stack.append(ACTIVE_GUARD[0])
        ACTIVE_GUARD[0] = guard
    return guard


def disarm(guard: RuntimeGuard | None = None) -> None:
    """Pop the ambient firewall (restoring whatever was armed before).

    Passing the guard is optional but asserts you are disarming the one
    you armed."""
    with _stack_lock:
        current = ACTIVE_GUARD[0]
        if guard is not None and current is not guard:
            raise RuntimeError(
                "disarm(): the active guard is not the one being disarmed "
                "(unbalanced arm/disarm nesting)"
            )
        ACTIVE_GUARD[0] = _guard_stack.pop() if _guard_stack else None


def active_guard() -> RuntimeGuard | None:
    """The currently armed firewall, or None (seed fail-loud mode)."""
    return ACTIVE_GUARD[0]


@contextmanager
def firewall(budget: int = 25, **kwargs):
    """``with firewall(budget=10) as guard: ...`` — arm a fresh guard
    for the block."""
    guard = RuntimeGuard(budget=budget, **kwargs)
    arm(guard)
    try:
        yield guard
    finally:
        disarm(guard)
