"""``dsspy`` command-line interface.

Subcommands:

``dsspy analyze FILE``
    Instrument a Python program, execute it, and print the use-case
    report (the paper's fully automatic mode).

``dsspy scan PATH``
    Static analysis only: list container instantiation sites in a file,
    or per-program occurrence statistics for a directory tree.

``dsspy tables [NAME ...]``
    Regenerate the paper's tables (table1, table2, table3, table4,
    table6, table7, fig1) and print them.

``dsspy demo``
    A 5-second end-to-end demonstration on a synthetic profile.

``dsspy serve``
    Run the profiling daemon: many instrumented processes stream
    events to it concurrently (``dsspy analyze --remote``), and it
    analyzes incrementally with bounded memory.

``dsspy sessions ADDRESS``
    Query a running daemon for per-session statistics (events/sec,
    drop counts, flagged use cases) as a table or JSON.

``dsspy recover STATE_DIR``
    Offline recovery: rebuild every unfinished session found in a
    daemon state directory from its write-ahead journal and print (or
    write) the reports — for when the crashed daemon's host is gone
    and no replacement daemon will ever replay the journals.

``dsspy migrate STATE_DIR``
    Bring journals and checkpoints written by an older dsspy build to
    this build's on-disk format, one crash-safe file rewrite at a
    time.  Idempotent; refuses downgrades.

``dsspy fleet upgrade STATE_DIR``
    Ask a running fleet supervisor (``dsspy serve --workers N``) to
    roll its workers onto the current code one at a time: drain,
    checkpoint, migrate the shard state, respawn, resume.

``dsspy selftest``
    Differential self-verification: N seeded trials, each pushing a
    randomized trace through batch analysis, the streaming engine, and
    a live daemon behind a fault-injecting proxy, asserting all three
    agree exactly.  Failing seeds are shrunk to a minimal trace.

``dsspy bench``
    The recording-overhead benchmark (:mod:`repro.bench`): measure
    every transport's per-event cost, emit the machine-readable JSON
    document, and — with ``--check`` — enforce the CI perf-ratchet
    against the checked-in baseline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _rank_with_predictions(report, profiles, cores: int = 8):
    """Annotate every use case with its what-if predicted speedup and
    order the report by expected payoff (ties keep threshold order)."""
    from .parallel.machine import MachineConfig, SimulatedMachine
    from .whatif import annotate_report, rank_report, workspans_from_profiles

    machine = SimulatedMachine(MachineConfig(cores=cores))
    spans = workspans_from_profiles(profiles)
    return rank_report(annotate_report(report, machine, spans))


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .events import make_channel, parse_sampling, read_profiles, save_profiles
    from .instrument import RewriteConfig, run_instrumented_file
    from .usecases import UseCaseEngine, format_summary, format_table_v
    from .viz import render_profile

    if args.load:
        profiles = read_profiles(args.load)
        print(f"{args.load}: {len(profiles)} archived profiles loaded")
        report = _rank_with_predictions(
            UseCaseEngine().analyze(profiles), profiles
        )
        print(format_table_v(report, title=f"DSspy use cases from {args.load}"))
        print(format_summary(report, name=str(args.load)))
        return 0

    if args.spill and args.channel != "batch":
        print("--spill requires --channel batch", file=sys.stderr)
        return 2
    if args.remote and args.spill:
        print("--remote and --spill are mutually exclusive", file=sys.stderr)
        return 2
    try:
        sampling = parse_sampling(args.sample, seed=args.sample_seed)
        if args.remote:
            from .service import RemoteChannel

            try:
                channel = RemoteChannel(
                    args.remote,
                    batch_size=args.batch_size,
                    give_up_after=args.remote_give_up,
                    fallback_spill=args.remote_spill,
                    transport=args.transport,
                )
            except OSError as exc:
                print(
                    f"cannot reach profiling daemon at {args.remote}: {exc}",
                    file=sys.stderr,
                )
                return 2
        else:
            # The encode-at-record fast path rides on the packed batch
            # channel; --record-fastpath off keeps the legacy tuple
            # pipeline (the differential oracle's reference encoder).
            channel_name = args.channel
            if channel_name == "batch" and args.record_fastpath == "auto":
                channel_name = "packed"
            channel = make_channel(
                channel_name, batch_size=args.batch_size, spill=args.spill
            )
    except (ValueError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2

    # Fail-open posture (on by default): profiler-internal faults are
    # contained by a firewall instead of crashing the analyzed program,
    # a watchdog trips the breaker on silent transport stalls, and the
    # terminal drain is bounded.  --guard-budget 0 restores fail-loud.
    guard = None
    watchdog = None
    if args.guard_budget > 0:
        from .runtime import (
            RuntimeGuard,
            Watchdog,
            channel_stall_probe,
            heartbeat_probe,
        )

        guard = RuntimeGuard(
            budget=args.guard_budget, exit_deadline=args.exit_drain_timeout
        )
        guard.watch_channel(channel)
        watchdog = Watchdog(guard)
        watchdog.add_probe("channel", channel_stall_probe(channel))
        if args.remote:
            watchdog.add_probe("daemon heartbeat", heartbeat_probe(channel))
        watchdog.start()
    if args.no_sites:
        from .structures.base import set_site_capture

        set_site_capture(False)

    config = RewriteConfig(dicts=args.dicts)
    try:
        run = run_instrumented_file(
            args.file,
            entry=args.entry,
            config=config,
            channel=channel,
            sampling=sampling,
            guard=guard,
        )
    finally:
        if watchdog is not None:
            watchdog.stop()
        if args.no_sites:
            from .structures.base import set_site_capture

            set_site_capture(True)
    print(
        f"{args.file}: {run.rewrite.rewrites} sites instrumented, "
        f"{run.collector.instance_count} instances, "
        f"{run.event_count} access events in {run.duration:.3f}s"
    )
    if run.collector.sampled_out:
        print(
            f"sampling ({run.collector.sampling.describe()}): "
            f"{run.collector.sampled_out} events not recorded"
        )
    if args.spill:
        print(f"raw events spilled to {args.spill}")
    if args.save:
        save_profiles(run.profiles, args.save)
        print(f"profiles archived to {args.save}")
    # analyze_collector recalibrates the detector when the capture was
    # sampled (wider max_gap, rescaled count thresholds).
    report = _rank_with_predictions(
        UseCaseEngine().analyze_collector(run.collector), run.profiles
    )
    print()
    print(format_table_v(report, title=f"DSspy use cases for {args.file}"))
    print()
    print(format_summary(report, name=str(args.file)))
    if args.remote:
        ack = getattr(channel, "final_ack", None)
        spill_path = getattr(channel, "spill_path", None)
        if spill_path is not None:
            print(
                f"remote: gave up on daemon at {args.remote}; unshipped events "
                f"spilled to {spill_path} (the report above already covers "
                "them — replay the spill only to update the daemon's copy)"
            )
        if ack is None:
            print(f"remote: daemon at {args.remote} unreachable at session end")
        else:
            from .usecases import summarize_json

            print(
                f"remote: session {ack['session']} streamed {ack['received']} "
                f"events to {args.remote}; daemon found "
                f"{summarize_json(ack['report'])}"
            )
    if guard is not None:
        guard_report = guard.report()
        if guard_report.faults or guard_report.tripped or guard_report.trips:
            print()
            print(guard_report.describe())
    if args.charts:
        for profile in run.collector.nonempty_profiles():
            print()
            print(f"--- {profile} ---")
            print(render_profile(profile, width=72, height=10))
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    from .parallel.machine import MachineConfig, SimulatedMachine
    from .usecases import UseCaseEngine, report_to_json
    from .whatif import (
        annotate_report,
        format_whatif_table,
        rank_report,
        workspans_from_engine,
        workspans_from_profiles,
    )

    machine = SimulatedMachine(MachineConfig(cores=args.cores))

    def emit(report, spans, title: str) -> None:
        report = rank_report(annotate_report(report, machine, spans))
        if args.json:
            print(report_to_json(report))
        else:
            print(format_whatif_table(report, machine, spans, top=args.top, title=title))
            if not report.use_cases:
                print("no use cases flagged — nothing to parallelize here")
            elif not any(u.parallel for u in report.use_cases):
                print("no parallel use cases flagged — sequential advice only")

    if args.address:
        # Live path: quiesced engine snapshots over the SNAPSHOT verb.
        from .service import ProtocolError, fetch_snapshot
        from .service.durability import engine_from_dict

        try:
            payload = fetch_snapshot(args.address, session=args.session)
        except (OSError, ProtocolError, ValueError) as exc:
            print(f"cannot snapshot {args.address}: {exc}", file=sys.stderr)
            return 2
        snapshots = payload.get("snapshots", [])
        if not snapshots:
            detail = "; ".join(str(e) for e in payload.get("errors", []))
            which = f"session {args.session!r}" if args.session else "any session"
            print(
                f"{args.address}: no snapshot for {which}"
                + (f" ({detail})" if detail else ""),
                file=sys.stderr,
            )
            return 1
        for snap in snapshots:
            engine = engine_from_dict(snap["engine"])
            emit(
                engine.report(),
                workspans_from_engine(engine),
                f"What-if predictions for session {snap['session']} @ {args.address}",
            )
        return 0

    if not args.trace:
        print("whatif needs a trace file or --address", file=sys.stderr)
        return 2
    path = Path(args.trace)
    if not path.exists():
        print(f"no such trace: {path}", file=sys.stderr)
        return 2
    with path.open("rb") as fh:
        head = fh.read(8)
    from .events.spill import MAGIC

    if head == MAGIC:
        # Binary spill: raw tuples with no registrations, so profiles
        # are rebuilt with a default structure kind (list).
        from .events.profile import RuntimeProfile
        from .events.spill import iter_spill_events
        from .events.types import StructureKind

        profiles_by_id: dict[int, object] = {}
        for event in iter_spill_events(path):
            profile = profiles_by_id.get(event.instance_id)
            if profile is None:
                profile = profiles_by_id[event.instance_id] = RuntimeProfile(
                    event.instance_id, kind=StructureKind.LIST
                )
            profile.append(event)
        profiles = [profiles_by_id[iid] for iid in sorted(profiles_by_id)]
    else:
        from .events import read_profiles

        try:
            profiles = read_profiles(path)
        except (ValueError, UnicodeDecodeError) as exc:
            print(f"{path}: not a spill file or profile archive: {exc}", file=sys.stderr)
            return 2
    emit(
        UseCaseEngine().analyze(profiles),
        workspans_from_profiles(profiles),
        f"What-if predictions for {path}",
    )
    return 0


def _cmd_transform(args: argparse.Namespace) -> int:
    from .instrument import suggest_transforms, transform_source

    source = Path(args.file).read_text(encoding="utf-8")
    if args.dry_run:
        suggestions = suggest_transforms(source)
        for line in suggestions or ["nothing to transform"]:
            print(line)
        return 0
    transformed, report = transform_source(source)
    for line in report.applied:
        print(f"applied: {line}")
    for line in report.skipped:
        print(f"skipped: {line}")
    out_path = Path(args.output) if args.output else Path(args.file).with_suffix(
        ".parallel.py"
    )
    out_path.write_text(transformed, encoding="utf-8")
    print(f"{report.count} transforms -> {out_path}")
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    from .instrument import find_sites_in_file, scan_program

    path = Path(args.path)
    if path.is_file():
        sites = find_sites_in_file(path)
        for site in sites:
            print(site.describe())
        print(f"{len(sites)} instantiation sites")
    else:
        stats = scan_program(path)
        print(f"{stats.name}: {stats.loc} LOC")
        for kind, count in sorted(
            stats.counts.items(), key=lambda kv: -kv[1]
        ):
            print(f"  {kind.value:<18} {count}")
        print(
            f"  dynamic instances: {stats.dynamic_instances}, "
            f"arrays: {stats.array_instances}"
        )
    return 0


_TABLE_NAMES = ("table1", "fig1", "table2", "table3", "table4", "table6", "table7")


def _cmd_tables(args: argparse.Namespace) -> int:
    names = args.names or list(_TABLE_NAMES)
    for name in names:
        if name not in _TABLE_NAMES:
            print(f"unknown table {name!r}; choose from {_TABLE_NAMES}", file=sys.stderr)
            return 2
    from . import eval as eval_pkg
    from .study import run_occurrence_study, run_regularity_study, run_usecase_survey

    for name in names:
        if name in ("table1", "fig1"):
            study = run_occurrence_study(loc_scale=0.05)
            text = (
                eval_pkg.render_table1(study)
                if name == "table1"
                else eval_pkg.render_figure1(study)
            )
        elif name == "table2":
            text = eval_pkg.render_table2(run_regularity_study())
        elif name == "table3":
            text = eval_pkg.render_table3(run_usecase_survey())
        elif name == "table4":
            text = eval_pkg.render_table4(
                eval_pkg.evaluate_all(scale=args.scale)
            )
        elif name == "table6":
            text = eval_pkg.render_table6(eval_pkg.run_fraction_analysis())
        else:
            text = eval_pkg.render_table7()
        print(text)
        print()
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .events import collecting
    from .usecases import UseCaseEngine, format_table_v
    from .viz import render_profile
    from .workloads.generators import gen_insert_and_scan

    with collecting() as session:
        gen_insert_and_scan(items=200, rounds=12, label="demo")
    profile = session.profiles_by_label()["demo"]
    print(render_profile(profile, width=72, height=12))
    print()
    report = UseCaseEngine().analyze_collector(session)
    print(format_table_v(report, title="DSspy demo"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .events import read_profiles
    from .patterns import compare_reports
    from .usecases import UseCaseEngine

    engine = UseCaseEngine()
    before = engine.analyze(read_profiles(args.before))
    after = engine.analyze(read_profiles(args.after))
    diff = compare_reports(before, after)
    print(diff.describe())
    if diff.fully_resolved and diff.resolved:
        print("all previously detected use cases resolved")
    return 0 if not diff.introduced else 1


def _cmd_quality(args: argparse.Namespace) -> int:
    from .eval import evaluate_detection_quality

    quality = evaluate_detection_quality()
    print(quality.describe())
    return 0 if quality.macro_f1 >= args.min_f1 else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .eval import write_report

    report = write_report(
        args.output,
        scale=args.scale,
        measure_slowdown=not args.no_slowdown,
    )
    print(f"report written to {args.output}")
    print(f"headline reproduction OK: {report.headline_ok}")
    return 0 if report.headline_ok else 1


def _write_port_file(path: str | None, port: int | None) -> None:
    """Publish the bound port atomically (supervisors poll this file, so
    they must never read a partial write)."""
    if path is None or port is None:
        return
    import os

    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(f"{port}\n")
    os.replace(tmp, target)


def _parse_bytes(text: str) -> int:
    """Parse a byte count with an optional K/M/G suffix ("64M")."""
    text = text.strip()
    multiplier = 1
    if text and text[-1].upper() in "KMG":
        multiplier = 1024 ** ("KMG".index(text[-1].upper()) + 1)
        text = text[:-1]
    try:
        value = int(float(text) * multiplier)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid byte size {text!r}; use an integer with optional K/M/G"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"byte size must be positive, got {value}")
    return value


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.workers > 1:
        return _serve_fleet(args)
    from .service import ProfilingDaemon

    fault_fs = None
    if args.fault_fs:
        from .testing.faults import FaultFS

        fault_fs = FaultFS.from_spec(args.fault_fs)
        print(f"FAULT-FS ACTIVE: {args.fault_fs} (testing only)", file=sys.stderr)

    daemon = ProfilingDaemon(
        host=args.host,
        port=args.port,
        unix_socket=args.unix,
        heartbeat_timeout=args.heartbeat_timeout,
        session_linger=args.linger,
        max_pending_events=args.max_pending,
        overflow=args.overflow,
        report_dir=args.report_dir,
        state_dir=args.state_dir,
        checkpoint_every=args.checkpoint_every,
        journal_fsync=args.journal_fsync,
        max_events_per_sec=args.max_events_per_sec,
        session_max_events_per_sec=args.session_max_events_per_sec,
        retry_after=args.retry_after,
        state_budget=args.state_budget,
        fs=fault_fs,
        reuseport=args.reuseport,
    )
    print(f"dsspy daemon listening on {daemon.address}")
    if daemon.bound_port is not None:
        # Machine-readable: callers that asked for --port 0 parse the
        # real port from this line (or from --port-file).
        print(f"PORT={daemon.bound_port}", flush=True)
    _write_port_file(args.port_file, daemon.bound_port)
    if args.report_dir:
        print(f"session reports will be written to {args.report_dir}")
    if args.state_dir:
        print(f"write-ahead journals under {args.state_dir}")
        if daemon.recovered_sessions:
            print(
                f"recovered {len(daemon.recovered_sessions)} session(s) "
                f"from the journal: {', '.join(daemon.recovered_sessions)}"
            )
    print("press Ctrl-C or send SIGTERM to shut down")
    daemon.serve_forever()
    print("daemon shut down; all sessions flushed")
    return 0


def _serve_fleet(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .service.fleet import FleetSupervisor

    if args.unix:
        print("--workers is TCP-only (--unix is single-daemon)", file=sys.stderr)
        return 2
    if not args.state_dir:
        print(
            "--workers requires --state-dir: supervised restart recovers "
            "crashed workers from their shard journals",
            file=sys.stderr,
        )
        return 2
    mode = "reuseport" if args.reuseport else "router"
    supervisor = FleetSupervisor(
        args.workers,
        args.state_dir,
        mode=mode,
        host=args.host,
        port=args.port,
        report_dir=args.report_dir,
        overflow=args.overflow,
        checkpoint_every=args.checkpoint_every,
        heartbeat_timeout=args.heartbeat_timeout,
        linger=args.linger,
    )
    supervisor.start()
    port = int(supervisor.address.rsplit(":", 1)[1])
    print(
        f"dsspy fleet listening on {supervisor.address} "
        f"({args.workers} workers, {mode} mode)"
    )
    print(f"PORT={port}", flush=True)
    _write_port_file(args.port_file, port)
    print(f"shard state under {args.state_dir}/shard-NN")
    if supervisor.rebalanced:
        moved = sum(1 for m in supervisor.rebalanced if m["moved"])
        print(f"rebalanced {moved} on-disk session(s) to their assigned shards")
    print("press Ctrl-C or send SIGTERM to shut down")
    print("send SIGHUP (or run 'dsspy fleet upgrade') for a rolling upgrade")
    stop = threading.Event()
    upgrade_requested = threading.Event()

    def _handler(signum, frame):  # noqa: ARG001
        stop.set()

    def _upgrade_handler(signum, frame):  # noqa: ARG001
        upgrade_requested.set()

    try:
        signal.signal(signal.SIGTERM, _handler)
        signal.signal(signal.SIGINT, _handler)
        signal.signal(signal.SIGHUP, _upgrade_handler)
    except ValueError:
        pass  # not the main thread
    # `dsspy fleet upgrade` finds the supervisor through this pid file.
    pid_path = Path(args.state_dir) / "supervisor.pid"
    import os as _os

    pid_path.write_text(f"{_os.getpid()}\n")
    try:
        while not stop.wait(0.2):
            if not upgrade_requested.is_set():
                continue
            upgrade_requested.clear()
            print("SIGHUP: rolling upgrade starting", flush=True)
            try:
                results = supervisor.rolling_upgrade()
            except OSError as exc:
                print(f"rolling upgrade failed: {exc}", file=sys.stderr)
            else:
                forced = sum(1 for r in results if r.get("forced"))
                migrated = sum(1 for r in results if r.get("migrated"))
                print(
                    f"rolling upgrade complete: {len(results)} worker(s) "
                    f"restarted, {migrated} shard(s) migrated"
                    + (f", {forced} force-killed past the drain" if forced else ""),
                    flush=True,
                )
    finally:
        try:
            pid_path.unlink()
        except OSError:
            pass
        supervisor.stop()
    print("fleet shut down; all workers drained")
    return 0


def _cmd_sessions(args: argparse.Namespace) -> int:
    import json as _json

    from .service import fetch_stats
    from .service.protocol import ProtocolError

    try:
        stats = fetch_stats(args.address)
    except ValueError as exc:
        # Malformed address spec (bad port, empty host, ...).
        print(f"invalid daemon address {args.address!r}: {exc}", file=sys.stderr)
        return 1
    except ProtocolError as exc:
        # Reached something, but it does not speak the dsspy protocol —
        # or the daemon rejected the request (e.g. stale socket owner).
        print(f"daemon at {args.address} sent a bad reply: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot reach daemon at {args.address}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(stats, indent=2))
        return 0
    if args.fleet or stats.get("fleet"):
        return _render_fleet_sessions(stats)
    build = stats.get("build") or {}
    build_note = (
        f" -- dsspy {build['package']}, proto {build['proto']}, "
        f"journal v{build['journal_format']}, "
        f"checkpoint v{build['checkpoint_format']}, kernel {build['kernel']}"
        if build
        else ""
    )
    print(f"daemon {stats['address']}, up {stats['uptime_sec']}s{build_note}")
    if stats.get("frames_skipped"):
        print(
            f"unknown frame types skipped: {stats['frames_skipped']} "
            "(newer-protocol peer; events unaffected)"
        )
    sessions = stats["sessions"]
    if not sessions:
        print("no sessions")
        return 0
    header = (
        f"{'session':<14} {'state':<9} {'received':>10} {'ev/s':>8} "
        f"{'dup':>6} {'decim':>6} {'spill':>6} {'skip':>5} {'defer':>6} "
        f"{'ckpt':>5} {'refus':>5} {'stage':<8} {'press':<7} {'pr':>2} "
        f"{'inst':>5}  flagged"
    )
    print(header)
    print("-" * len(header))
    for s in sessions:
        flagged = ", ".join(
            f"#{iid}:{'/'.join(kinds)}" for iid, kinds in sorted(s["flagged"].items())
        ) or "-"
        state = s["state"] + ("*" if s.get("recovered") else "")
        proto = s.get("proto")
        print(
            f"{s['session']:<14} {state:<9} {s['received']:>10} "
            f"{s['events_per_sec']:>8} {s['duplicates']:>6} {s['decimated']:>6} "
            f"{s['spilled']:>6} {s.get('spill_corrupt_skipped', 0):>5} "
            f"{s.get('deferred', 0):>6} "
            f"{s.get('checkpoints', 0):>5} {s.get('refused_windows', 0):>5} "
            f"{s.get('stage', 'normal'):<8} "
            f"{s.get('pressure', 'normal'):<7} "
            f"{'-' if proto is None else proto:>2} "
            f"{s['instances']:>5}  {flagged}"
        )
    if any(s.get("recovered") for s in sessions):
        print("(* = session rebuilt from its write-ahead journal)")
    if any(s.get("spill_corrupt_skipped") for s in sessions):
        print(
            "(skip = corrupt spill records dropped during replay; "
            "the events are lost but accounted)"
        )
    return 0


def _render_fleet_sessions(stats: dict) -> int:
    """Fleet-shaped STATS reply (a router's aggregated view): worker
    summary plus the merged session table with a shard column."""
    workers = stats.get("workers", [])
    drain_note = (
        f", {stats['drain_refusals']} drain refusal(s)"
        if stats.get("drain_refusals")
        else ""
    )
    print(
        f"fleet {stats['address']}: {len(workers)} workers, "
        f"{stats.get('routed_connections', 0)} connections routed{drain_note}"
    )
    for row in workers:
        if "error" in row:
            print(
                f"  worker {row['worker']} at {row['address']}: "
                f"DOWN ({row['error']})"
            )
        else:
            recovered = row.get("recovered_sessions") or []
            note = f", {len(recovered)} recovered" if recovered else ""
            build = row.get("build") or {}
            if build:
                note += f", proto {build['proto']}, dsspy {build['package']}"
            if row.get("pressure") and row["pressure"] != "normal":
                note += f", pressure {row['pressure']}"
            if row.get("frames_skipped"):
                note += f", {row['frames_skipped']} unknown frame(s) skipped"
            if row.get("draining"):
                note += ", DRAINING"
            print(
                f"  worker {row['worker']} at {row['address']}: "
                f"{row['sessions']} session(s){note}"
            )
    sessions = stats.get("sessions", [])
    if not sessions:
        print("no sessions")
        return 0
    header = (
        f"{'session':<14} {'wkr':>3} {'state':<9} {'received':>10} "
        f"{'ev/s':>8} {'defer':>6} {'stage':<8} {'inst':>5}  flagged"
    )
    print(header)
    print("-" * len(header))
    for s in sorted(sessions, key=lambda s: s["session"]):
        flagged = ", ".join(
            f"#{iid}:{'/'.join(kinds)}" for iid, kinds in sorted(s["flagged"].items())
        ) or "-"
        state = s["state"] + ("*" if s.get("recovered") else "")
        print(
            f"{s['session']:<14} {s.get('worker', '?'):>3} {state:<9} "
            f"{s['received']:>10} {s['events_per_sec']:>8} "
            f"{s.get('deferred', 0):>6} {s.get('stage', 'normal'):<8} "
            f"{s['instances']:>5}  {flagged}"
        )
    if any(s.get("recovered") for s in sessions):
        print("(* = session rebuilt from its write-ahead journal)")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    import json as _json
    import shutil

    from .service import recover_session_dir, scan_fleet_state_dir
    from .usecases.json_export import report_to_dict, summarize_json

    # Fleet-aware: covers session dirs at the top level (single-daemon
    # layout) and under every shard-NN subdirectory in one invocation.
    session_dirs = scan_fleet_state_dir(args.state_dir)
    if not session_dirs:
        print(f"no recoverable sessions under {args.state_dir}")
        return 0
    shards = {d.parent.name for d in session_dirs if d.parent.name.startswith("shard-")}
    if shards:
        print(
            f"fleet state dir: recovering {len(session_dirs)} session(s) "
            f"across {len(shards)} shard(s)"
        )
    report_dir = Path(args.report_dir) if args.report_dir else None
    results = []
    for directory in session_dirs:
        recovered = recover_session_dir(directory)
        report = report_to_dict(recovered.engine.report())
        results.append(
            {
                "session": recovered.session_id,
                "directory": str(directory),
                "received": recovered.received,
                "applied": recovered.applied,
                "finished": recovered.finished,
                "checkpoint_loaded": recovered.checkpoint_loaded,
                "events_replayed": recovered.events_replayed,
                "truncated_bytes": recovered.truncated_bytes,
                "notes": list(recovered.notes),
                "report": report,
            }
        )
    if report_dir is not None:
        report_dir.mkdir(parents=True, exist_ok=True)
        for entry in results:
            path = report_dir / f"{entry['session']}.json"
            path.write_text(_json.dumps(entry["report"], indent=2))
    if args.json:
        print(_json.dumps(results, indent=2))
    else:
        for entry in results:
            status = "finished" if entry["finished"] else "interrupted"
            print(
                f"{entry['session']}: {status}, {entry['received']} events "
                f"journaled, {entry['events_replayed']} replayed past the "
                f"checkpoint"
                + (
                    f", {entry['truncated_bytes']} torn tail bytes dropped"
                    if entry["truncated_bytes"]
                    else ""
                )
            )
            for note in entry["notes"]:
                print(f"  note: {note}")
            print(f"  {summarize_json(entry['report'])}")
        if report_dir is not None:
            print(f"reports written to {report_dir}")
    if args.purge:
        for directory in session_dirs:
            shutil.rmtree(directory, ignore_errors=True)
        print(f"purged {len(session_dirs)} session journal(s)")
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    import json as _json

    from .service.fsck import fsck_state_dir

    report = fsck_state_dir(args.state_dir, repair=args.repair, shards=args.shards)
    # stdout is the machine-readable report (pipe it to jq / archive it
    # as a CI artifact); the human summary goes to stderr.
    print(_json.dumps(report, indent=2))
    for entry in report["sessions"]:
        status = "ok" if entry["ok"] else "CORRUPT"
        if entry["repaired"] or entry["quarantined"]:
            status = "repaired"
        elif entry.get("needs_migration"):
            status = "needs-migration"
        versions = entry.get("versions") or {}
        segment_versions = sorted(
            {v for v in (versions.get("segments") or {}).values() if v is not None}
        )
        format_note = ""
        if segment_versions or versions.get("checkpoint") is not None:
            seg_part = (
                "segments " + "/".join(f"v{v}" for v in segment_versions)
                if segment_versions
                else "no segments"
            )
            ckpt = versions.get("checkpoint")
            ckpt_part = "no checkpoint" if ckpt is None else f"checkpoint v{ckpt}"
            format_note = f" [{seg_part}, {ckpt_part}]"
        print(
            f"{entry['session']}: {status}, {entry['segments']} segment(s), "
            f"{len(entry['problems'])} problem(s), "
            f"{len(entry['quarantined'])} quarantined{format_note}",
            file=sys.stderr,
        )
        for problem in entry["problems"]:
            print(f"  problem: {problem}", file=sys.stderr)
        for note in entry.get("needs_migration", []):
            print(f"  needs-migration: {note}", file=sys.stderr)
        for action in entry["repaired"]:
            print(f"  repaired: {action}", file=sys.stderr)
    needs_migration = report.get("needs_migration", 0)
    print(
        f"fsck {report['root']}: {report.get('checked', 0)} session(s), "
        f"{report.get('with_problems', 0)} with problems"
        + (
            f", {needs_migration} needing migration (run 'dsspy migrate')"
            if needs_migration
            else ""
        )
        + ("" if report["ok"] else " -- NOT CLEAN"),
        file=sys.stderr,
    )
    # Exit codes: 0 clean, 1 damaged, 2 clean but written by a newer
    # build (needs migration — not an integrity failure).
    if not report["ok"]:
        return 1
    return 2 if needs_migration else 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    import json as _json

    from .service.durability import FutureFormatError
    from .service.migrate import STATE_VERSION, DowngradeError, migrate_state_dir

    to = args.to if args.to is not None else STATE_VERSION
    try:
        report = migrate_state_dir(args.state_dir, to=to)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except DowngradeError as exc:
        print(f"refusing to migrate: {exc}", file=sys.stderr)
        return 2
    except FutureFormatError as exc:
        print(f"state written by a newer dsspy build: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(report, indent=2))
        return 0
    for entry in report["sessions"]:
        if entry["steps"]:
            print(f"{entry['path']}: {' '.join(entry['steps'])}")
        else:
            origin = entry["from"]
            state = "nothing versioned" if origin is None else f"v{origin}"
            print(f"{entry['path']}: already current ({state})")
    print(
        f"migrate {report['root']}: {len(report['sessions'])} session(s), "
        f"{report['migrated']} migrated to v{report['to']}"
    )
    return 0


def _cmd_fleet_upgrade(args: argparse.Namespace) -> int:
    import os
    import signal
    import time

    pid_path = Path(args.state_dir) / "supervisor.pid"
    try:
        pid = int(pid_path.read_text().strip())
    except (OSError, ValueError):
        print(
            f"no supervisor pid file at {pid_path} — is "
            "'dsspy serve --workers N --state-dir ...' running?",
            file=sys.stderr,
        )
        return 2
    baseline = None
    workers = None
    if args.address:
        from .service import fetch_stats

        try:
            stats = fetch_stats(args.address)
            baseline = stats.get("upgrades", 0)
            workers = len(stats.get("workers", []))
        except (OSError, ValueError) as exc:
            print(f"cannot reach fleet at {args.address}: {exc}", file=sys.stderr)
            return 2
    try:
        os.kill(pid, signal.SIGHUP)
    except ProcessLookupError:
        print(f"supervisor pid {pid} is gone (stale {pid_path})", file=sys.stderr)
        return 2
    except PermissionError as exc:
        print(f"cannot signal supervisor pid {pid}: {exc}", file=sys.stderr)
        return 2
    print(f"rolling upgrade requested (SIGHUP to supervisor pid {pid})")
    if baseline is None:
        print("pass --address to wait for completion and verify")
        return 0
    from .service import fetch_stats

    deadline = time.monotonic() + args.timeout
    while time.monotonic() < deadline:
        time.sleep(0.5)
        try:
            stats = fetch_stats(args.address)
        except (OSError, ValueError):
            continue  # router briefly busy mid-respawn
        if stats.get("upgrades", 0) >= baseline + workers:
            print(
                f"rolling upgrade complete: {workers} worker(s) upgraded "
                f"({stats['upgrades']} lifetime upgrades)"
            )
            for row in stats.get("workers", []):
                build = row.get("build") or {}
                if build:
                    print(
                        f"  worker {row['worker']}: dsspy {build['package']}, "
                        f"proto {build['proto']}, "
                        f"journal v{build['journal_format']}"
                    )
            return 0
    print(
        f"timed out after {args.timeout}s waiting for {workers} worker "
        "upgrade(s); the supervisor may still be draining — check "
        f"'dsspy sessions {args.address}'",
        file=sys.stderr,
    )
    return 1


def _cmd_fleet_run(args: argparse.Namespace) -> int:
    import json as _json
    import tempfile

    from .service.fleet import FleetSupervisor, ResultCache, fleet_run
    from .usecases.json_export import summarize_json
    from .workloads import EVALUATION_WORKLOADS, workload_by_name

    names = args.workloads or [w.name for w in EVALUATION_WORKLOADS]
    try:
        names = [workload_by_name(n).name for n in names]
    except KeyError as exc:
        print(f"unknown workload {exc.args[0]!r}", file=sys.stderr)
        return 2
    tasks = [
        {
            "workload": name,
            "scale": args.scale,
            "session": f"{name.lower().replace(' ', '-')}-x{args.scale}-r{index}",
        }
        for name in names
        for index in range(args.sessions)
    ]
    cache = ResultCache(args.cache_dir)
    state_dir = args.state_dir or tempfile.mkdtemp(prefix="dsspy-fleet-run-")

    def progress(kind: str, config: dict) -> None:
        print(f"  [{kind}] {config['session']}")

    with FleetSupervisor(args.workers, state_dir, heartbeat_timeout=60.0) as sup:
        print(
            f"fleet of {args.workers} workers at {sup.address}; "
            f"{len(tasks)} task(s), cache at {cache.root}"
        )
        summary = fleet_run(
            tasks,
            sup.address,
            cache,
            workers=sup.worker_addresses(),
            concurrency=args.concurrency,
            on_progress=None if args.json else progress,
        )
        # Merge what this run actually streamed (cache hits never
        # touched the fleet): the converged fleet-wide report.
        merged = sup.coordinator().collect()
    out = {"summary": {k: v for k, v in summary.items() if k != "results"},
           "results": summary["results"], "merged": merged}
    if args.output:
        Path(args.output).write_text(_json.dumps(out, indent=2))
    if args.json:
        print(_json.dumps(out, indent=2))
    else:
        print(
            f"{summary['tasks']} task(s): {summary['cache_hits']} cached, "
            f"{summary['ran']} ran, {len(summary['failures'])} failed"
        )
        mix = ", ".join(f"{k}={v}" for k, v in sorted(summary["flagged"].items()))
        print(f"flagged across all sessions: {mix or 'none'}")
        if merged["report"] is not None:
            print(f"fleet-merged (this run): {summarize_json(merged['report'])}")
        if not merged["complete"]:
            print(f"merge incomplete: {merged['errors']}", file=sys.stderr)
        if args.output:
            print(f"full results written to {args.output}")
    for failure in summary["failures"]:
        print(f"FAILED {failure}", file=sys.stderr)
    return 1 if summary["failures"] or not merged["complete"] else 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    from .testing import FAULT_KINDS, DifferentialOracle

    if args.faults == "none":
        kinds: tuple[str, ...] = ()
        intensity = 0.0
    else:
        kinds = tuple(k.strip() for k in args.faults.split(",") if k.strip())
        unknown = [k for k in kinds if k not in FAULT_KINDS]
        if unknown:
            print(
                f"unknown fault kind(s) {unknown}; choose from {FAULT_KINDS} or 'none'",
                file=sys.stderr,
            )
            return 2
        intensity = args.fault_intensity
    failures = 0
    trials_run = 0
    faults_injected = 0
    events_checked = 0
    first_failure = None
    with DifferentialOracle(
        window=args.window,
        fault_intensity=intensity,
        fault_kinds=kinds or ("reset",),
        max_faults=args.max_faults,
    ) as oracle:
        for i in range(args.trials):
            result = oracle.run_trial(args.seed + i)
            trials_run += 1
            faults_injected += result.faults_injected
            events_checked += result.events
            if not result.ok:
                failures += 1
                print(result.describe())
                if first_failure is None:
                    first_failure = result
                if args.stop_on_failure:
                    break
            elif args.progress and trials_run % args.progress == 0:
                print(
                    f"  {trials_run}/{args.trials} trials ok "
                    f"({events_checked} events, {faults_injected} faults)"
                )
        print(
            f"selftest: {trials_run} trials, {failures} failures, "
            f"{events_checked} events checked, {faults_injected} faults injected"
        )
        if first_failure is not None and args.shrink:
            print("shrinking first failing trace ...")
            minimal = oracle.shrink_failure(first_failure)
            print(f"minimal reproduction: {minimal.describe()}")
            for raw in minimal.events:
                print(f"  {raw}")
            print(
                "reproduce locally with: dsspy selftest "
                f"--trials 1 --seed {first_failure.seed} "
                f"--faults {args.faults} --fault-intensity {intensity} "
                f"--window {args.window}"
            )
    return 1 if failures else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json as _json

    from .testing.chaos import ChaosSoak, InvariantMonitor

    soak = ChaosSoak(
        backend=args.backend,
        fault_intensity=args.fault_intensity,
        max_faults=args.max_faults,
        window=args.window,
        disk_fault_rate=args.disk_fault_rate,
        storm_rate=args.storm_rate,
        upgrade_rate=args.upgrade_rate,
        fleet_workers=args.workers,
        fleet_sessions=args.sessions,
        fleet_fault_fs_spec=args.fault_fs,
        monitor=InvariantMonitor(recovery_bound=args.recovery_bound),
    )

    def progress(result) -> None:
        if not result.ok:
            print(result.describe(), file=sys.stderr)
        elif args.progress and (result.seed - args.seed + 1) % args.progress == 0:
            print(
                f"  {result.seed - args.seed + 1} trials ok "
                f"(last: {result.events} events, {result.kills} kills, "
                f"{result.refusals_observed} refusals)",
                file=sys.stderr,
            )

    try:
        summary = soak.run(
            trials=args.trials,
            duration=args.duration,
            base_seed=args.seed,
            ledger_path=args.ledger,
            progress=progress,
            stop_on_violation=args.stop_on_violation,
        )
    finally:
        soak.close()
    # stdout is the machine-readable soak summary; per-trial detail is
    # in the --ledger JSONL and the stderr stream.
    print(_json.dumps(summary, indent=2))
    print(
        f"chaos soak ({summary['backend']}): {summary['trials']} trials, "
        f"{summary['kills']} kills, {summary['refusals_observed']} refusals, "
        f"{len(summary['seeds_with_violations'])} trial(s) with violations"
        + ("" if summary["ok"] else " -- LEDGER VIOLATED"),
        file=sys.stderr,
    )
    return 0 if summary["ok"] else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import run as bench_run

    return bench_run(args)


def build_parser() -> argparse.ArgumentParser:
    from .buildinfo import format_build_info

    parser = argparse.ArgumentParser(
        prog="dsspy",
        description="DSspy: locate parallelization potential in the runtime "
        "profiles of object-oriented data structures (IPDPS 2014 reproduction).",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=format_build_info(),
        help="print package, protocol, and on-disk format versions",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="instrument and analyze a program")
    analyze.add_argument("file", nargs="?", help="Python source file to instrument")
    analyze.add_argument("--entry", default=None, help="function to call after import")
    analyze.add_argument("--dicts", action="store_true", help="also instrument dicts")
    analyze.add_argument("--charts", action="store_true", help="print profile charts")
    analyze.add_argument("--save", default=None, help="archive profiles to JSONL")
    analyze.add_argument("--load", default=None, help="analyze an archived JSONL instead")
    analyze.add_argument(
        "--channel",
        choices=("sync", "async", "batch", "process"),
        default="sync",
        help="event transport (batch = per-thread buffered, lowest overhead)",
    )
    analyze.add_argument(
        "--sample",
        default="all",
        metavar="SPEC",
        help="sampling policy: 'all', '1/N' (decimate), or 'burst:K/N'",
    )
    analyze.add_argument(
        "--sample-seed",
        type=int,
        default=None,
        metavar="N",
        help="seed for the sampling jitter: same seed admits the identical "
        "event set across runs (omit for the unseeded default)",
    )
    analyze.add_argument(
        "--spill",
        default=None,
        metavar="PATH",
        help="spill raw events to a binary file (requires --channel batch)",
    )
    analyze.add_argument(
        "--batch-size",
        type=int,
        default=1024,
        help="events buffered per thread before a batched flush",
    )
    analyze.add_argument(
        "--remote",
        default=None,
        metavar="HOST:PORT",
        help="stream events to a dsspy daemon (see 'dsspy serve') instead of "
        "keeping the capture purely in-process; overrides --channel",
    )
    analyze.add_argument(
        "--transport",
        choices=("socket", "shm"),
        default="socket",
        help="with --remote: ship events over the TCP/Unix socket, or "
        "offer a same-host shared-memory ring (falls back to the socket "
        "when the daemon declines)",
    )
    analyze.add_argument(
        "--record-fastpath",
        choices=("auto", "off"),
        default="auto",
        help="with --channel batch: 'auto' engages the encode-at-record "
        "fast path (compiled kernel when built, packed byte buffers); "
        "'off' keeps the legacy tuple pipeline",
    )
    analyze.add_argument(
        "--remote-give-up",
        type=float,
        default=None,
        metavar="SEC",
        help="stop retrying a dead daemon after this many seconds of "
        "continuous failure (default: retry forever)",
    )
    analyze.add_argument(
        "--remote-spill",
        default=None,
        metavar="PATH",
        help="where to spill unshipped events if --remote-give-up fires "
        "(the local report is unaffected; the spill preserves the "
        "daemon's copy)",
    )
    analyze.add_argument(
        "--guard-budget",
        type=int,
        default=25,
        metavar="N",
        help="fail-open firewall: contain up to N profiler-internal faults "
        "before the circuit breaker trips instrumentation to pass-through "
        "mode (0 disables the firewall and restores fail-loud behaviour)",
    )
    analyze.add_argument(
        "--exit-drain-timeout",
        type=float,
        default=5.0,
        metavar="SEC",
        help="upper bound on the terminal event drain when the firewall is "
        "armed — a wedged transport or dead daemon cannot delay program "
        "exit longer than this",
    )
    analyze.add_argument(
        "--no-sites",
        action="store_true",
        help="skip allocation-site capture (the per-construction stack "
        "walk) — faster for workloads allocating many structures",
    )
    analyze.set_defaults(fn=_cmd_analyze)

    whatif = sub.add_parser(
        "whatif",
        help="rank flagged use cases by predicted speedup (work/span what-if)",
    )
    whatif.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="recorded trace: a --spill file or a --save profile archive",
    )
    whatif.add_argument(
        "--address",
        default=None,
        help="predict from a live daemon/fleet session via SNAPSHOT "
        "instead of a trace file",
    )
    whatif.add_argument(
        "--session",
        default=None,
        help="narrow --address to one session id (default: all sessions)",
    )
    whatif.add_argument(
        "--cores",
        type=int,
        default=8,
        help="machine model core count for the prediction (default 8, "
        "the paper's evaluation box)",
    )
    whatif.add_argument(
        "--top",
        type=int,
        default=None,
        help="show only the N highest-payoff rows",
    )
    whatif.add_argument(
        "--json",
        action="store_true",
        help="emit the annotated, ranked report as JSON",
    )
    whatif.set_defaults(fn=_cmd_whatif)

    transform = sub.add_parser(
        "transform", help="auto-parallelize safe Long-Insert fill loops"
    )
    transform.add_argument("file", help="Python source file to transform")
    transform.add_argument(
        "--dry-run", action="store_true", help="only report what would change"
    )
    transform.add_argument("-o", "--output", default=None, help="write result here")
    transform.set_defaults(fn=_cmd_transform)

    scan = sub.add_parser("scan", help="static analysis of a file or tree")
    scan.add_argument("path")
    scan.set_defaults(fn=_cmd_scan)

    tables = sub.add_parser("tables", help="regenerate the paper's tables")
    tables.add_argument("names", nargs="*", metavar="NAME", help=f"any of {_TABLE_NAMES}")
    tables.add_argument("--scale", type=float, default=0.3, help="workload scale")
    tables.set_defaults(fn=_cmd_tables)

    demo = sub.add_parser("demo", help="end-to-end demo on a synthetic profile")
    demo.set_defaults(fn=_cmd_demo)

    compare = sub.add_parser(
        "compare", help="diff two profile archives at the use-case level"
    )
    compare.add_argument("before", help="JSONL archive of the old capture")
    compare.add_argument("after", help="JSONL archive of the new capture")
    compare.set_defaults(fn=_cmd_compare)

    quality = sub.add_parser(
        "quality", help="detection precision/recall on the labeled corpus"
    )
    quality.add_argument("--min-f1", type=float, default=0.99)
    quality.set_defaults(fn=_cmd_quality)

    report = sub.add_parser(
        "report", help="write the full reproduction report (markdown)"
    )
    report.add_argument("-o", "--output", default="REPORT.md")
    report.add_argument("--scale", type=float, default=0.3)
    report.add_argument(
        "--no-slowdown", action="store_true", help="skip timing the baselines"
    )
    report.set_defaults(fn=_cmd_report)

    serve = sub.add_parser(
        "serve", help="run the profiling daemon for remote event streams"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7569)
    serve.add_argument(
        "--unix", default=None, metavar="PATH", help="listen on a Unix socket instead"
    )
    serve.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=30.0,
        help="seconds of client silence before its connection is dropped",
    )
    serve.add_argument(
        "--linger",
        type=float,
        default=60.0,
        help="seconds a detached session waits for resume before finalizing",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=200_000,
        help="per-session events buffered ahead of the analyzer",
    )
    serve.add_argument(
        "--overflow",
        choices=("block", "decimate", "spill"),
        default="block",
        help="policy when a client outpaces analysis",
    )
    serve.add_argument(
        "--report-dir",
        default=None,
        metavar="DIR",
        help="write each finalized session's report JSON here",
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="write-ahead journal directory: events are made durable "
        "before they are acknowledged, and a restarted daemon recovers "
        "every unfinished session from here",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=50_000,
        metavar="N",
        help="checkpoint a session's analysis state every N applied "
        "events so recovery replays only the journal tail",
    )
    serve.add_argument(
        "--journal-fsync",
        action="store_true",
        help="fsync every journal append (survives machine crashes, not "
        "just daemon crashes; costs throughput)",
    )
    serve.add_argument(
        "--max-events-per-sec",
        type=float,
        default=None,
        metavar="N",
        help="global ingest quota; sustained excess degrades sessions "
        "through decimate -> journal-only -> shed",
    )
    serve.add_argument(
        "--session-max-events-per-sec",
        type=float,
        default=None,
        metavar="N",
        help="per-session ingest quota (same degradation ladder)",
    )
    serve.add_argument(
        "--retry-after",
        type=float,
        default=2.0,
        metavar="SEC",
        help="backoff hint sent to shed clients",
    )
    serve.add_argument(
        "--state-budget",
        type=_parse_bytes,
        default=None,
        metavar="BYTES",
        help="cap on total --state-dir bytes (suffixes K/M/G); over "
        "budget the daemon force-checkpoints the fattest journals, "
        "evicts finished sessions, then sheds new windows",
    )
    serve.add_argument(
        "--fault-fs",
        default=None,
        metavar="SPEC",
        help="TESTING ONLY: run all journal/checkpoint I/O through a "
        "fault-injecting filesystem (enospc-after=N,partial,eio-every=K,"
        "fsync-stall=SEC or seed=N); the chaos harness uses this to "
        "starve fleet workers of disk",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard ingestion across N worker processes behind a "
        "session-affine router (requires --state-dir; 1 = single daemon)",
    )
    serve.add_argument(
        "--reuseport",
        action="store_true",
        help="bind with SO_REUSEPORT; with --workers the workers share "
        "the listen port (kernel load balancing, no session affinity) "
        "instead of the router",
    )
    serve.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write the bound port here once listening (atomic; lets "
        "supervisors and scripts use --port 0)",
    )
    serve.set_defaults(fn=_cmd_serve)

    sessions = sub.add_parser(
        "sessions", help="query a running daemon or fleet for session statistics"
    )
    sessions.add_argument("address", metavar="ADDRESS", help="HOST:PORT or unix:PATH")
    sessions.add_argument("--json", action="store_true", help="raw JSON output")
    sessions.add_argument(
        "--fleet",
        action="store_true",
        help="render the fleet view (per-worker summary + shard column); "
        "implied when the address is a fleet router",
    )
    sessions.set_defaults(fn=_cmd_sessions)

    fleet_run_p = sub.add_parser(
        "fleet-run",
        help="batch-profile many workload sessions against a sharded "
        "worker fleet, with a result cache keyed by task config",
    )
    fleet_run_p.add_argument(
        "workloads",
        nargs="*",
        metavar="WORKLOAD",
        help="Table V workload names (default: all 7)",
    )
    fleet_run_p.add_argument(
        "--workers", type=int, default=4, metavar="N", help="fleet size"
    )
    fleet_run_p.add_argument(
        "--sessions",
        type=int,
        default=1,
        metavar="N",
        help="sessions per workload (distinct cache entries)",
    )
    fleet_run_p.add_argument(
        "--scale", type=float, default=0.5, help="workload scale factor"
    )
    fleet_run_p.add_argument(
        "--cache-dir",
        default=".dsspy-fleet-cache",
        metavar="DIR",
        help="result cache; reruns of unchanged (workload, config) skip",
    )
    fleet_run_p.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="fleet journal root (default: a fresh temp dir)",
    )
    fleet_run_p.add_argument(
        "--concurrency",
        type=int,
        default=2,
        metavar="N",
        help="producer subprocesses in flight at once",
    )
    fleet_run_p.add_argument(
        "--output", "-o", default=None, metavar="FILE", help="write full JSON here"
    )
    fleet_run_p.add_argument("--json", action="store_true", help="raw JSON output")
    fleet_run_p.set_defaults(fn=_cmd_fleet_run)

    migrate = sub.add_parser(
        "migrate",
        help="bring a state directory's journals and checkpoints to this "
        "build's on-disk format (crash-safe, idempotent, no downgrades)",
    )
    migrate.add_argument(
        "state_dir",
        metavar="STATE_DIR",
        help="a daemon --state-dir, a fleet state dir (shard-NN layout), "
        "or one session directory",
    )
    migrate.add_argument(
        "--to",
        type=int,
        default=None,
        metavar="N",
        help="target format generation (default: this build's current)",
    )
    migrate.add_argument("--json", action="store_true", help="raw JSON output")
    migrate.set_defaults(fn=_cmd_migrate)

    fleet = sub.add_parser(
        "fleet", help="operate on a running fleet supervisor"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_upgrade = fleet_sub.add_parser(
        "upgrade",
        help="rolling upgrade: drain, migrate, and respawn each worker "
        "one at a time with zero event loss",
    )
    fleet_upgrade.add_argument(
        "state_dir",
        metavar="STATE_DIR",
        help="the fleet's --state-dir (the supervisor pid file lives there)",
    )
    fleet_upgrade.add_argument(
        "--address",
        default=None,
        metavar="HOST:PORT",
        help="fleet router address; when given, wait for every worker to "
        "come back and print the post-upgrade build per worker",
    )
    fleet_upgrade.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        metavar="SEC",
        help="with --address: max seconds to wait for completion",
    )
    fleet_upgrade.set_defaults(fn=_cmd_fleet_upgrade)

    recover = sub.add_parser(
        "recover",
        help="rebuild session reports offline from a daemon state directory",
    )
    recover.add_argument(
        "state_dir", metavar="STATE_DIR", help="the daemon's --state-dir"
    )
    recover.add_argument(
        "--report-dir",
        default=None,
        metavar="DIR",
        help="write each recovered session's report JSON here",
    )
    recover.add_argument("--json", action="store_true", help="raw JSON output")
    recover.add_argument(
        "--purge",
        action="store_true",
        help="delete the session journals after recovering them",
    )
    recover.set_defaults(fn=_cmd_recover)

    fsck = sub.add_parser(
        "fsck",
        help="deep-verify (and optionally repair) a daemon or fleet "
        "state directory: segment CRCs, checkpoint schema, cursor "
        "continuity, shard ownership",
    )
    fsck.add_argument(
        "state_dir",
        metavar="STATE_DIR",
        help="a daemon --state-dir, a fleet state dir (shard-NN "
        "layout), or one session directory",
    )
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="truncate torn tails, quarantine damaged segments (and "
        "everything after them) to quarantine/, and rebuild the "
        "checkpoint from the surviving journal tail",
    )
    fsck.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="fleet width for shard-ownership checks (default: the "
        "number of shard-NN directories present)",
    )
    fsck.set_defaults(fn=_cmd_fsck)

    selftest = sub.add_parser(
        "selftest",
        help="seeded differential trials: batch vs streaming vs faulted daemon",
    )
    selftest.add_argument(
        "--trials", type=int, default=100, help="number of seeded trials"
    )
    selftest.add_argument(
        "--seed", type=int, default=0, help="base seed (trial i uses seed+i)"
    )
    selftest.add_argument(
        "--faults",
        default="reset,duplicate,reorder,corrupt,chunk,stall,kill",
        help="comma-separated fault kinds to inject, or 'none'",
    )
    selftest.add_argument(
        "--fault-intensity",
        type=float,
        default=0.2,
        help="per-EVENTS-frame fault probability",
    )
    selftest.add_argument(
        "--max-faults", type=int, default=8, help="fault budget per trial"
    )
    selftest.add_argument(
        "--window", type=int, default=64, help="events per shipped window"
    )
    selftest.add_argument(
        "--progress", type=int, default=50, metavar="N",
        help="print a progress line every N trials (0 = quiet)",
    )
    selftest.add_argument(
        "--no-shrink", dest="shrink", action="store_false",
        help="skip minimizing the first failing trace",
    )
    selftest.add_argument(
        "--keep-going", dest="stop_on_failure", action="store_false",
        help="run all trials even after a failure",
    )
    selftest.set_defaults(fn=_cmd_selftest)

    chaos = sub.add_parser(
        "chaos",
        help="time-boxed chaos soak: randomized kill/disk/storm fault "
        "schedules against the no-silent-loss ledger",
    )
    chaos.add_argument(
        "--backend",
        choices=("inproc", "fleet"),
        default="inproc",
        help="inproc: one daemon per trial, cheap, hundreds of trials; "
        "fleet: real router + worker subprocesses with SIGKILL",
    )
    chaos.add_argument(
        "--trials", type=int, default=None,
        help="number of seeded trials (default 100 unless --duration)",
    )
    chaos.add_argument(
        "--duration", type=float, default=None, metavar="SEC",
        help="time box in seconds; stops after the trial that crosses it",
    )
    chaos.add_argument(
        "--seed", type=int, default=0, help="base seed (trial i uses seed+i)"
    )
    chaos.add_argument(
        "--fault-intensity", type=float, default=0.3,
        help="per-frame network-fault probability",
    )
    chaos.add_argument(
        "--max-faults", type=int, default=6, help="network-fault budget per trial"
    )
    chaos.add_argument(
        "--window", type=int, default=48, help="events per shipped window"
    )
    chaos.add_argument(
        "--disk-fault-rate", type=float, default=0.6,
        help="probability a trial runs on a seeded FaultFS (inproc only)",
    )
    chaos.add_argument(
        "--storm-rate", type=float, default=0.3,
        help="probability a trial adds concurrent storm producers",
    )
    chaos.add_argument(
        "--upgrade-rate", type=float, default=0.25,
        help="probability a trial exercises the version-skew path: state "
        "regressed to the previous on-disk format and migrated under "
        "fault injection (inproc), or a mid-storm rolling worker "
        "upgrade (fleet)",
    )
    chaos.add_argument(
        "--recovery-bound", type=float, default=15.0, metavar="SEC",
        help="max seconds a single crash-recovery may take",
    )
    chaos.add_argument(
        "--workers", type=int, default=3, help="fleet backend: worker count"
    )
    chaos.add_argument(
        "--sessions", type=int, default=3,
        help="fleet backend: concurrent sessions per trial",
    )
    chaos.add_argument(
        "--fault-fs", default=None, metavar="SPEC",
        help="fleet backend: FaultFS spec passed to every worker "
        "(see dsspy serve --fault-fs)",
    )
    chaos.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append one JSON line per trial to this file",
    )
    chaos.add_argument(
        "--progress", type=int, default=25, metavar="N",
        help="print a progress line every N ok trials (0 = quiet)",
    )
    chaos.add_argument(
        "--stop-on-violation", action="store_true",
        help="stop at the first trial that violates the ledger",
    )
    chaos.set_defaults(fn=_cmd_chaos)

    bench = sub.add_parser(
        "bench",
        help="recording-overhead benchmark and CI perf-ratchet",
    )
    from .bench import configure_parser as _configure_bench

    _configure_bench(bench)
    bench.set_defaults(fn=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
