"""Use-case and recommendation data model.

A *use case* is "a statement on how the data structure is used together
with a recommendation on how to improve it" (§III-B).  Five kinds carry
parallel potential; three are sequential optimizations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from ..events.profile import AllocationSite, RuntimeProfile
from ..patterns.model import PatternAnalysis


class TransformHint(enum.Enum):
    """Machine-readable category of the recommended code transform.

    The paper notes automated transformation is possible "if the
    recommended action is clearly specified"; these hints are that
    specification, and ``repro.parallel`` implements the parallel ones.
    """

    PARALLELIZE_INSERT = "parallelize the insert operation"
    PARALLEL_QUEUE = "employ a parallel queue as data container"
    PARALLELIZE_INSERT_AND_SEARCH = "parallelize both insert and search phases"
    PARALLEL_SEARCH_OR_TREE = (
        "employ a search-optimized data structure or parallelize the search "
        "by splitting the list into chunks searched in parallel"
    )
    CHECK_ORIGIN_PARALLEL_SEARCH = (
        "check the access origin; if it is a loop looking for an element, "
        "transform it into a parallel search operation"
    )
    USE_DYNAMIC_STRUCTURE = "switch the array to a dynamic data structure (list)"
    USE_STACK = "use a stack implementation instead of a list"
    REMOVE_WRITES = "check whether the trailing write accesses are necessary"


class UseCaseKind(enum.Enum):
    """The eight use cases with their paper abbreviations."""

    LONG_INSERT = ("Long-Insert", "LI", True, TransformHint.PARALLELIZE_INSERT)
    IMPLEMENT_QUEUE = ("Implement-Queue", "IQ", True, TransformHint.PARALLEL_QUEUE)
    SORT_AFTER_INSERT = (
        "Sort-After-Insert",
        "SAI",
        True,
        TransformHint.PARALLELIZE_INSERT_AND_SEARCH,
    )
    FREQUENT_SEARCH = (
        "Frequent-Search",
        "FS",
        True,
        TransformHint.PARALLEL_SEARCH_OR_TREE,
    )
    FREQUENT_LONG_READ = (
        "Frequent-Long-Read",
        "FLR",
        True,
        TransformHint.CHECK_ORIGIN_PARALLEL_SEARCH,
    )
    INSERT_DELETE_FRONT = (
        "Insert/Delete-Front",
        "IDF",
        False,
        TransformHint.USE_DYNAMIC_STRUCTURE,
    )
    STACK_IMPLEMENTATION = (
        "Stack-Implementation",
        "SI",
        False,
        TransformHint.USE_STACK,
    )
    WRITE_WITHOUT_READ = (
        "Write-Without-Read",
        "WWR",
        False,
        TransformHint.REMOVE_WRITES,
    )

    def __init__(
        self, label: str, abbreviation: str, parallel: bool, hint: TransformHint
    ) -> None:
        self.label = label
        self.abbreviation = abbreviation
        self.parallel = parallel
        self.hint = hint

    @classmethod
    def parallel_kinds(cls) -> tuple["UseCaseKind", ...]:
        """The five use cases with parallel potential, in paper order."""
        return tuple(k for k in cls if k.parallel)

    @classmethod
    def sequential_kinds(cls) -> tuple["UseCaseKind", ...]:
        return tuple(k for k in cls if not k.parallel)

    @classmethod
    def from_abbreviation(cls, abbreviation: str) -> "UseCaseKind":
        for kind in cls:
            if kind.abbreviation == abbreviation.upper():
                return kind
        raise KeyError(abbreviation)


@dataclass(frozen=True, slots=True)
class Recommendation:
    """Actionable advice attached to a detected use case."""

    hint: TransformHint
    parallel: bool
    rationale: str

    @property
    def action(self) -> str:
        return self.hint.value

    def describe(self) -> str:
        flavour = "parallelization" if self.parallel else "sequential optimization"
        return f"[{flavour}] {self.action} — {self.rationale}"


@dataclass(frozen=True, slots=True)
class UseCase:
    """One detected use case on one data structure instance.

    ``evidence`` carries the rule's measured quantities (e.g. the
    insert-phase fraction that crossed the threshold) so reports can
    state *why* the recommendation fires -- the paper's trust argument.

    ``predicted_speedup`` is filled in by the what-if profiler
    (:func:`repro.whatif.annotate_report`): the end-to-end speedup the
    recommendation is expected to yield on the analysis machine.  It is
    ``None`` until annotated; sequential-optimization kinds get 1.0.
    """

    kind: UseCaseKind
    profile: RuntimeProfile
    analysis: PatternAnalysis
    recommendation: Recommendation
    evidence: dict[str, Any] = field(default_factory=dict)
    predicted_speedup: float | None = None

    @property
    def site(self) -> AllocationSite | None:
        return self.profile.site

    @property
    def instance_id(self) -> int:
        return self.profile.instance_id

    @property
    def parallel(self) -> bool:
        return self.kind.parallel

    def describe(self) -> str:
        where = f" @ {self.site}" if self.site else ""
        return f"{self.kind.label} on {self.profile.kind.value} #{self.instance_id}{where}"
