"""Explanation engine: *why* a use case fired (or did not).

The paper's trust argument (§I): the tool must "detect relevant
locations, provide reasons, give parallelization recommendations and
visualize the runtime profiles".  This module produces the reasons — a
structured comparison of every threshold a rule consulted against the
measured value, for fired *and* non-fired rules, so an engineer can see
how close a structure came to each diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events.profile import RuntimeProfile
from ..patterns.statistics import compute_stats
from .engine import UseCaseEngine
from .model import UseCase, UseCaseKind
from .thresholds import Thresholds


@dataclass(frozen=True, slots=True)
class Criterion:
    """One threshold comparison inside a rule."""

    name: str
    measured: float
    threshold: float
    satisfied: bool
    higher_is_satisfied: bool = True

    def describe(self) -> str:
        relation = ">=" if self.higher_is_satisfied else "<="
        mark = "✓" if self.satisfied else "✗"
        return (
            f"{mark} {self.name}: measured {self.measured:g} "
            f"{relation} threshold {self.threshold:g}"
        )


@dataclass(frozen=True)
class RuleExplanation:
    """All criteria of one rule against one profile."""

    kind: UseCaseKind
    fired: bool
    criteria: tuple[Criterion, ...]

    @property
    def failed_criteria(self) -> list[Criterion]:
        return [c for c in self.criteria if not c.satisfied]

    def describe(self) -> str:
        head = f"{self.kind.label}: {'FIRED' if self.fired else 'not fired'}"
        return "\n".join([head] + [f"  {c.describe()}" for c in self.criteria])


def _criteria_for(
    kind: UseCaseKind, profile: RuntimeProfile, analysis, th: Thresholds
) -> tuple[Criterion, ...]:
    """Measured-vs-threshold pairs for the five parallel rules."""
    from ..events.types import OperationKind

    if kind is UseCaseKind.LONG_INSERT:
        inserts = [p for p in analysis.patterns if p.pattern_type.is_insert]
        fraction = analysis.fraction_in(lambda p: p.pattern_type.is_insert)
        longest = max((p.length for p in inserts), default=0)
        return (
            Criterion("insert runtime share", fraction, th.li_insert_fraction,
                      fraction > th.li_insert_fraction),
            Criterion("longest insertion phase", longest, th.li_long_phase,
                      longest >= th.li_long_phase),
        )
    if kind is UseCaseKind.FREQUENT_LONG_READ:
        long_reads = [
            p
            for p in analysis.patterns
            if p.pattern_type.is_read
            and p.span_coverage >= th.flr_min_coverage
            and p.length >= th.flr_min_pattern_length
            and p.span >= th.flr_min_pattern_span
        ]
        return (
            Criterion("long read patterns", len(long_reads), th.flr_min_patterns,
                      len(long_reads) > th.flr_min_patterns),
            Criterion("read share", profile.read_fraction, th.flr_read_fraction,
                      profile.read_fraction >= th.flr_read_fraction),
        )
    if kind is UseCaseKind.FREQUENT_SEARCH:
        searches = profile.count(OperationKind.SEARCH)
        return (
            Criterion("explicit searches", searches, th.fs_min_search_ops,
                      searches > th.fs_min_search_ops),
        )
    if kind is UseCaseKind.SORT_AFTER_INSERT:
        sorts = profile.count(OperationKind.SORT)
        inserts = [p for p in analysis.patterns if p.pattern_type.is_insert]
        longest = max((p.length for p in inserts), default=0)
        return (
            Criterion("sort operations", sorts, 1, sorts >= 1),
            Criterion("longest insertion phase", longest, th.sai_long_phase,
                      longest >= th.sai_long_phase),
        )
    if kind is UseCaseKind.IMPLEMENT_QUEUE:
        stats = compute_stats(profile)
        return (
            Criterion("end-affinity share", stats.end_affinity.ends_total,
                      th.iq_rw_fraction,
                      stats.end_affinity.ends_total > th.iq_rw_fraction),
        )
    return ()


def explain_profile(
    profile: RuntimeProfile,
    engine: UseCaseEngine | None = None,
) -> list[RuleExplanation]:
    """Explain every parallel rule's verdict on one profile."""
    engine = engine if engine is not None else UseCaseEngine()
    analysis = engine.detector.detect(profile)
    fired_kinds = {u.kind for u in engine.analyze_profile(profile)}
    out = []
    for kind in UseCaseKind.parallel_kinds():
        criteria = _criteria_for(kind, profile, analysis, engine.thresholds)
        out.append(
            RuleExplanation(
                kind=kind,
                fired=kind in fired_kinds,
                criteria=criteria,
            )
        )
    return out


def explain_use_case(use_case: UseCase) -> str:
    """Full narrative for one detected use case: recommendation,
    evidence, profile statistics."""
    stats = compute_stats(use_case.profile)
    lines = [
        use_case.describe(),
        f"  advice:   {use_case.recommendation.describe()}",
        f"  evidence: "
        + ", ".join(f"{k}={v:g}" if isinstance(v, (int, float)) else f"{k}={v}"
                    for k, v in use_case.evidence.items()),
        f"  profile:  {stats.describe()}",
    ]
    return "\n".join(lines)


def near_misses(
    profile: RuntimeProfile,
    engine: UseCaseEngine | None = None,
    tolerance: float = 0.5,
) -> list[RuleExplanation]:
    """Rules that did NOT fire but failed on exactly one criterion whose
    measured value is within ``tolerance`` (relative) of the threshold —
    the structures an engineer may still want to glance at."""
    out = []
    for explanation in explain_profile(profile, engine):
        if explanation.fired:
            continue
        failed = explanation.failed_criteria
        if len(failed) != 1:
            continue
        criterion = failed[0]
        if criterion.threshold == 0:
            continue
        gap = abs(criterion.measured - criterion.threshold) / abs(
            criterion.threshold
        )
        if gap <= tolerance:
            out.append(explanation)
    return out
