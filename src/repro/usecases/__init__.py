"""Use-case derivation: the paper's primary analytical contribution.

Eight rules (five with parallel potential) applied to pattern analyses,
each yielding a recommendation with its supporting evidence.
"""

from .engine import UseCaseEngine, UseCaseReport, evaluate_rules
from .features import ProfileFeatures, end_purity, features_of
from .explain import (
    Criterion,
    RuleExplanation,
    explain_profile,
    explain_use_case,
    near_misses,
)
from .json_export import report_to_dict, report_to_json, summarize_json, use_case_to_dict
from .model import Recommendation, TransformHint, UseCase, UseCaseKind
from .report import format_summary, format_table_v, format_use_case
from .rules import (
    ALL_RULES,
    PARALLEL_RULES,
    SEQUENTIAL_RULES,
    FrequentLongReadRule,
    FrequentSearchRule,
    ImplementQueueRule,
    InsertDeleteFrontRule,
    LongInsertRule,
    Rule,
    SortAfterInsertRule,
    StackImplementationRule,
    WriteWithoutReadRule,
    rule_for,
)
from .thresholds import PAPER_THRESHOLDS, Thresholds

__all__ = [
    "ALL_RULES",
    "Criterion",
    "RuleExplanation",
    "explain_profile",
    "report_to_dict",
    "report_to_json",
    "summarize_json",
    "use_case_to_dict",
    "explain_use_case",
    "near_misses",
    "FrequentLongReadRule",
    "FrequentSearchRule",
    "ImplementQueueRule",
    "InsertDeleteFrontRule",
    "LongInsertRule",
    "PAPER_THRESHOLDS",
    "PARALLEL_RULES",
    "ProfileFeatures",
    "Recommendation",
    "Rule",
    "SEQUENTIAL_RULES",
    "SortAfterInsertRule",
    "StackImplementationRule",
    "Thresholds",
    "TransformHint",
    "UseCase",
    "UseCaseEngine",
    "UseCaseKind",
    "UseCaseReport",
    "WriteWithoutReadRule",
    "end_purity",
    "evaluate_rules",
    "features_of",
    "format_summary",
    "format_table_v",
    "format_use_case",
    "rule_for",
]
