"""Machine-readable (JSON) export of use-case reports.

For CI integration: run DSspy in a pipeline, emit JSON, gate a build on
"no new parallelization smells" or feed dashboards.  The schema is
stable and versioned; everything in it round-trips through
``json.dumps``/``loads``.
"""

from __future__ import annotations

import json
from typing import Any

from .engine import UseCaseReport
from .model import UseCase

SCHEMA_VERSION = 1


def use_case_to_dict(use_case: UseCase) -> dict[str, Any]:
    site = use_case.site
    return {
        "kind": use_case.kind.label,
        "abbreviation": use_case.kind.abbreviation,
        "parallel": use_case.kind.parallel,
        "instance_id": use_case.instance_id,
        "structure": use_case.profile.kind.value,
        "label": use_case.profile.label,
        "site": None
        if site is None
        else {
            "filename": site.filename,
            "lineno": site.lineno,
            "function": site.function,
            "variable": site.variable,
        },
        "recommendation": {
            "action": use_case.recommendation.action,
            "rationale": use_case.recommendation.rationale,
        },
        "predicted_speedup": use_case.predicted_speedup,
        "evidence": {
            key: value
            for key, value in use_case.evidence.items()
            if isinstance(value, (int, float, str, bool))
        },
    }


def report_to_dict(report: UseCaseReport) -> dict[str, Any]:
    return {
        "schema_version": SCHEMA_VERSION,
        "instances_analyzed": report.instances_analyzed,
        "instances_flagged": report.instances_flagged,
        "search_space_reduction": report.search_space_reduction,
        "use_cases": [use_case_to_dict(u) for u in report.use_cases],
    }


def report_to_json(report: UseCaseReport, indent: int | None = 2) -> str:
    return json.dumps(report_to_dict(report), indent=indent)


def summarize_json(payload: str | dict) -> str:
    """One-line summary of an exported report (for CI logs)."""
    data = json.loads(payload) if isinstance(payload, str) else payload
    kinds: dict[str, int] = {}
    for use_case in data.get("use_cases", []):
        kinds[use_case["abbreviation"]] = kinds.get(use_case["abbreviation"], 0) + 1
    mix = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items())) or "none"
    return (
        f"{len(data.get('use_cases', []))} use cases on "
        f"{data.get('instances_flagged', 0)}/{data.get('instances_analyzed', 0)} "
        f"instances ({mix})"
    )
