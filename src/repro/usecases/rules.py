"""The eight use-case rules.

Each rule inspects a :class:`~repro.patterns.model.PatternAnalysis` and
either returns an *evidence* dictionary (the measured quantities that
crossed the thresholds) or ``None``.  Rule definitions follow §III-B of
the paper verbatim; where the paper is qualitative (IDF, SI, WWR) the
operationalization is documented inline.
"""

from __future__ import annotations

from typing import Any, Protocol

import numpy as np

from ..events.profile import NO_POSITION
from ..events.types import AccessKind, OperationKind, StructureKind
from ..patterns.model import AccessPattern, PatternAnalysis
from .model import Recommendation, UseCaseKind
from .thresholds import Thresholds

Evidence = dict[str, Any]


class Rule(Protocol):
    kind: UseCaseKind

    def evaluate(self, analysis: PatternAnalysis, th: Thresholds) -> Evidence | None:
        """Evidence dict when the rule fires, else ``None``."""


# -- shared helpers ---------------------------------------------------------


def _positional_masks(analysis: PatternAnalysis):
    """(has_position, at_front, at_back) boolean masks over all events."""
    profile = analysis.profile
    positions = profile.positions
    sizes = profile.sizes
    has_pos = positions != NO_POSITION
    at_front = has_pos & (positions == 0)
    at_back = has_pos & (positions >= sizes - 1)
    return has_pos, at_front, at_back


def _end_purity(ops: np.ndarray, mask_op, at_front, at_back) -> tuple[str | None, float, int]:
    """Which end an operation targets and how consistently.

    Returns ``(end, purity, count)`` where ``end`` is ``"front"`` /
    ``"back"`` / ``None`` and purity is the share of the operation's
    events that hit that end.
    """
    count = int(np.count_nonzero(mask_op))
    if count == 0:
        return None, 0.0, 0
    front = int(np.count_nonzero(mask_op & at_front))
    back = int(np.count_nonzero(mask_op & at_back))
    if front >= back:
        return "front", front / count, count
    return "back", back / count, count


def _insert_patterns(analysis: PatternAnalysis) -> list[AccessPattern]:
    return [p for p in analysis.patterns if p.pattern_type.is_insert]


def _read_patterns(analysis: PatternAnalysis) -> list[AccessPattern]:
    return [p for p in analysis.patterns if p.pattern_type.is_read]


def _is_linear(analysis: PatternAnalysis) -> bool:
    return analysis.profile.kind.is_linear


# -- the five parallel-potential rules ------------------------------------------


class LongInsertRule:
    """LI: an insertion pattern from either end inserting more than one
    element, with frequent insertion phases (>30% of runtime) of which
    at least one is long (≥100 consecutive access events)."""

    kind = UseCaseKind.LONG_INSERT

    def evaluate(self, analysis: PatternAnalysis, th: Thresholds) -> Evidence | None:
        if not _is_linear(analysis):
            return None
        inserts = _insert_patterns(analysis)
        if not inserts:
            return None
        insert_fraction = analysis.fraction_in(lambda p: p.pattern_type.is_insert)
        if insert_fraction <= th.li_insert_fraction:
            return None
        longest = max(p.length for p in inserts)
        if longest < th.li_long_phase:
            return None
        return {
            "insert_fraction": insert_fraction,
            "longest_phase": longest,
            "phase_count": len(inserts),
        }

    def recommend(self, evidence: Evidence) -> Recommendation:
        return Recommendation(
            hint=self.kind.hint,
            parallel=True,
            rationale=(
                f"insertion phases cover {evidence['insert_fraction']:.0%} of the "
                f"runtime profile; longest phase has {evidence['longest_phase']} "
                "consecutive insertions"
            ),
        )


class ImplementQueueRule:
    """IQ: the structure is used like a queue but implemented as a list
    -- a high amount of reads and writes (>60% in sum) affect two
    *different* ends."""

    kind = UseCaseKind.IMPLEMENT_QUEUE

    def evaluate(self, analysis: PatternAnalysis, th: Thresholds) -> Evidence | None:
        profile = analysis.profile
        if profile.kind not in (StructureKind.LIST, StructureKind.ARRAY_LIST):
            return None
        if not len(profile):
            return None
        has_pos, at_front, at_back = _positional_masks(analysis)
        ops = profile.ops

        insert_end, insert_purity, insert_count = _end_purity(
            ops, ops == OperationKind.INSERT, at_front, at_back
        )
        removal_mask = (ops == OperationKind.DELETE) | (ops == OperationKind.READ)
        removal_end, removal_purity, removal_count = _end_purity(
            ops, removal_mask, at_front, at_back
        )
        if insert_end is None or removal_end is None or insert_end == removal_end:
            return None
        if insert_count < th.iq_min_ops_per_end or removal_count < th.iq_min_ops_per_end:
            return None
        if insert_purity < th.iq_end_purity or removal_purity < th.iq_end_purity:
            return None
        end_fraction = int(np.count_nonzero(at_front | at_back)) / len(profile)
        if end_fraction <= th.iq_rw_fraction:
            return None
        return {
            "insert_end": insert_end,
            "removal_end": removal_end,
            "insert_purity": insert_purity,
            "removal_purity": removal_purity,
            "end_fraction": end_fraction,
        }

    def recommend(self, evidence: Evidence) -> Recommendation:
        return Recommendation(
            hint=self.kind.hint,
            parallel=True,
            rationale=(
                f"{evidence['end_fraction']:.0%} of accesses hit the two ends: "
                f"inserts at the {evidence['insert_end']} "
                f"({evidence['insert_purity']:.0%}), removals at the "
                f"{evidence['removal_end']} ({evidence['removal_purity']:.0%}) — "
                "queue-like usage of a list"
            ),
        )


class SortAfterInsertRule:
    """SAI: the structure is sorted after a long insertion phase (>30%
    of runtime, >100 consecutive events); insertion order is obviously
    unimportant, so both insert and search phases can be parallelized."""

    kind = UseCaseKind.SORT_AFTER_INSERT

    def evaluate(self, analysis: PatternAnalysis, th: Thresholds) -> Evidence | None:
        if not _is_linear(analysis):
            return None
        profile = analysis.profile
        sort_indices = np.flatnonzero(profile.ops == OperationKind.SORT)
        if sort_indices.size == 0:
            return None
        insert_fraction = analysis.fraction_in(lambda p: p.pattern_type.is_insert)
        if insert_fraction <= th.sai_insert_fraction:
            return None
        qualifying = [
            p
            for p in _insert_patterns(analysis)
            if p.length >= th.sai_long_phase
            and any(int(s) >= p.stop for s in sort_indices)
        ]
        if not qualifying:
            return None
        longest = max(p.length for p in qualifying)
        return {
            "insert_fraction": insert_fraction,
            "longest_phase": longest,
            "sort_count": int(sort_indices.size),
        }

    def recommend(self, evidence: Evidence) -> Recommendation:
        return Recommendation(
            hint=self.kind.hint,
            parallel=True,
            rationale=(
                f"a sort follows an insertion phase of "
                f"{evidence['longest_phase']} consecutive events "
                f"({evidence['insert_fraction']:.0%} of runtime) — insertion "
                "order is irrelevant"
            ),
        )


class FrequentSearchRule:
    """FS: the program often searches a linear structure (>1000 search
    operations); searches are *frequent* when at least 2% of all access
    events belong to Read-Forward/Backward patterns or explicit
    searches."""

    kind = UseCaseKind.FREQUENT_SEARCH

    def evaluate(self, analysis: PatternAnalysis, th: Thresholds) -> Evidence | None:
        if not _is_linear(analysis):
            return None
        profile = analysis.profile
        if not len(profile):
            return None
        search_ops = profile.count(OperationKind.SEARCH)
        if search_ops <= th.fs_min_search_ops:
            return None
        read_pattern_events = analysis.events_in(lambda p: p.pattern_type.is_read)
        frequency = (search_ops + read_pattern_events) / len(profile)
        if frequency < th.fs_pattern_fraction:
            return None
        return {
            "search_ops": search_ops,
            "read_pattern_events": read_pattern_events,
            "frequency": frequency,
        }

    def recommend(self, evidence: Evidence) -> Recommendation:
        return Recommendation(
            hint=self.kind.hint,
            parallel=True,
            rationale=(
                f"{evidence['search_ops']} explicit search operations "
                f"({evidence['frequency']:.1%} of all events are search-like) on "
                "a linear structure"
            ),
        )


class FrequentLongReadRule:
    """FLR: more than 10 sequential read patterns recur, ≥50% of all
    access types are Read or Search, and each pattern reads at least
    50% of the data structure — a disguised search."""

    kind = UseCaseKind.FREQUENT_LONG_READ

    def evaluate(self, analysis: PatternAnalysis, th: Thresholds) -> Evidence | None:
        if not _is_linear(analysis):
            return None
        profile = analysis.profile
        if not len(profile):
            return None
        # span-based coverage and the span floor coincide with the
        # event-count versions on strict-adjacency runs, but stay
        # meaningful on decimated captures (see Thresholds.decimated).
        long_reads = [
            p
            for p in _read_patterns(analysis)
            if p.span_coverage >= th.flr_min_coverage
            and p.length >= th.flr_min_pattern_length
            and p.span >= th.flr_min_pattern_span
        ]
        if len(long_reads) <= th.flr_min_patterns:
            return None
        if profile.read_fraction < th.flr_read_fraction:
            return None
        return {
            "long_read_patterns": len(long_reads),
            "read_fraction": profile.read_fraction,
            "mean_coverage": float(np.mean([p.span_coverage for p in long_reads])),
        }

    def recommend(self, evidence: Evidence) -> Recommendation:
        return Recommendation(
            hint=self.kind.hint,
            parallel=True,
            rationale=(
                f"{evidence['long_read_patterns']} sequential read patterns, each "
                f"covering {evidence['mean_coverage']:.0%} of the structure on "
                f"average ({evidence['read_fraction']:.0%} of accesses are reads) "
                "— likely a hand-rolled search"
            ),
        )


# -- the three sequential-optimization rules ------------------------------------


class InsertDeleteFrontRule:
    """IDF: insert/delete churn on a fixed-size array causes repeated
    reallocate+copy overhead; a dynamic structure fits better.

    Operationalization: the profile belongs to an array, carries at
    least ``idf_min_churn_ops`` combined insert+delete operations with
    both species present, and at least ``idf_min_resizes`` reallocation
    events."""

    kind = UseCaseKind.INSERT_DELETE_FRONT

    def evaluate(self, analysis: PatternAnalysis, th: Thresholds) -> Evidence | None:
        profile = analysis.profile
        if profile.kind is not StructureKind.ARRAY:
            return None
        inserts = profile.count(OperationKind.INSERT)
        deletes = profile.count(OperationKind.DELETE)
        resizes = profile.count(OperationKind.RESIZE)
        if inserts == 0 or deletes == 0:
            return None
        if inserts + deletes < th.idf_min_churn_ops or resizes < th.idf_min_resizes:
            return None
        return {"inserts": inserts, "deletes": deletes, "resizes": resizes}

    def recommend(self, evidence: Evidence) -> Recommendation:
        return Recommendation(
            hint=self.kind.hint,
            parallel=False,
            rationale=(
                f"{evidence['inserts']} inserts and {evidence['deletes']} deletes "
                f"forced {evidence['resizes']} full reallocations of a fixed-size "
                "array"
            ),
        )


class StackImplementationRule:
    """SI: insert and delete operations always access a common end of a
    list — the list implements a stack.

    Operationalization: at least ``si_min_inserts``/``si_min_deletes``
    operations, with ≥``si_end_purity`` of each hitting the *same* end."""

    kind = UseCaseKind.STACK_IMPLEMENTATION

    def evaluate(self, analysis: PatternAnalysis, th: Thresholds) -> Evidence | None:
        profile = analysis.profile
        if profile.kind not in (StructureKind.LIST, StructureKind.ARRAY_LIST):
            return None
        if not len(profile):
            return None
        has_pos, at_front, at_back = _positional_masks(analysis)
        ops = profile.ops
        insert_end, insert_purity, insert_count = _end_purity(
            ops, ops == OperationKind.INSERT, at_front, at_back
        )
        delete_end, delete_purity, delete_count = _end_purity(
            ops, ops == OperationKind.DELETE, at_front, at_back
        )
        if insert_count < th.si_min_inserts or delete_count < th.si_min_deletes:
            return None
        if insert_end is None or insert_end != delete_end:
            return None
        if insert_purity < th.si_end_purity or delete_purity < th.si_end_purity:
            return None
        return {
            "end": insert_end,
            "inserts": insert_count,
            "deletes": delete_count,
            "insert_purity": insert_purity,
            "delete_purity": delete_purity,
        }

    def recommend(self, evidence: Evidence) -> Recommendation:
        return Recommendation(
            hint=self.kind.hint,
            parallel=False,
            rationale=(
                f"{evidence['inserts']} inserts and {evidence['deletes']} deletes "
                f"all access the {evidence['end']} of the list — LIFO usage"
            ),
        )


class WriteWithoutReadRule:
    """WWR: the profile ends with write accesses whose results are never
    read — cleanup work better left to deallocation.

    Operationalization: after the last read-kind event there are at
    least ``wwr_min_trailing_writes`` write events, and they either
    include a ``Clear`` or cover ≥``wwr_min_coverage`` of the structure."""

    kind = UseCaseKind.WRITE_WITHOUT_READ

    def evaluate(self, analysis: PatternAnalysis, th: Thresholds) -> Evidence | None:
        profile = analysis.profile
        n = len(profile)
        if n == 0:
            return None
        kinds = profile.kinds
        reads = np.flatnonzero(kinds == AccessKind.READ)
        first_trailing = int(reads[-1]) + 1 if reads.size else 0
        ops = profile.ops
        # The Init event is construction, not cleanup.
        trailing = [
            i
            for i in range(first_trailing, n)
            if OperationKind(int(ops[i])) is not OperationKind.INIT
        ]
        if len(trailing) < th.wwr_min_trailing_writes:
            return None
        trailing_ops = {OperationKind(int(ops[i])) for i in trailing}
        # Cleanup means overwriting or clearing; trailing inserts/sorts
        # are a build phase, not a write-without-read.
        if not trailing_ops <= {OperationKind.WRITE, OperationKind.CLEAR}:
            return None
        positions = profile.positions
        distinct = {int(positions[i]) for i in trailing if positions[i] != NO_POSITION}
        base_size = max(int(profile.sizes[i]) for i in trailing)
        coverage = len(distinct) / base_size if base_size else 0.0
        if OperationKind.CLEAR not in trailing_ops and coverage < th.wwr_min_coverage:
            return None
        return {
            "trailing_writes": len(trailing),
            "coverage": coverage,
            "includes_clear": OperationKind.CLEAR in trailing_ops,
        }

    def recommend(self, evidence: Evidence) -> Recommendation:
        return Recommendation(
            hint=self.kind.hint,
            parallel=False,
            rationale=(
                f"the profile ends with {evidence['trailing_writes']} write "
                "accesses that are never read — cleanup resembling garbage "
                "collection"
            ),
        )


#: All rules in paper order (parallel first).
ALL_RULES: tuple[Rule, ...] = (
    LongInsertRule(),
    ImplementQueueRule(),
    SortAfterInsertRule(),
    FrequentSearchRule(),
    FrequentLongReadRule(),
    InsertDeleteFrontRule(),
    StackImplementationRule(),
    WriteWithoutReadRule(),
)

PARALLEL_RULES: tuple[Rule, ...] = tuple(r for r in ALL_RULES if r.kind.parallel)
SEQUENTIAL_RULES: tuple[Rule, ...] = tuple(r for r in ALL_RULES if not r.kind.parallel)


def rule_for(kind: UseCaseKind) -> Rule:
    """The rule instance implementing ``kind``."""
    for rule in ALL_RULES:
        if rule.kind is kind:
            return rule
    raise KeyError(kind)
