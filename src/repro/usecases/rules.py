"""The eight use-case rules.

Each rule thresholds a :class:`~repro.usecases.features.ProfileFeatures`
summary — the exact scalar quantities of one profile — and either
returns an *evidence* dictionary (the measured quantities that crossed
the thresholds) or ``None``.  Rule definitions follow §III-B of the
paper verbatim; where the paper is qualitative (IDF, SI, WWR) the
operationalization is documented inline.

Rules deliberately never touch raw event arrays: the same
``evaluate_features`` implementations serve the batch engine (features
extracted from a full :class:`~repro.patterns.model.PatternAnalysis`
via :func:`~repro.usecases.features.features_of`) and the streaming
service engine (features accumulated event-by-event with bounded
memory), which is what guarantees the two analysis modes converge to
identical reports.  ``evaluate(analysis, th)`` remains as a
convenience wrapper for callers holding a full analysis.
"""

from __future__ import annotations

from typing import Any, Protocol

import numpy as np

from ..events.types import OperationKind, StructureKind
from ..patterns.model import AccessPattern, PatternAnalysis
from .features import ProfileFeatures, end_purity, features_of
from .model import Recommendation, UseCaseKind
from .thresholds import Thresholds

Evidence = dict[str, Any]


class Rule(Protocol):
    kind: UseCaseKind

    def evaluate_features(
        self, features: ProfileFeatures, th: Thresholds
    ) -> Evidence | None:
        """Evidence dict when the rule fires, else ``None``."""

    def evaluate(self, analysis: PatternAnalysis, th: Thresholds) -> Evidence | None:
        """Convenience wrapper: extract features, then evaluate them."""


class _FeatureRule:
    """Shared ``evaluate`` plumbing: analysis → features → thresholds."""

    def evaluate(self, analysis: PatternAnalysis, th: Thresholds) -> Evidence | None:
        return self.evaluate_features(features_of(analysis), th)


# -- shared helpers ---------------------------------------------------------


def _insert_patterns(features: ProfileFeatures) -> list[AccessPattern]:
    return features.patterns_where(lambda p: p.pattern_type.is_insert)


def _read_patterns(features: ProfileFeatures) -> list[AccessPattern]:
    return features.patterns_where(lambda p: p.pattern_type.is_read)


def _is_linear(features: ProfileFeatures) -> bool:
    return features.kind.is_linear


# -- the five parallel-potential rules ------------------------------------------


class LongInsertRule(_FeatureRule):
    """LI: an insertion pattern from either end inserting more than one
    element, with frequent insertion phases (>30% of runtime) of which
    at least one is long (≥100 consecutive access events)."""

    kind = UseCaseKind.LONG_INSERT

    def evaluate_features(self, f: ProfileFeatures, th: Thresholds) -> Evidence | None:
        if not _is_linear(f):
            return None
        inserts = _insert_patterns(f)
        if not inserts:
            return None
        insert_fraction = f.fraction_in(lambda p: p.pattern_type.is_insert)
        if insert_fraction <= th.li_insert_fraction:
            return None
        longest = max(p.length for p in inserts)
        if longest < th.li_long_phase:
            return None
        return {
            "insert_fraction": insert_fraction,
            "longest_phase": longest,
            "phase_count": len(inserts),
        }

    def recommend(self, evidence: Evidence) -> Recommendation:
        return Recommendation(
            hint=self.kind.hint,
            parallel=True,
            rationale=(
                f"insertion phases cover {evidence['insert_fraction']:.0%} of the "
                f"runtime profile; longest phase has {evidence['longest_phase']} "
                "consecutive insertions"
            ),
        )


class ImplementQueueRule(_FeatureRule):
    """IQ: the structure is used like a queue but implemented as a list
    -- a high amount of reads and writes (>60% in sum) affect two
    *different* ends."""

    kind = UseCaseKind.IMPLEMENT_QUEUE

    def evaluate_features(self, f: ProfileFeatures, th: Thresholds) -> Evidence | None:
        if f.kind not in (StructureKind.LIST, StructureKind.ARRAY_LIST):
            return None
        if f.total_events == 0:
            return None
        insert_end, insert_purity, insert_count = end_purity(
            f.count(OperationKind.INSERT), f.insert_front, f.insert_back
        )
        removal_end, removal_purity, removal_count = end_purity(
            f.count(OperationKind.DELETE) + f.count(OperationKind.READ),
            f.delete_front + f.read_front,
            f.delete_back + f.read_back,
        )
        if insert_end is None or removal_end is None or insert_end == removal_end:
            return None
        if insert_count < th.iq_min_ops_per_end or removal_count < th.iq_min_ops_per_end:
            return None
        if insert_purity < th.iq_end_purity or removal_purity < th.iq_end_purity:
            return None
        end_fraction = f.end_fraction
        if end_fraction <= th.iq_rw_fraction:
            return None
        return {
            "insert_end": insert_end,
            "removal_end": removal_end,
            "insert_purity": insert_purity,
            "removal_purity": removal_purity,
            "end_fraction": end_fraction,
        }

    def recommend(self, evidence: Evidence) -> Recommendation:
        return Recommendation(
            hint=self.kind.hint,
            parallel=True,
            rationale=(
                f"{evidence['end_fraction']:.0%} of accesses hit the two ends: "
                f"inserts at the {evidence['insert_end']} "
                f"({evidence['insert_purity']:.0%}), removals at the "
                f"{evidence['removal_end']} ({evidence['removal_purity']:.0%}) — "
                "queue-like usage of a list"
            ),
        )


class SortAfterInsertRule(_FeatureRule):
    """SAI: the structure is sorted after a long insertion phase (>30%
    of runtime, >100 consecutive events); insertion order is obviously
    unimportant, so both insert and search phases can be parallelized."""

    kind = UseCaseKind.SORT_AFTER_INSERT

    def evaluate_features(self, f: ProfileFeatures, th: Thresholds) -> Evidence | None:
        if not _is_linear(f):
            return None
        if f.sort_count == 0:
            return None
        insert_fraction = f.fraction_in(lambda p: p.pattern_type.is_insert)
        if insert_fraction <= th.sai_insert_fraction:
            return None
        # "a sort follows the phase" ⇔ the latest sort is at or past the
        # phase's end index.
        qualifying = [
            p
            for p in _insert_patterns(f)
            if p.length >= th.sai_long_phase and f.last_sort_index >= p.stop
        ]
        if not qualifying:
            return None
        longest = max(p.length for p in qualifying)
        return {
            "insert_fraction": insert_fraction,
            "longest_phase": longest,
            "sort_count": f.sort_count,
        }

    def recommend(self, evidence: Evidence) -> Recommendation:
        return Recommendation(
            hint=self.kind.hint,
            parallel=True,
            rationale=(
                f"a sort follows an insertion phase of "
                f"{evidence['longest_phase']} consecutive events "
                f"({evidence['insert_fraction']:.0%} of runtime) — insertion "
                "order is irrelevant"
            ),
        )


class FrequentSearchRule(_FeatureRule):
    """FS: the program often searches a linear structure (>1000 search
    operations); searches are *frequent* when at least 2% of all access
    events belong to Read-Forward/Backward patterns or explicit
    searches."""

    kind = UseCaseKind.FREQUENT_SEARCH

    def evaluate_features(self, f: ProfileFeatures, th: Thresholds) -> Evidence | None:
        if not _is_linear(f):
            return None
        if f.total_events == 0:
            return None
        search_ops = f.count(OperationKind.SEARCH)
        if search_ops <= th.fs_min_search_ops:
            return None
        read_pattern_events = f.events_in(lambda p: p.pattern_type.is_read)
        frequency = (search_ops + read_pattern_events) / f.total_events
        if frequency < th.fs_pattern_fraction:
            return None
        return {
            "search_ops": search_ops,
            "read_pattern_events": read_pattern_events,
            "frequency": frequency,
        }

    def recommend(self, evidence: Evidence) -> Recommendation:
        return Recommendation(
            hint=self.kind.hint,
            parallel=True,
            rationale=(
                f"{evidence['search_ops']} explicit search operations "
                f"({evidence['frequency']:.1%} of all events are search-like) on "
                "a linear structure"
            ),
        )


class FrequentLongReadRule(_FeatureRule):
    """FLR: more than 10 sequential read patterns recur, ≥50% of all
    access types are Read or Search, and each pattern reads at least
    50% of the data structure — a disguised search."""

    kind = UseCaseKind.FREQUENT_LONG_READ

    def evaluate_features(self, f: ProfileFeatures, th: Thresholds) -> Evidence | None:
        if not _is_linear(f):
            return None
        if f.total_events == 0:
            return None
        # span-based coverage and the span floor coincide with the
        # event-count versions on strict-adjacency runs, but stay
        # meaningful on decimated captures (see Thresholds.decimated).
        long_reads = [
            p
            for p in _read_patterns(f)
            if p.span_coverage >= th.flr_min_coverage
            and p.length >= th.flr_min_pattern_length
            and p.span >= th.flr_min_pattern_span
        ]
        if len(long_reads) <= th.flr_min_patterns:
            return None
        if f.read_fraction < th.flr_read_fraction:
            return None
        return {
            "long_read_patterns": len(long_reads),
            "read_fraction": f.read_fraction,
            "mean_coverage": float(np.mean([p.span_coverage for p in long_reads])),
        }

    def recommend(self, evidence: Evidence) -> Recommendation:
        return Recommendation(
            hint=self.kind.hint,
            parallel=True,
            rationale=(
                f"{evidence['long_read_patterns']} sequential read patterns, each "
                f"covering {evidence['mean_coverage']:.0%} of the structure on "
                f"average ({evidence['read_fraction']:.0%} of accesses are reads) "
                "— likely a hand-rolled search"
            ),
        )


# -- the three sequential-optimization rules ------------------------------------


class InsertDeleteFrontRule(_FeatureRule):
    """IDF: insert/delete churn on a fixed-size array causes repeated
    reallocate+copy overhead; a dynamic structure fits better.

    Operationalization: the profile belongs to an array, carries at
    least ``idf_min_churn_ops`` combined insert+delete operations with
    both species present, and at least ``idf_min_resizes`` reallocation
    events."""

    kind = UseCaseKind.INSERT_DELETE_FRONT

    def evaluate_features(self, f: ProfileFeatures, th: Thresholds) -> Evidence | None:
        if f.kind is not StructureKind.ARRAY:
            return None
        inserts = f.count(OperationKind.INSERT)
        deletes = f.count(OperationKind.DELETE)
        resizes = f.count(OperationKind.RESIZE)
        if inserts == 0 or deletes == 0:
            return None
        if inserts + deletes < th.idf_min_churn_ops or resizes < th.idf_min_resizes:
            return None
        return {"inserts": inserts, "deletes": deletes, "resizes": resizes}

    def recommend(self, evidence: Evidence) -> Recommendation:
        return Recommendation(
            hint=self.kind.hint,
            parallel=False,
            rationale=(
                f"{evidence['inserts']} inserts and {evidence['deletes']} deletes "
                f"forced {evidence['resizes']} full reallocations of a fixed-size "
                "array"
            ),
        )


class StackImplementationRule(_FeatureRule):
    """SI: insert and delete operations always access a common end of a
    list — the list implements a stack.

    Operationalization: at least ``si_min_inserts``/``si_min_deletes``
    operations, with ≥``si_end_purity`` of each hitting the *same* end."""

    kind = UseCaseKind.STACK_IMPLEMENTATION

    def evaluate_features(self, f: ProfileFeatures, th: Thresholds) -> Evidence | None:
        if f.kind not in (StructureKind.LIST, StructureKind.ARRAY_LIST):
            return None
        if f.total_events == 0:
            return None
        insert_end, insert_purity, insert_count = end_purity(
            f.count(OperationKind.INSERT), f.insert_front, f.insert_back
        )
        delete_end, delete_purity, delete_count = end_purity(
            f.count(OperationKind.DELETE), f.delete_front, f.delete_back
        )
        if insert_count < th.si_min_inserts or delete_count < th.si_min_deletes:
            return None
        if insert_end is None or insert_end != delete_end:
            return None
        if insert_purity < th.si_end_purity or delete_purity < th.si_end_purity:
            return None
        return {
            "end": insert_end,
            "inserts": insert_count,
            "deletes": delete_count,
            "insert_purity": insert_purity,
            "delete_purity": delete_purity,
        }

    def recommend(self, evidence: Evidence) -> Recommendation:
        return Recommendation(
            hint=self.kind.hint,
            parallel=False,
            rationale=(
                f"{evidence['inserts']} inserts and {evidence['deletes']} deletes "
                f"all access the {evidence['end']} of the list — LIFO usage"
            ),
        )


class WriteWithoutReadRule(_FeatureRule):
    """WWR: the profile ends with write accesses whose results are never
    read — cleanup work better left to deallocation.

    Operationalization: after the last read-kind event there are at
    least ``wwr_min_trailing_writes`` write events, and they either
    include a ``Clear`` or cover ≥``wwr_min_coverage`` of the structure."""

    kind = UseCaseKind.WRITE_WITHOUT_READ

    def evaluate_features(self, f: ProfileFeatures, th: Thresholds) -> Evidence | None:
        if f.total_events == 0:
            return None
        if f.trailing_writes < th.wwr_min_trailing_writes:
            return None
        # Cleanup means overwriting or clearing; trailing inserts/sorts
        # are a build phase, not a write-without-read.
        if not f.trailing_ops <= {OperationKind.WRITE, OperationKind.CLEAR}:
            return None
        coverage = (
            f.trailing_distinct_positions / f.trailing_max_size
            if f.trailing_max_size
            else 0.0
        )
        includes_clear = OperationKind.CLEAR in f.trailing_ops
        if not includes_clear and coverage < th.wwr_min_coverage:
            return None
        return {
            "trailing_writes": f.trailing_writes,
            "coverage": coverage,
            "includes_clear": includes_clear,
        }

    def recommend(self, evidence: Evidence) -> Recommendation:
        return Recommendation(
            hint=self.kind.hint,
            parallel=False,
            rationale=(
                f"the profile ends with {evidence['trailing_writes']} write "
                "accesses that are never read — cleanup resembling garbage "
                "collection"
            ),
        )


#: All rules in paper order (parallel first).
ALL_RULES: tuple[Rule, ...] = (
    LongInsertRule(),
    ImplementQueueRule(),
    SortAfterInsertRule(),
    FrequentSearchRule(),
    FrequentLongReadRule(),
    InsertDeleteFrontRule(),
    StackImplementationRule(),
    WriteWithoutReadRule(),
)

PARALLEL_RULES: tuple[Rule, ...] = tuple(r for r in ALL_RULES if r.kind.parallel)
SEQUENTIAL_RULES: tuple[Rule, ...] = tuple(r for r in ALL_RULES if not r.kind.parallel)


def rule_for(kind: UseCaseKind) -> Rule:
    """The rule instance implementing ``kind``."""
    for rule in ALL_RULES:
        if rule.kind is kind:
            return rule
    raise KeyError(kind)
