"""The use-case engine: profiles → patterns → use cases → advice.

This is DSspy's final pipeline stage (§IV): "the specified use cases and
parameters are loaded and applied to the access patterns", and the
result set — use cases plus recommended actions — is what the engineer
reviews.  :class:`UseCaseReport` additionally computes the search-space
reduction the evaluation quantifies (Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..events.collector import EventCollector
from ..events.profile import RuntimeProfile
from ..patterns.detector import DetectorConfig, PatternDetector
from .model import UseCase, UseCaseKind
from .rules import ALL_RULES, Rule
from .thresholds import PAPER_THRESHOLDS, Thresholds


@dataclass(frozen=True)
class UseCaseReport:
    """All use cases found in one capture session.

    Attributes
    ----------
    use_cases:
        Every detected use case, in (instance, rule) order.
    instances_analyzed:
        Number of data structure instances in the session — the
        denominator of the search-space reduction.
    """

    use_cases: tuple[UseCase, ...]
    instances_analyzed: int

    # -- search-space metrics (Table IV) --------------------------------

    @property
    def instances_flagged(self) -> int:
        """Distinct instances referenced by at least one use case."""
        return len({u.instance_id for u in self.use_cases})

    @property
    def search_space_reduction(self) -> float:
        """1 − flagged/analyzed: the share of instances an engineer no
        longer needs to look at (76.92% across the paper's benchmark)."""
        if self.instances_analyzed == 0:
            return 0.0
        return 1.0 - self.instances_flagged / self.instances_analyzed

    # -- convenience selectors --------------------------------------------

    @property
    def parallel_use_cases(self) -> list[UseCase]:
        return [u for u in self.use_cases if u.parallel]

    @property
    def sequential_use_cases(self) -> list[UseCase]:
        return [u for u in self.use_cases if not u.parallel]

    def of_kind(self, kind: UseCaseKind) -> list[UseCase]:
        return [u for u in self.use_cases if u.kind is kind]

    def count_by_kind(self) -> dict[UseCaseKind, int]:
        out: dict[UseCaseKind, int] = {}
        for u in self.use_cases:
            out[u.kind] = out.get(u.kind, 0) + 1
        return out

    def for_instance(self, instance_id: int) -> list[UseCase]:
        return [u for u in self.use_cases if u.instance_id == instance_id]


@dataclass
class UseCaseEngine:
    """Configured analysis pipeline.

    Parameters
    ----------
    thresholds:
        Rule thresholds; defaults to the paper's published values.
    detector:
        Pattern detector; defaults to strict adjacency (max_gap=1) and
        2-event minimum runs.
    rules:
        The rule set to apply; defaults to all eight.  Restricting to
        :data:`~repro.usecases.rules.PARALLEL_RULES` reproduces the
        evaluation sections, which only count the five parallel kinds.
    """

    thresholds: Thresholds = PAPER_THRESHOLDS
    detector: PatternDetector = field(
        default_factory=lambda: PatternDetector(DetectorConfig())
    )
    rules: tuple[Rule, ...] = ALL_RULES

    def analyze_profile(self, profile: RuntimeProfile) -> list[UseCase]:
        """Apply every rule to one profile.

        Categories are exclusive where one subsumes another:
        Sort-After-Insert implies a long insertion phase, so when SAI
        fires, the plain Long-Insert diagnosis is suppressed (its
        recommendation — parallelize the insert — is contained in
        SAI's).
        """
        analysis = self.detector.detect(profile)
        found: list[UseCase] = []
        for rule in self.rules:
            evidence = rule.evaluate(analysis, self.thresholds)
            if evidence is None:
                continue
            found.append(
                UseCase(
                    kind=rule.kind,
                    profile=profile,
                    analysis=analysis,
                    recommendation=rule.recommend(evidence),
                    evidence=evidence,
                )
            )
        if any(u.kind is UseCaseKind.SORT_AFTER_INSERT for u in found):
            found = [u for u in found if u.kind is not UseCaseKind.LONG_INSERT]
        return found

    def analyze(self, profiles: list[RuntimeProfile]) -> UseCaseReport:
        """Analyze a batch of profiles into a report.

        Instances whose profile recorded no events still count toward
        the analyzed total — they are part of the search space the
        engineer would otherwise inspect.
        """
        use_cases: list[UseCase] = []
        for profile in profiles:
            use_cases.extend(self.analyze_profile(profile))
        return UseCaseReport(
            use_cases=tuple(use_cases), instances_analyzed=len(profiles)
        )

    def analyze_collector(self, collector: EventCollector) -> UseCaseReport:
        """Analyze everything a collector captured."""
        return self.analyze(collector.profiles())
