"""The use-case engine: profiles → patterns → use cases → advice.

This is DSspy's final pipeline stage (§IV): "the specified use cases and
parameters are loaded and applied to the access patterns", and the
result set — use cases plus recommended actions — is what the engineer
reviews.  :class:`UseCaseReport` additionally computes the search-space
reduction the evaluation quantifies (Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..events.collector import EventCollector
from ..events.profile import RuntimeProfile
from ..events.sampling import SamplingPolicy
from ..patterns.detector import DetectorConfig, PatternDetector
from .features import ProfileFeatures, features_of
from .model import UseCase, UseCaseKind
from .rules import ALL_RULES, Evidence, Rule
from .thresholds import PAPER_THRESHOLDS, Thresholds


def evaluate_rules(
    features: ProfileFeatures,
    thresholds: Thresholds,
    rules: tuple[Rule, ...] = ALL_RULES,
) -> list[tuple[Rule, Evidence]]:
    """Apply a rule set to one profile's features.

    Categories are exclusive where one subsumes another:
    Sort-After-Insert implies a long insertion phase, so when SAI fires,
    the plain Long-Insert diagnosis is suppressed (its recommendation —
    parallelize the insert — is contained in SAI's).

    Shared by the batch :class:`UseCaseEngine` and the streaming
    :class:`~repro.service.streaming.StreamingUseCaseEngine`, so a
    use-case decision is made in exactly one place.
    """
    fired: list[tuple[Rule, Evidence]] = []
    for rule in rules:
        evidence = rule.evaluate_features(features, thresholds)
        if evidence is not None:
            fired.append((rule, evidence))
    if any(rule.kind is UseCaseKind.SORT_AFTER_INSERT for rule, _ in fired):
        fired = [
            (rule, ev) for rule, ev in fired if rule.kind is not UseCaseKind.LONG_INSERT
        ]
    return fired


@dataclass(frozen=True)
class UseCaseReport:
    """All use cases found in one capture session.

    Attributes
    ----------
    use_cases:
        Every detected use case, in (instance, rule) order.
    instances_analyzed:
        Number of data structure instances in the session — the
        denominator of the search-space reduction.
    """

    use_cases: tuple[UseCase, ...]
    instances_analyzed: int

    # -- search-space metrics (Table IV) --------------------------------

    @property
    def instances_flagged(self) -> int:
        """Distinct instances referenced by at least one use case."""
        return len({u.instance_id for u in self.use_cases})

    @property
    def search_space_reduction(self) -> float:
        """1 − flagged/analyzed: the share of instances an engineer no
        longer needs to look at (76.92% across the paper's benchmark)."""
        if self.instances_analyzed == 0:
            return 0.0
        return 1.0 - self.instances_flagged / self.instances_analyzed

    # -- convenience selectors --------------------------------------------

    @property
    def parallel_use_cases(self) -> list[UseCase]:
        return [u for u in self.use_cases if u.parallel]

    @property
    def sequential_use_cases(self) -> list[UseCase]:
        return [u for u in self.use_cases if not u.parallel]

    def of_kind(self, kind: UseCaseKind) -> list[UseCase]:
        return [u for u in self.use_cases if u.kind is kind]

    def count_by_kind(self) -> dict[UseCaseKind, int]:
        out: dict[UseCaseKind, int] = {}
        for u in self.use_cases:
            out[u.kind] = out.get(u.kind, 0) + 1
        return out

    def for_instance(self, instance_id: int) -> list[UseCase]:
        return [u for u in self.use_cases if u.instance_id == instance_id]


@dataclass
class UseCaseEngine:
    """Configured analysis pipeline.

    Parameters
    ----------
    thresholds:
        Rule thresholds; defaults to the paper's published values.
    detector:
        Pattern detector; defaults to strict adjacency (max_gap=1) and
        2-event minimum runs.
    rules:
        The rule set to apply; defaults to all eight.  Restricting to
        :data:`~repro.usecases.rules.PARALLEL_RULES` reproduces the
        evaluation sections, which only count the five parallel kinds.
    """

    thresholds: Thresholds = PAPER_THRESHOLDS
    detector: PatternDetector = field(
        default_factory=lambda: PatternDetector(DetectorConfig())
    )
    rules: tuple[Rule, ...] = ALL_RULES

    def analyze_profile(self, profile: RuntimeProfile) -> list[UseCase]:
        """Apply every rule to one profile.

        Categories are exclusive where one subsumes another:
        Sort-After-Insert implies a long insertion phase, so when SAI
        fires, the plain Long-Insert diagnosis is suppressed (its
        recommendation — parallelize the insert — is contained in
        SAI's).
        """
        analysis = self.detector.detect(profile)
        features = features_of(analysis)
        return [
            UseCase(
                kind=rule.kind,
                profile=profile,
                analysis=analysis,
                recommendation=rule.recommend(evidence),
                evidence=evidence,
            )
            for rule, evidence in evaluate_rules(features, self.thresholds, self.rules)
        ]

    def analyze(self, profiles: list[RuntimeProfile]) -> UseCaseReport:
        """Analyze a batch of profiles into a report.

        Instances whose profile recorded no events still count toward
        the analyzed total — they are part of the search space the
        engineer would otherwise inspect.
        """
        use_cases: list[UseCase] = []
        for profile in profiles:
            use_cases.extend(self.analyze_profile(profile))
        return UseCaseReport(
            use_cases=tuple(use_cases), instances_analyzed=len(profiles)
        )

    def analyze_collector(self, collector: EventCollector) -> UseCaseReport:
        """Analyze everything a collector captured.

        When the collector recorded under a decimating sampling policy,
        each instance is routed to the engine that matches how it was
        captured — callers using the default engine on a sampled
        capture get correct results without knowing about sampling:

        - Instances the policy captured **exactly** (everything under a
          :class:`~repro.events.sampling.Burst` policy's keep limit)
          are analyzed with this engine, unmodified.
        - Decimated instances are analyzed with the recalibrated
          :meth:`for_sampling` engine, after dropping the full-rate
          burst prefix from the profile: the prefix over-represents
          whatever the instance did first (usually its initial fill),
          which would bias every fraction-based rule, while the
          remaining tail is a uniform 1-in-stride sample the
          recalibrated thresholds are built for.
        """
        policy = collector.sampling
        profiles = collector.profiles()
        if (
            policy is None
            or policy.stride <= 1
            or self.thresholds is not PAPER_THRESHOLDS
            or self.detector.config.max_gap >= 2 * policy.stride - 1
        ):
            return self.analyze(profiles)
        sampled_engine = UseCaseEngine.for_sampling(policy, rules=self.rules)
        use_cases: list[UseCase] = []
        for profile in profiles:
            if policy.is_exact(profile.instance_id):
                use_cases.extend(self.analyze_profile(profile))
            else:
                prefix = policy.exact_prefix(profile.instance_id)
                use_cases.extend(
                    sampled_engine.analyze_profile(_drop_prefix(profile, prefix))
                )
        return UseCaseReport(
            use_cases=tuple(use_cases), instances_analyzed=len(profiles)
        )

    @classmethod
    def for_sampling(
        cls,
        policy: SamplingPolicy,
        rules: tuple[Rule, ...] = ALL_RULES,
        thresholds: Thresholds = PAPER_THRESHOLDS,
    ) -> UseCaseEngine:
        """An engine calibrated for a decimated capture.

        Jittered 1-in-N decimation stretches a Read-Forward scan's
        position delta from 1 to anywhere in ``[1, 2N-1]`` (adjacent
        samples sit at pseudo-random offsets of consecutive N-blocks)
        and shrinks every event count by ~N, so the paper's
        strict-adjacency detector (``max_gap=1``) and absolute count
        thresholds would both go blind.  This constructor widens
        ``max_gap`` to ``2*stride - 1`` and recalibrates the thresholds
        via :meth:`~repro.usecases.thresholds.Thresholds.decimated`
        (event counts scale, pattern counts and positional spans don't),
        which is what keeps the detected use-case sets stable between
        full and sampled captures.
        """
        stride = policy.stride
        if stride <= 1:
            return cls(thresholds=thresholds, rules=rules)
        return cls(
            thresholds=thresholds.decimated(stride),
            detector=PatternDetector(DetectorConfig(max_gap=2 * stride - 1)),
            rules=rules,
        )


def _drop_prefix(profile: RuntimeProfile, prefix: int) -> RuntimeProfile:
    """A copy of ``profile`` without its first ``prefix`` events (the
    full-rate burst head); the original when there is nothing to drop."""
    if prefix <= 0:
        return profile
    tail = RuntimeProfile(
        profile.instance_id,
        kind=profile.kind,
        site=profile.site,
        label=profile.label,
    )
    for event in profile.events[prefix:]:
        tail.append(event)
    return tail
