"""Textual rendering of use-case reports.

``format_table_v`` reproduces the layout of the paper's Table V (the
DSspy output for GPdotNET): one block per use case with class/method/
position, the data structure, and the use-case kind.  ``format_summary``
gives the per-session aggregate the evaluation tables consume.
"""

from __future__ import annotations

import os

from .engine import UseCaseReport
from .model import UseCase


def _site_lines(use_case: UseCase) -> list[str]:
    site = use_case.site
    if site is None:
        return ["  Location:       <unknown>"]
    return [
        f"  Class/Module:   {os.path.basename(site.filename)}",
        f"  Method:         {site.function}",
        f"  Position:       {site.lineno}",
    ]


def format_use_case(use_case: UseCase, index: int | None = None) -> str:
    """One Table-V-style block for a single use case."""
    header = f"Use Case {index}" if index is not None else "Use Case"
    kind = use_case.profile.kind.value.capitalize()
    label = f" ({use_case.profile.label})" if use_case.profile.label else ""
    lines = [header] + _site_lines(use_case)
    lines.append(f"  Data structure: {kind}#{use_case.instance_id}{label}")
    lines.append(f"  Use Case:       {use_case.kind.label}")
    lines.append(f"  Recommendation: {use_case.recommendation.describe()}")
    if use_case.predicted_speedup is not None:
        lines.append(
            f"  Predicted:      {use_case.predicted_speedup:.2f}x speedup"
        )
    return "\n".join(lines)


def format_table_v(report: UseCaseReport, title: str = "DSspy use cases") -> str:
    """All use cases of a session in Table V layout."""
    blocks = [title, "=" * len(title)]
    if not report.use_cases:
        blocks.append("(no use cases detected)")
    for i, use_case in enumerate(report.use_cases, start=1):
        blocks.append(format_use_case(use_case, i))
    return "\n\n".join(blocks)


def format_summary(report: UseCaseReport, name: str = "session") -> str:
    """One-paragraph aggregate: counts by kind plus reduction."""
    by_kind = report.count_by_kind()
    kind_parts = [
        f"{kind.abbreviation}={count}"
        for kind, count in sorted(by_kind.items(), key=lambda kv: kv[0].label)
    ]
    kinds = ", ".join(kind_parts) if kind_parts else "none"
    return (
        f"{name}: {len(report.use_cases)} use cases on "
        f"{report.instances_flagged} of {report.instances_analyzed} instances "
        f"({kinds}); search space reduction "
        f"{report.search_space_reduction:.2%}"
    )
