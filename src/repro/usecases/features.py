"""Scalar profile features shared by batch and streaming analysis.

The use-case rules originally reached straight into a profile's numpy
arrays, which ties them to a fully materialized event history.  The
streaming service (:mod:`repro.service`) cannot afford that — it folds
each event into per-instance state and discards it — so every quantity
a rule thresholds is factored out here into :class:`ProfileFeatures`,
an exact, order-insensitive summary small enough to keep per instance.

Two producers exist:

- :func:`features_of` extracts the features from a batch
  :class:`~repro.patterns.model.PatternAnalysis` with the same
  vectorized numpy expressions the rules used inline, and
- :class:`~repro.service.streaming.StreamingUseCaseEngine` accumulates
  the identical quantities incrementally, one event at a time.

Because both paths feed the same
:meth:`~repro.usecases.rules.Rule.evaluate_features` implementations,
streaming and batch analysis cannot drift apart: equal features imply
equal use cases *and* equal evidence dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

import numpy as np

from ..events.profile import NO_POSITION
from ..events.types import AccessKind, OperationKind, StructureKind
from ..patterns.model import AccessPattern

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..patterns.model import PatternAnalysis


@dataclass(frozen=True, slots=True)
class ProfileFeatures:
    """Everything the eight use-case rules measure, as plain scalars.

    Attributes
    ----------
    kind:
        Container species of the instance.
    total_events:
        Number of events in the profile (all operations, including
        transparent ``Init``/``ForAll`` markers).
    read_kind_events:
        Events whose trivial :class:`AccessKind` is ``READ``.
    op_counts:
        Event count per compound :class:`OperationKind` (zero entries
        may be omitted; use :meth:`count`).
    insert_front / insert_back (and delete/read twins):
        Positional events of that operation targeting the front
        (``position == 0``) resp. the back (``position >= size - 1``).
        An event can hit both ends of a one-element structure and then
        counts in both, exactly like the numpy masks it replaces.
    end_events:
        Events that hit the front or the back (each counted once).
    sort_count / last_sort_index:
        ``Sort`` operations seen, and the profile-relative index of the
        last one (``-1`` when none) — the Sort-After-Insert rule only
        needs the latest sort to decide "a sort follows this phase".
    trailing_writes / trailing_ops / trailing_distinct_positions /
    trailing_max_size:
        State of the write-without-read tail: non-``Init`` events after
        the last read-kind event, the operation kinds among them, how
        many distinct positions they touched, and the largest structure
        size they observed.
    patterns:
        The detected access patterns (maximal consistent runs), in
        ``start`` order.
    """

    kind: StructureKind
    total_events: int
    read_kind_events: int = 0
    op_counts: Mapping[OperationKind, int] = field(default_factory=dict)
    insert_front: int = 0
    insert_back: int = 0
    delete_front: int = 0
    delete_back: int = 0
    read_front: int = 0
    read_back: int = 0
    end_events: int = 0
    sort_count: int = 0
    last_sort_index: int = -1
    trailing_writes: int = 0
    trailing_ops: frozenset = frozenset()
    trailing_distinct_positions: int = 0
    trailing_max_size: int = 0
    patterns: tuple[AccessPattern, ...] = ()

    # -- derived quantities the rules threshold --------------------------

    def count(self, op: OperationKind) -> int:
        """Events with the given compound operation kind."""
        return self.op_counts.get(op, 0)

    @property
    def read_fraction(self) -> float:
        """Share of events that are trivial reads; 0.0 when empty."""
        if self.total_events == 0:
            return 0.0
        return self.read_kind_events / self.total_events

    @property
    def end_fraction(self) -> float:
        """Share of events that hit the front or back of the structure."""
        if self.total_events == 0:
            return 0.0
        return self.end_events / self.total_events

    def patterns_where(self, predicate) -> list[AccessPattern]:
        return [p for p in self.patterns if predicate(p)]

    def events_in(self, predicate) -> int:
        """Total events across patterns selected by ``predicate``."""
        return sum(p.length for p in self.patterns if predicate(p))

    def fraction_in(self, predicate) -> float:
        """Share of the profile's events inside matching patterns."""
        if self.total_events == 0:
            return 0.0
        return self.events_in(predicate) / self.total_events


def end_purity(count: int, front: int, back: int) -> tuple[str | None, float, int]:
    """Which end an operation targets and how consistently.

    Mirrors the rules' historical ``_end_purity`` mask arithmetic:
    ``count`` is every event of the operation (positional or not),
    ``front``/``back`` the positional subsets.  Returns ``(end, purity,
    count)`` where ``end`` is ``"front"`` / ``"back"`` / ``None``.
    """
    if count == 0:
        return None, 0.0, 0
    if front >= back:
        return "front", front / count, count
    return "back", back / count, count


def features_of(analysis: "PatternAnalysis") -> ProfileFeatures:
    """Extract :class:`ProfileFeatures` from a batch pattern analysis.

    Every expression matches what the rules previously computed inline
    from the profile's numpy arrays, so refactored rules return
    bit-identical evidence.
    """
    profile = analysis.profile
    n = len(profile)
    if n == 0:
        return ProfileFeatures(
            kind=profile.kind, total_events=0, patterns=analysis.patterns
        )

    ops = profile.ops
    kinds = profile.kinds
    positions = profile.positions
    sizes = profile.sizes

    has_pos = positions != NO_POSITION
    at_front = has_pos & (positions == 0)
    at_back = has_pos & (positions >= sizes - 1)

    def _front_back(op: OperationKind) -> tuple[int, int]:
        mask = ops == op
        return (
            int(np.count_nonzero(mask & at_front)),
            int(np.count_nonzero(mask & at_back)),
        )

    insert_front, insert_back = _front_back(OperationKind.INSERT)
    delete_front, delete_back = _front_back(OperationKind.DELETE)
    read_front, read_back = _front_back(OperationKind.READ)

    sort_indices = np.flatnonzero(ops == OperationKind.SORT)

    # Write-without-read tail: non-Init events after the last read.
    reads = np.flatnonzero(kinds == AccessKind.READ)
    first_trailing = int(reads[-1]) + 1 if reads.size else 0
    trailing = [
        i
        for i in range(first_trailing, n)
        if OperationKind(int(ops[i])) is not OperationKind.INIT
    ]
    trailing_ops = frozenset(OperationKind(int(ops[i])) for i in trailing)
    trailing_positions = {
        int(positions[i]) for i in trailing if positions[i] != NO_POSITION
    }
    trailing_max_size = max((int(sizes[i]) for i in trailing), default=0)

    return ProfileFeatures(
        kind=profile.kind,
        total_events=n,
        read_kind_events=int(np.count_nonzero(kinds == AccessKind.READ)),
        op_counts=profile.op_histogram(),
        insert_front=insert_front,
        insert_back=insert_back,
        delete_front=delete_front,
        delete_back=delete_back,
        read_front=read_front,
        read_back=read_back,
        end_events=int(np.count_nonzero(at_front | at_back)),
        sort_count=int(sort_indices.size),
        last_sort_index=int(sort_indices[-1]) if sort_indices.size else -1,
        trailing_writes=len(trailing),
        trailing_ops=trailing_ops,
        trailing_distinct_positions=len(trailing_positions),
        trailing_max_size=trailing_max_size,
        patterns=analysis.patterns,
    )
