"""Threshold parameters of the eight use-case rules.

All defaults are the values published in §III-B of the paper (tuned by
the authors on 23 benchmark programs).  They are grouped in a single
frozen dataclass so experiments can sweep them (the ablation benchmarks
do) without touching rule code.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True, slots=True)
class Thresholds:
    """Tuning knobs for all use-case rules (paper defaults).

    Long-Insert (LI)
        ``li_insert_fraction``: insertion phases must cover >30% of
        runtime.  ``li_long_phase``: a phase is *long* from 100
        consecutive access events.

    Implement-Queue (IQ)
        ``iq_rw_fraction``: reads+writes affecting the two ends must sum
        to >60% of all events.  ``iq_end_purity``: share of inserts
        (resp. removals) that must target a single end for the usage to
        count as queue-like.

    Sort-After-Insert (SAI)
        Same phase thresholds as LI (the paper reuses ">30% of runtime,
        >100 consecutive access events") plus a sort following the
        insertion phase.

    Frequent-Search (FS)
        ``fs_min_search_ops``: >1000 explicit search operations.
        ``fs_pattern_fraction``: searches are *frequent* when at least
        2% of all access events belong to Read-Forward/Backward
        patterns or explicit searches.

    Frequent-Long-Read (FLR)
        ``flr_min_patterns``: >10 sequential read patterns.
        ``flr_read_fraction``: ≥50% of access types must be Read or
        Search.  ``flr_min_coverage``: each pattern must read ≥50% of
        the data structure.

    Insert/Delete-Front (IDF), Stack-Implementation (SI),
    Write-Without-Read (WWR)
        The paper gives qualitative definitions; the quantitative knobs
        here operationalize them and are documented at each rule.
    """

    # Long-Insert
    li_insert_fraction: float = 0.30
    li_long_phase: int = 100

    # Implement-Queue
    iq_rw_fraction: float = 0.60
    iq_end_purity: float = 0.80
    iq_min_ops_per_end: int = 10

    # Sort-After-Insert
    sai_insert_fraction: float = 0.30
    sai_long_phase: int = 100

    # Frequent-Search
    fs_min_search_ops: int = 1000
    fs_pattern_fraction: float = 0.02

    # Frequent-Long-Read
    flr_min_patterns: int = 10
    flr_read_fraction: float = 0.50
    flr_min_coverage: float = 0.50
    #: Operational addition: a qualifying read pattern must span at
    #: least this many events.  The paper's FLR examples are scans over
    #: substantial lists; without a floor, tiny fixed-size working sets
    #: (e.g. a 4-slot Whetstone array read in full every cycle) would
    #: drown the result set in unparallelizable "long" reads.
    flr_min_pattern_length: int = 8
    #: Positional twin of ``flr_min_pattern_length``: a qualifying read
    #: pattern must also *traverse* at least this many positions.  For
    #: full captures (strict adjacency) the two floors coincide, so the
    #: default changes nothing; under a decimated capture the length
    #: floor shrinks with the sampling rate while the span floor does
    #: not — it is what keeps a tiny ring buffer's stitched-together
    #: micro-reads from impersonating a long scan.
    flr_min_pattern_span: int = 8

    # Insert/Delete-Front (sequential)
    idf_min_churn_ops: int = 8
    idf_min_resizes: int = 4

    # Stack-Implementation (sequential)
    si_min_inserts: int = 10
    si_min_deletes: int = 10
    si_end_purity: float = 0.90

    # Write-Without-Read (sequential)
    wwr_min_trailing_writes: int = 5
    wwr_min_coverage: float = 0.30

    def scaled(self, factor: float) -> "Thresholds":
        """Thresholds with all *count* knobs scaled by ``factor``.

        Small test workloads can't reach >1000 searches or 100-event
        phases; scaling preserves the rules' relative geometry.  Only
        absolute counts scale -- fractions are size-free.
        """
        return replace(
            self,
            li_long_phase=max(int(self.li_long_phase * factor), 2),
            sai_long_phase=max(int(self.sai_long_phase * factor), 2),
            fs_min_search_ops=max(int(self.fs_min_search_ops * factor), 1),
            flr_min_patterns=max(int(self.flr_min_patterns * factor), 1),
            flr_min_pattern_length=max(
                int(self.flr_min_pattern_length * factor), 2
            ),
            flr_min_pattern_span=max(int(self.flr_min_pattern_span * factor), 2),
            idf_min_churn_ops=max(int(self.idf_min_churn_ops * factor), 1),
            idf_min_resizes=max(int(self.idf_min_resizes * factor), 1),
            si_min_inserts=max(int(self.si_min_inserts * factor), 1),
            si_min_deletes=max(int(self.si_min_deletes * factor), 1),
            iq_min_ops_per_end=max(int(self.iq_min_ops_per_end * factor), 1),
            wwr_min_trailing_writes=max(int(self.wwr_min_trailing_writes * factor), 1),
        )

    def decimated(self, stride: int) -> "Thresholds":
        """Thresholds recalibrated for a 1-in-``stride`` decimated capture.

        Different from :meth:`scaled`, which shrinks a *workload*:
        decimation thins the event stream but leaves the workload's
        macroscopic structure intact, so the knobs split three ways.

        - Knobs that count **events** (phase lengths, op counts, the
          pattern-length floor) scale by ``1/stride`` — each run or
          phase keeps roughly every ``stride``-th of its events.
        - Knobs that count **patterns** (``flr_min_patterns``,
          ``idf_min_resizes``) do *not* scale — a scan is still one
          scan after decimation, only thinner.
        - **Fractions** don't scale, and the *positional* span floor
          (``flr_min_pattern_span``) doesn't either: sampling drops
          events, not distance.
        """
        if stride <= 1:
            return self
        factor = 1.0 / stride
        return replace(
            self,
            li_long_phase=max(int(self.li_long_phase * factor), 2),
            sai_long_phase=max(int(self.sai_long_phase * factor), 2),
            fs_min_search_ops=max(int(self.fs_min_search_ops * factor), 1),
            flr_min_pattern_length=max(
                int(self.flr_min_pattern_length * factor), 2
            ),
            idf_min_churn_ops=max(int(self.idf_min_churn_ops * factor), 1),
            idf_min_resizes=max(int(self.idf_min_resizes * factor), 1),
            si_min_inserts=max(int(self.si_min_inserts * factor), 1),
            si_min_deletes=max(int(self.si_min_deletes * factor), 1),
            iq_min_ops_per_end=max(int(self.iq_min_ops_per_end * factor), 1),
            wwr_min_trailing_writes=max(
                int(self.wwr_min_trailing_writes * factor), 1
            ),
        )


#: The paper's published configuration.
PAPER_THRESHOLDS = Thresholds()
