"""Per-client session state of the profiling daemon.

A *session* is the server-side life of one instrumented process: its
streaming engine, its resume cursor, and its ingest statistics.  The
session outlives any single TCP connection — a client that loses its
link reconnects with the same session id, the daemon reports how many
events it already accepted (``received``), and the client retransmits
from there; :meth:`Session.ingest` drops the overlap, so a
retransmitted window is never double-counted.

Between the socket and the engine sits an :class:`IngestPipeline`: a
bounded hand-off that decouples frame receipt from event folding.  Its
``overflow`` policy is the daemon's last line of defense when clients
outpace analysis:

``"block"``
    the connection thread waits for the folder — backpressure
    propagates to the client through TCP (lossless).
``"decimate"``
    keep 1-in-``stride`` events and count the rest as ``decimated`` —
    the same graceful degradation the in-process pipeline uses
    (:class:`~repro.events.sampling.Decimate`), trading exactness for
    liveness.
``"spill"``
    append overflow windows to a binary spill file
    (:class:`~repro.events.spill.SpillWriter`) and fold them during the
    next :meth:`~IngestPipeline.flush` — lossless and bounded-RAM, at
    the price of deferred analysis.  Once a window spills, every later
    window spills too until the file is replayed, preserving
    per-instance event order.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from collections import deque
from typing import Any, Callable

from ..events.event import RawEvent
from ..events.spill import SpillWriter, iter_spill_raw
from ..testing.clock import SYSTEM_CLOCK, Clock
from .protocol import ProtocolError
from .streaming import StreamingUseCaseEngine


class SessionState:
    """Lifecycle of a session (plain string constants for JSON)."""

    ACTIVE = "active"  # a connection is attached
    DETACHED = "detached"  # connection lost; waiting for resume or reaper
    FINISHED = "finished"  # FIN received or reaper finalized it


class RateMeter:
    """Sliding-window events/sec estimate (for STATS output)."""

    __slots__ = ("_window", "_samples", "_total", "_clock")

    def __init__(self, window: float = 10.0, clock: Clock = SYSTEM_CLOCK) -> None:
        self._window = window
        self._samples: deque[tuple[float, int]] = deque()
        self._total = 0
        self._clock = clock

    def tick(self, n: int) -> None:
        now = self._clock.monotonic()
        self._samples.append((now, n))
        self._total += n
        horizon = now - self._window
        while self._samples and self._samples[0][0] < horizon:
            _, dropped = self._samples.popleft()
            self._total -= dropped

    def rate(self, min_span: float = 0.0) -> float:
        """Events/sec over the window.  ``min_span`` floors the divisor
        so a burst in the first milliseconds of traffic reads as an
        average over at least that long — the admission controller
        passes 1.0 to keep one early window from tripping SHED."""
        if not self._samples:
            return 0.0
        now = self._clock.monotonic()
        horizon = now - self._window
        while self._samples and self._samples[0][0] < horizon:
            _, dropped = self._samples.popleft()
            self._total -= dropped
        if not self._samples:
            return 0.0
        span = max(now - self._samples[0][0], min_span, 1e-9)
        return self._total / span


class IngestPipeline:
    """Bounded hand-off between a receiving thread and a folding worker."""

    def __init__(
        self,
        fold: Callable[[list[RawEvent]], None],
        max_pending_events: int = 200_000,
        overflow: str = "block",
        decimate_stride: int = 10,
        spill_dir: str | None = None,
        block_timeout: float = 30.0,
    ) -> None:
        if overflow not in ("block", "decimate", "spill"):
            raise ValueError(
                f"overflow must be 'block', 'decimate' or 'spill', got {overflow!r}"
            )
        if decimate_stride < 1:
            raise ValueError(f"decimate_stride must be >= 1, got {decimate_stride}")
        self._fold = fold
        self._max_pending = max_pending_events
        self._overflow = overflow
        self._stride = decimate_stride
        self._spill_dir = spill_dir
        self._block_timeout = block_timeout

        self._lock = threading.Lock()
        self._has_work = threading.Condition(self._lock)
        self._has_room = threading.Condition(self._lock)
        self._queue: deque[list[RawEvent]] = deque()
        self._pending = 0
        self._accepted = 0
        self._folded = 0
        self._closing = False

        self.decimated = 0
        self.spilled = 0
        self.spill_corrupt_skipped = 0
        self._decim_counter = 0
        self._spill_writer: SpillWriter | None = None
        self._spill_path: str | None = None
        self._spill_backlog = 0

        self._worker = threading.Thread(
            target=self._run, name="dsspy-ingest-folder", daemon=True
        )
        self._worker.start()

    # -- receiving side --------------------------------------------------

    def submit(self, batch: list[RawEvent]) -> None:
        """Hand one window to the folder, applying the overflow policy."""
        if not batch:
            return
        with self._lock:
            if self._closing:
                raise RuntimeError("ingest pipeline already closed")
            over = self._pending + len(batch) > self._max_pending
            if self._overflow == "spill" and (over or self._spill_backlog):
                self._spill_locked(batch)
                return
            if over and self._overflow == "decimate":
                batch, dropped = self._decimate(batch)
                self.decimated += dropped
                if not batch:
                    return
            elif over:  # block
                deadline = time.monotonic() + self._block_timeout
                while self._pending + len(batch) > self._max_pending:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            "ingest folder did not catch up within "
                            f"{self._block_timeout}s"
                        )
                    self._has_room.wait(remaining)
                    if self._closing:
                        raise RuntimeError("ingest pipeline already closed")
            self._queue.append(batch)
            self._pending += len(batch)
            self._accepted += len(batch)
            self._has_work.notify()

    def _decimate(self, batch: list[RawEvent]) -> tuple[list[RawEvent], int]:
        stride = self._stride
        counter = self._decim_counter
        kept = [raw for i, raw in enumerate(batch, counter) if i % stride == 0]
        self._decim_counter = counter + len(batch)
        return kept, len(batch) - len(kept)

    def _spill_locked(self, batch: list[RawEvent]) -> None:
        if self._spill_writer is None:
            fd, path = tempfile.mkstemp(
                prefix="dsspy-ingest-", suffix=".spill", dir=self._spill_dir
            )
            os.close(fd)
            self._spill_writer = SpillWriter(path)
            self._spill_path = path
        self._spill_writer.write_batch(batch)
        self._spill_backlog += len(batch)
        self.spilled += len(batch)
        self._accepted += len(batch)

    # -- folding side ----------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closing:
                    self._has_work.wait()
                if not self._queue and self._closing:
                    return
                batch = self._queue.popleft()
            try:
                self._fold(batch)
            finally:
                with self._lock:
                    self._pending -= len(batch)
                    self._folded += len(batch)
                    self._has_room.notify_all()
                    self._has_work.notify_all()  # flush waiters

    def _replay_spill(self) -> None:
        """Fold the spill backlog (receiver must be quiescent or keep
        spilling, which :meth:`submit` guarantees via the backlog flag)."""
        with self._lock:
            writer = self._spill_writer
            if writer is None:
                return
            writer.close()
            path = self._spill_path
            self._spill_writer = None
            self._spill_path = None
            backlog = self._spill_backlog
        def count_skips(n: int) -> None:
            # Surfaced through session STATS ("spill_corrupt_skipped"):
            # a corrupt record dropped here is data loss and must be
            # visible to operators, not just a RuntimeWarning.
            self.spill_corrupt_skipped += n

        window: list[RawEvent] = []
        for raw in iter_spill_raw(path, on_skip=count_skips):
            window.append(raw)
            if len(window) >= 4096:
                self._fold(window)
                self._folded += len(window)
                window = []
        if window:
            self._fold(window)
            self._folded += len(window)
        os.unlink(path)
        with self._lock:
            self._spill_backlog -= backlog

    def flush(self, timeout: float = 30.0) -> None:
        """Block until everything accepted so far has been folded."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while self._queue or self._pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError("ingest folder did not drain in time")
                self._has_work.wait(remaining)
        if self._spill_backlog:
            self._replay_spill()

    @property
    def accepted(self) -> int:
        return self._accepted

    @property
    def folded(self) -> int:
        return self._folded

    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending + self._spill_backlog

    def close(self, timeout: float = 30.0) -> None:
        """Flush, then stop the worker thread.  Idempotent."""
        if self._closing and not self._worker.is_alive():
            return
        self.flush(timeout)
        with self._lock:
            self._closing = True
            self._has_work.notify_all()
            self._has_room.notify_all()
        self._worker.join(timeout)

    def abort(self, timeout: float = 5.0) -> None:
        """Stop immediately, discarding queued work.  Used to simulate
        (and clean up after) an abrupt daemon death: whatever was not
        folded is exactly what crash recovery must replay."""
        with self._lock:
            self._closing = True
            self._queue.clear()
            self._pending = 0
            self._has_work.notify_all()
            self._has_room.notify_all()
        self._worker.join(timeout)
        if self._spill_writer is not None:
            self._spill_writer.close()


class Session:
    """One client's engine + resume cursor + statistics.

    With a :class:`~repro.service.durability.SessionJournal` attached,
    every accepted window is journaled *before* the ``received`` cursor
    advances, and two cursors are kept: ``received`` (durably journaled
    and claimable to the client) and ``applied`` (handed to the engine,
    or intentionally decimated).  Their difference is the *deferred*
    backlog of journal-only admission; it is replayed — in journal
    order, preserving per-instance order — as soon as pressure drops,
    and always before the final report.
    """

    def __init__(
        self,
        session_id: str,
        engine: StreamingUseCaseEngine,
        max_pending_events: int = 200_000,
        overflow: str = "block",
        spill_dir: str | None = None,
        clock: Clock = SYSTEM_CLOCK,
        journal=None,
        checkpoint_every: int = 0,
        decimate_stride: int = 10,
        governor=None,
    ) -> None:
        self.session_id = session_id
        self.engine = engine
        self.state = SessionState.ACTIVE
        self.received = 0  # stream-index high-water mark (accepted)
        self.applied = 0  # events handed to the engine path
        self.duplicates = 0
        self.admission_decimated = 0
        self.refused_windows = 0  # windows turned away under resource pressure
        self.forced_checkpoints = 0  # journal-compact rung compactions
        self.recovered = False
        self._governor = governor
        self.last_stage = 0  # AdmissionStage.NORMAL
        #: Wire-protocol version negotiated with the client currently
        #: attached to this session (None until a HELLO negotiates).
        self.proto_version: int | None = None
        self.journal = journal
        self._checkpoint_every = checkpoint_every
        self._last_checkpoint = 0
        self._admission_stride = max(1, decimate_stride)
        self._admission_counter = 0
        self._clock = clock
        self.started_at = clock.wall()
        self.last_seen = clock.monotonic()
        self.detached_at: float | None = None
        self.finished_at: float | None = None
        self.rate = RateMeter(clock=clock)
        self._lock = threading.RLock()
        self._report_dict: dict[str, Any] | None = None
        self.pipeline = IngestPipeline(
            engine.feed_window,
            max_pending_events=max_pending_events,
            overflow=overflow,
            spill_dir=spill_dir,
        )

    @property
    def deferred(self) -> int:
        """Events journaled but not yet analyzed (journal-only stage)."""
        return self.received - self.applied

    # -- ingest ----------------------------------------------------------

    def touch(self) -> None:
        self.last_seen = self._clock.monotonic()

    def ingest(self, start: int, raws: list[RawEvent], stage: int = 0) -> int:
        """Accept one EVENTS window; returns how many events were new.

        ``start`` is the stream index of the window's first event.  A
        window that begins past the high-water mark means events were
        lost in transit (a client bug — the protocol retransmits from
        ``received``), which is a hard protocol error.  A window that
        begins below it is a retransmission; the overlap is skipped.

        ``stage`` is the admission controller's verdict for this
        window (:class:`~repro.service.durability.AdmissionStage`);
        SHED never reaches here — the daemon refuses the window before
        calling in.  A journal append that fails on a resource error
        (disk full, fd exhaustion) raises
        :class:`~repro.service.governor.ResourcePressure` with the
        cursor untouched: the window is *refused*, never half-accepted,
        and the client's backoff retransmits it — after a best-effort
        compaction attempt to free journal segments.
        """
        from .durability import AdmissionStage
        from .governor import ResourcePressure, is_resource_error

        with self._lock:
            if self.state == SessionState.FINISHED:
                raise ProtocolError(f"session {self.session_id} already finished")
            if start > self.received:
                raise ProtocolError(
                    f"event gap: window starts at {start} but only "
                    f"{self.received} events were received"
                )
            skip = self.received - start
            if skip >= len(raws):
                self.duplicates += len(raws)
                return 0
            fresh = raws[skip:] if skip else raws
            self.duplicates += skip
            # Durability barrier: the journal append happens before the
            # cursor moves, so a cursor the client ever observes only
            # covers events that survive a daemon death.
            if self.journal is not None:
                try:
                    self.journal.append_events(self.received, fresh)
                except OSError as exc:
                    if not is_resource_error(exc):
                        raise
                    # The governor was already notified by the journal;
                    # try to reclaim disk, then refuse the window with
                    # full accounting.
                    self._compact_locked(best_effort=True)
                    self.refused_windows += 1
                    if self._governor is not None:
                        self._governor.note_refused()
                    retry = (
                        self._governor.retry_after
                        if self._governor is not None
                        else 2.0
                    )
                    raise ResourcePressure(
                        f"session {self.session_id}: journal append "
                        f"refused under resource pressure ({exc})",
                        retry_after=retry,
                    ) from exc
            self.received += len(fresh)
            self.touch()
            self.rate.tick(len(fresh))
            if self.journal is None and stage >= AdmissionStage.JOURNAL:
                stage = AdmissionStage.DECIMATE  # cannot defer without a journal
            self.last_stage = stage
            if self.journal is not None and (
                stage >= AdmissionStage.JOURNAL or self.applied < self.received - len(fresh)
            ):
                # Journal-only: analysis deferred.  Sticky — once any
                # window is deferred, later windows defer too until the
                # backlog is replayed, preserving per-instance order.
                if stage < AdmissionStage.JOURNAL:
                    self._drain_deferred_locked()
                return len(fresh)
            if stage == AdmissionStage.DECIMATE:
                fresh, dropped = self._admission_decimate(fresh)
                self.admission_decimated += dropped
            # Submit under the session lock: the cursor advance and the
            # hand-off must be atomic or two racing windows could fold
            # out of order.  (The folder never takes this lock, so
            # blocking backpressure cannot deadlock.)
            self.applied = self.received
            if fresh:
                self.pipeline.submit(fresh)
            if stage == AdmissionStage.JOURNAL_COMPACT:
                # Disk-pressure rung: checkpoint *now* — pruning the
                # journal segments behind it is what frees space.
                self._compact_locked()
            else:
                self._maybe_checkpoint_locked()
        return self.received - start - skip

    def _admission_decimate(self, batch: list[RawEvent]) -> tuple[list[RawEvent], int]:
        stride = self._admission_stride
        counter = self._admission_counter
        kept = [raw for i, raw in enumerate(batch, counter) if i % stride == 0]
        self._admission_counter = counter + len(batch)
        return kept, len(batch) - len(kept)

    def _drain_deferred_locked(self) -> None:
        """Replay the journal-only backlog into the pipeline (caller
        holds the lock).  Windows come back in journal append order, so
        per-instance order — the convergence precondition — holds."""
        if self.journal is None or self.applied >= self.received:
            return
        for _start, raws in self.journal.iter_event_windows(self.applied):
            self.pipeline.submit(raws)
            self.applied += len(raws)

    def _maybe_checkpoint_locked(self) -> None:
        """Checkpoint when enough new events accumulated (caller holds
        the lock).  Only sound with no deferred backlog — pruning the
        journal must never delete events the engine has not seen."""
        if (
            self.journal is None
            or self._checkpoint_every <= 0
            or self.applied != self.received
            or self.received - self._last_checkpoint < self._checkpoint_every
        ):
            return
        try:
            # The engine must be quiescent and complete up to `applied`
            # before its state can stand in for the journal prefix.
            self.pipeline.flush(timeout=5.0)
        except TimeoutError:
            return  # folder busy; try again on a later window
        try:
            self.journal.checkpoint(self._checkpoint_state())
        except OSError:
            # Recorded by the journal/governor; the old checkpoint and
            # every segment are intact, so skipping is always safe.
            return
        self._last_checkpoint = self.received

    def _compact_locked(self, best_effort: bool = False) -> None:
        """Force a checkpoint to prune journal segments (caller holds
        the lock).  Only sound when the engine covers every received
        event; a deferred backlog or a busy folder skips silently —
        compaction is pressure relief, not a correctness step."""
        if (
            self.journal is None
            or self.applied != self.received
            or self.received == self._last_checkpoint
        ):
            return
        try:
            self.pipeline.flush(timeout=1.0 if best_effort else 5.0)
            self.journal.checkpoint(self._checkpoint_state())
        except (TimeoutError, OSError):
            return
        self._last_checkpoint = self.received
        self.forced_checkpoints += 1
        if self._governor is not None:
            self._governor.note_compaction()

    def _checkpoint_state(self) -> dict[str, Any]:
        from ..buildinfo import build_info
        from .durability import CHECKPOINT_VERSION, engine_to_dict

        return {
            "version": CHECKPOINT_VERSION,
            "session": self.session_id,
            "received": self.received,
            "applied": self.applied,
            "duplicates": self.duplicates,
            # v2: which build (and which format generations) wrote
            # this checkpoint — the first thing to look at when a
            # mixed-version fleet misbehaves.
            "format": build_info(),
            "engine": engine_to_dict(self.engine),
        }

    def compact(self) -> bool:
        """Force a checkpoint to shrink the on-disk journal; the
        daemon's state-budget enforcement calls this on the fattest
        sessions first.  Returns whether a checkpoint was written."""
        with self._lock:
            before = self.forced_checkpoints
            self._compact_locked()
            return self.forced_checkpoints > before

    def journal_bytes(self) -> int:
        """On-disk footprint of this session's journal (0 without one)."""
        journal = self.journal
        return journal.size_bytes() if journal is not None else 0

    def register(self, instance_id: int, kind, site, label) -> None:
        with self._lock:
            if self.journal is not None:
                from .durability import _site_to_dict

                self.journal.append_register(
                    [
                        {
                            "id": instance_id,
                            "kind": kind.value,
                            "site": _site_to_dict(site),
                            "label": label,
                        }
                    ]
                )
            self.engine.register_instance(instance_id, kind, site=site, label=label)
            self.touch()

    # -- lifecycle -------------------------------------------------------

    def detach(self) -> None:
        with self._lock:
            if self.state == SessionState.ACTIVE:
                self.state = SessionState.DETACHED
                self.detached_at = self._clock.monotonic()

    def resume(self) -> bool:
        """Reattach a connection; ``True`` if this was a resume."""
        with self._lock:
            if self.state == SessionState.FINISHED:
                raise ProtocolError(f"session {self.session_id} already finished")
            resumed = self.state == SessionState.DETACHED
            self.state = SessionState.ACTIVE
            self.detached_at = None
            self.touch()
            return resumed

    def finish(self) -> dict[str, Any]:
        """Flush the pipeline, freeze the final report, return it as a
        JSON-ready dict.  Idempotent — a second FIN gets the same
        report.  Any journal-only backlog is replayed first: the final
        report always covers every received event."""
        from ..usecases.json_export import report_to_dict

        with self._lock:
            if self._report_dict is None:
                self._drain_deferred_locked()
                self.pipeline.close()
                self._report_dict = report_to_dict(self.engine.report())
                self.state = SessionState.FINISHED
                self.finished_at = self._clock.monotonic()
                if self.journal is not None:
                    try:
                        self.journal.append_fin()
                    except OSError:
                        # Every event the report covers is already
                        # journaled; the FIN marker only lets recovery
                        # skip the replay-and-report step.  A full disk
                        # here must not turn a finished session into an
                        # unackable retry loop — the journal already
                        # classified the failure with the governor.
                        pass
                    self.journal.close()
            return self._report_dict

    def abandon(self) -> None:
        """Tear down without flushing or reporting — the session is
        dying with its daemon (a real or simulated crash).  Whatever
        the pipeline had not folded stays only in the journal, which
        is exactly what recovery replays."""
        with self._lock:
            self.pipeline.abort()
            if self.journal is not None:
                self.journal.close()

    def park(self) -> None:
        """Quiesce for a rolling upgrade: drain the deferred backlog,
        flush the pipeline, write a final checkpoint under the same
        barrier discipline as :meth:`_maybe_checkpoint_locked`, and
        close the journal *without* deleting it.  The next daemon
        generation resumes from the checkpoint (plus any journal tail)
        with the exact ``received`` cursor, so clients reconnecting
        after the upgrade retransmit nothing they do not have to.

        Best-effort by design: a flush timeout or a failing disk skips
        the checkpoint — the journal already holds every accepted
        window, so recovery replays instead of resuming, trading
        restart latency for zero loss."""
        with self._lock:
            if self.state == SessionState.FINISHED:
                # Report already frozen (and FIN journaled); finish()
                # closed the journal. Nothing to quiesce.
                return
            try:
                self._drain_deferred_locked()
                self.pipeline.close()
                if self.journal is not None:
                    self.journal.checkpoint(self._checkpoint_state())
            except (OSError, TimeoutError):
                self.pipeline.abort()
            finally:
                if self.journal is not None:
                    self.journal.close()
                self.state = SessionState.DETACHED
                self.detached_at = self._clock.monotonic()

    def delete_journal(self) -> None:
        """Remove the session's on-disk journal (eviction/cleanup)."""
        if self.journal is not None:
            self.journal.delete()

    def snapshot(self, flush_timeout: float = 5.0) -> dict[str, Any]:
        """Serialized engine state + cursors, for fleet-wide merging.

        The engine must be quiescent while it is serialized, so the
        deferred backlog is drained and the pipeline flushed first
        (holding the session lock keeps new windows out, exactly as
        :meth:`_maybe_checkpoint_locked` does).  Raises
        :class:`TimeoutError` when the folder cannot drain in time —
        the coordinator retries on its next merge pass rather than
        reading a torn engine.
        """
        from .durability import engine_to_dict

        with self._lock:
            if self.state != SessionState.FINISHED:
                self._drain_deferred_locked()
                self.pipeline.flush(timeout=flush_timeout)
            return {
                "session": self.session_id,
                "state": self.state,
                "received": self.received,
                "applied": self.applied,
                "engine": engine_to_dict(self.engine),
            }

    # -- observability ---------------------------------------------------

    def stats(self) -> dict[str, Any]:
        from .durability import AdmissionStage

        with self._lock:
            engine = self.engine
            return {
                "session": self.session_id,
                "state": self.state,
                "received": self.received,
                "folded": engine.events_folded,
                "pending": self.pipeline.pending,
                "duplicates": self.duplicates,
                "decimated": self.pipeline.decimated + self.admission_decimated,
                "spilled": self.pipeline.spilled,
                "spill_corrupt_skipped": self.pipeline.spill_corrupt_skipped,
                "refused_windows": self.refused_windows,
                "forced_checkpoints": self.forced_checkpoints,
                "append_failures": (
                    self.journal.append_failures if self.journal is not None else 0
                ),
                "dropped_unknown_instance": engine.unknown_instance_events,
                "instances": engine.instances_analyzed,
                "events_per_sec": round(self.rate.rate(), 1),
                "deferred": self.deferred,
                "checkpoints": (
                    self.journal.checkpoints if self.journal is not None else 0
                ),
                "journaled": self.journal is not None,
                "recovered": self.recovered,
                "proto": self.proto_version,
                "pressure": AdmissionStage.name(
                    self._governor.pressure_stage()
                    if self._governor is not None
                    else 0
                ),
                "stage": AdmissionStage.name(self.last_stage),
                "flagged": {
                    str(iid): kinds for iid, kinds in engine.flagged_kinds().items()
                },
            }
