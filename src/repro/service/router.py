"""Session-affine accept-loop router for the worker fleet.

One :class:`SessionRouter` fronts N :class:`~repro.service.ProfilingDaemon`
worker processes.  Clients dial the router as if it were the daemon;
the router reads the first frame of each connection and either

- **answers it itself** — STATS and SNAPSHOT are observability
  queries, so the router fans them out to every worker and returns the
  aggregated view (this is what makes ``dsspy sessions ROUTER_ADDR``
  and the fleet coordinator work against a single address), or
- **routes the connection** — a HELLO is pinned to the worker chosen
  by :func:`shard_for` over its session id, after which the router is
  a dumb byte pump in both directions until either side hangs up.

Hashing the *session id* (not the connection) is what gives the fleet
its sharding invariant: a client that reconnects to resume lands on
the worker that holds its session state, journal, and engine.  A HELLO
that carries no session id is assigned one by the router — the frame
is rewritten before forwarding, so the id the worker sees, the id the
client learns from its ACK, and the id the hash routed on are all the
same string.

The router deliberately terminates no protocol state: workers keep
their own sessions, journals, and admission ladders.  If the chosen
worker is down (e.g. between a crash and its supervised restart) the
router answers the HELLO with an ERROR frame; the client's reconnect
backoff retries and lands on the restarted worker.
"""

from __future__ import annotations

import hashlib
import socket
import threading
from typing import Any

from .protocol import (
    MessageType,
    ProtocolError,
    decode_json,
    encode_json,
    recv_frame,
)


def shard_for(session_id: str, n_workers: int) -> int:
    """Stable worker index for a session id.

    sha1 rather than ``hash()``: the assignment must agree across
    processes and interpreter runs (PYTHONHASHSEED randomizes ``str``
    hashing), because the supervisor rebalances on-disk session
    directories with the same function the router routes live
    connections with.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    digest = hashlib.sha1(session_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n_workers


class SessionRouter:
    """Accept-loop front for a fixed-size worker fleet.

    ``workers`` is a list of dialable ``host:port`` addresses, indexed
    by shard number.  The list is mutable through :meth:`set_worker` —
    the supervisor updates an entry when it restarts a crashed worker
    (the address normally stays the same, since restarts reuse the
    port, but the hook keeps the router correct if it ever cannot).
    """

    def __init__(
        self,
        workers: list[str],
        host: str = "127.0.0.1",
        port: int = 0,
        connect_timeout: float = 5.0,
    ) -> None:
        if not workers:
            raise ValueError("a router needs at least one worker address")
        self._workers = list(workers)
        self._workers_lock = threading.Lock()
        self._draining: set[int] = set()
        self.drain_refusals = 0  # HELLOs turned away from draining shards
        self.drain_retry_after = 0.5
        #: Workers cycled through an upgrade — maintained by the
        #: supervisor so wire STATS readers (``dsspy fleet upgrade
        #: --address``) can watch a rolling upgrade converge.
        self.upgrades = 0
        self._connect_timeout = connect_timeout
        self._closed = False
        self._close_lock = threading.Lock()
        self._conns: dict[int, socket.socket] = {}
        self._conns_lock = threading.Lock()
        self.routed = 0  # connections pinned to a worker (stats counter)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self._listener.listen(128)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dsspy-router-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    def workers(self) -> list[str]:
        with self._workers_lock:
            return list(self._workers)

    def set_worker(self, index: int, address: str) -> None:
        with self._workers_lock:
            self._workers[index] = address

    def set_draining(self, index: int, draining: bool) -> None:
        """Mark one shard as draining for a rolling upgrade.

        While marked, new HELLOs hashing to that shard are answered
        with RETRY_AFTER instead of being routed — clients back off
        and land after the respawned worker is serving again.
        Connections already pumped are left alone; the worker's own
        drain quiesces them."""
        with self._workers_lock:
            if draining:
                self._draining.add(index)
            else:
                self._draining.discard(index)

    def worker_for(self, session_id: str) -> str:
        with self._workers_lock:
            return self._workers[shard_for(session_id, len(self._workers))]

    def _drain_check(self, session_id: str) -> bool:
        with self._workers_lock:
            return shard_for(session_id, len(self._workers)) in self._draining

    # -- accept / dispatch -----------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._handle,
                args=(conn,),
                name="dsspy-router-conn",
                daemon=True,
            )
            thread.start()

    def _handle(self, conn: socket.socket) -> None:
        key = id(conn)
        with self._conns_lock:
            self._conns[key] = conn
        upstream: socket.socket | None = None
        try:
            while True:
                frame = recv_frame(conn)
                if frame is None:
                    return  # clean EOF before (or between) queries
                mtype, payload = frame
                if mtype == MessageType.STATS:
                    conn.sendall(encode_json(MessageType.ACK, self.stats()))
                elif mtype == MessageType.SNAPSHOT:
                    req = decode_json(payload)
                    conn.sendall(
                        encode_json(
                            MessageType.ACK, self.snapshot(req.get("session"))
                        )
                    )
                elif mtype == MessageType.HELLO:
                    upstream = self._route(conn, payload)
                    return  # _route pumped until EOF (or failed and replied)
                else:
                    raise ProtocolError(
                        f"{MessageType.name(mtype)} before HELLO"
                    )
        except ProtocolError as exc:
            try:
                conn.sendall(encode_json(MessageType.ERROR, {"error": str(exc)}))
            except OSError:
                pass
        except OSError:
            pass
        finally:
            with self._conns_lock:
                self._conns.pop(key, None)
            for sock in (conn, upstream):
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass

    def _route(
        self, conn: socket.socket, hello_payload: bytes
    ) -> socket.socket | None:
        """Pin ``conn`` to its session's worker and pump bytes until
        either side closes.  Returns the upstream socket (for cleanup)
        or ``None`` when the worker was unreachable."""
        obj = decode_json(hello_payload)
        session_id = obj.get("session")
        if session_id is None:
            # Assign the id here so the hash, the worker, and the
            # client all agree on it; the worker honors a caller-chosen
            # id, so rewriting the HELLO is transparent to it.
            import uuid

            session_id = uuid.uuid4().hex[:12]
            obj["session"] = session_id
        elif not isinstance(session_id, str):
            raise ProtocolError("HELLO 'session' must be a string")
        if self._drain_check(session_id):
            # The shard is mid-upgrade: refuse with the same contract
            # the admission ladder uses, so the client's existing
            # backoff machinery handles the deploy for free.
            self.drain_refusals += 1
            try:
                conn.sendall(
                    encode_json(
                        MessageType.RETRY_AFTER,
                        {"retry_after": self.drain_retry_after},
                    )
                )
            except OSError:
                pass
            return None
        address = self.worker_for(session_id)
        try:
            upstream = _dial(address, self._connect_timeout)
        except OSError as exc:
            try:
                conn.sendall(
                    encode_json(
                        MessageType.ERROR,
                        {"error": f"worker {address} unreachable: {exc}"},
                    )
                )
            except OSError:
                pass
            return None
        self.routed += 1
        upstream.sendall(encode_json(MessageType.HELLO, obj))
        # From here on the router adds nothing: splice raw bytes both
        # ways.  The reverse pump runs on its own thread; this thread
        # pumps client -> worker and joins on EOF either way.
        done = threading.Event()
        reverse = threading.Thread(
            target=_pump,
            args=(upstream, conn, done),
            name="dsspy-router-pump",
            daemon=True,
        )
        reverse.start()
        _pump(conn, upstream, done)
        reverse.join(timeout=5.0)
        return upstream

    # -- aggregated observability ----------------------------------------

    def stats(self) -> dict[str, Any]:
        """Fleet-wide STATS: per-worker summaries + concatenated
        session list, shaped like a single daemon's reply so existing
        consumers (``dsspy sessions``) render it unchanged."""
        from .client import fetch_stats

        sessions: list[dict[str, Any]] = []
        worker_rows: list[dict[str, Any]] = []
        for index, address in enumerate(self.workers()):
            row: dict[str, Any] = {"worker": index, "address": address}
            try:
                stats = fetch_stats(address, timeout=self._connect_timeout)
            except (OSError, ProtocolError) as exc:
                row["error"] = str(exc)
            else:
                row["sessions"] = len(stats["sessions"])
                row["recovered_sessions"] = stats.get("recovered_sessions", [])
                row["build"] = stats.get("build")
                row["frames_skipped"] = stats.get("frames_skipped", 0)
                governor = stats.get("admission", {}).get(
                    "governor", stats.get("governor", {})
                )
                row["pressure"] = governor.get("pressure_stage")
                for entry in stats["sessions"]:
                    entry["worker"] = index
                    sessions.append(entry)
            with self._workers_lock:
                row["draining"] = index in self._draining
            worker_rows.append(row)
        return {
            "address": self.address,
            "fleet": True,
            "routed_connections": self.routed,
            "drain_refusals": self.drain_refusals,
            "upgrades": self.upgrades,
            "workers": worker_rows,
            "sessions": sessions,
        }

    def snapshot(self, session_id: str | None = None) -> dict[str, Any]:
        """Fleet-wide SNAPSHOT: engine states from every worker, in one
        reply shaped like a single daemon's.  Worker fetch failures are
        surfaced under ``"errors"`` — a partial merge must be visible."""
        from .client import fetch_snapshot

        if session_id is not None:
            # Session-narrowed queries go straight to the owning shard.
            address = self.worker_for(session_id)
            out = fetch_snapshot(
                address, session=session_id, timeout=self._connect_timeout
            )
            out["address"] = self.address
            return out
        snapshots: list[dict[str, Any]] = []
        errors: list[dict[str, Any]] = []
        for index, address in enumerate(self.workers()):
            try:
                reply = fetch_snapshot(address, timeout=self._connect_timeout)
            except (OSError, ProtocolError) as exc:
                errors.append(
                    {"worker": index, "address": address, "error": str(exc)}
                )
                continue
            for snap in reply["snapshots"]:
                snap["worker"] = index
                snapshots.append(snap)
            errors.extend(reply.get("errors", []))
        out: dict[str, Any] = {"address": self.address, "snapshots": snapshots}
        if errors:
            out["errors"] = errors
        return out

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=5.0)
        with self._conns_lock:
            conns = list(self._conns.values())
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def __enter__(self) -> "SessionRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _dial(address: str, timeout: float) -> socket.socket:
    from .client import parse_address

    family, connect_arg = parse_address(address)
    sock = socket.socket(family, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(connect_arg)
    sock.settimeout(None)
    return sock


def _pump(src: socket.socket, dst: socket.socket, done: threading.Event) -> None:
    """Copy bytes ``src`` -> ``dst`` until EOF or error, then signal the
    peer pump by shutting both sockets down (recv unblocks with EOF)."""
    try:
        while not done.is_set():
            data = src.recv(65536)
            if not data:
                break
            dst.sendall(data)
    except OSError:
        pass
    finally:
        done.set()
        for sock in (src, dst):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
