"""Bounded-memory streaming use-case analysis.

The batch pipeline keeps every event until the program ends, then runs
segmentation, numpy aggregation, and the rules over the full history.
A long-running daemon cannot do that — a day of profiling is billions
of events — so :class:`StreamingUseCaseEngine` folds each event into
per-instance state the moment it arrives and discards it.  Memory is
O(instances + completed runs), never O(events).

Convergence with batch analysis is by construction, not by
approximation, and rests on two facts:

- every scalar the rules threshold is an order-preserving fold
  (:class:`~repro.usecases.features.ProfileFeatures` counters), and the
  fold here mirrors the numpy expressions of
  :func:`~repro.usecases.features.features_of` exactly — including
  their edge conventions (an event can count as both front *and* back
  on a one-element structure; ``position >= size - 1`` is evaluated
  without a ``size == 0`` guard, as in the vectorized mask);
- phase segmentation is already incremental: the same per-thread
  :class:`~repro.patterns.phases._RunBuilder` the batch ``segment()``
  drives is driven here, one event at a time, with the identical
  transparent/breaker/feed decision order.

Feeding the same events in the same per-instance order therefore
yields the identical features, and — through the shared
:func:`~repro.usecases.engine.evaluate_rules` — identical use cases
with identical evidence.
"""

from __future__ import annotations

from ..events.event import RawEvent
from ..events.profile import AllocationSite, RuntimeProfile
from ..events.types import AccessKind, OperationKind, StructureKind
from ..patterns.detector import DetectorConfig, classify_run
from ..patterns.model import AccessPattern, PatternAnalysis, PatternType
from ..patterns.phases import _BREAKERS, _RUN_OPS, _TRANSPARENT, _RunBuilder
from ..usecases.engine import UseCaseReport, evaluate_rules
from ..usecases.features import ProfileFeatures
from ..usecases.model import UseCase, UseCaseKind
from ..usecases.rules import ALL_RULES, Rule
from ..usecases.thresholds import PAPER_THRESHOLDS, Thresholds
from ..whatif.dag import LaneSummary

_READ = int(AccessKind.READ)
_INSERT = int(OperationKind.INSERT)
_DELETE = int(OperationKind.DELETE)
_OP_READ = int(OperationKind.READ)
_SORT = int(OperationKind.SORT)
_INIT = int(OperationKind.INIT)


class _InstanceFold:
    """All per-instance analysis state, updated one event at a time."""

    __slots__ = (
        "instance_id",
        "kind",
        "site",
        "label",
        "max_gap",
        "index",
        "read_kind",
        "op_counts",
        "insert_front",
        "insert_back",
        "delete_front",
        "delete_back",
        "read_front",
        "read_back",
        "end_events",
        "sort_count",
        "last_sort_index",
        "trailing",
        "trailing_ops",
        "trailing_positions",
        "trailing_max_size",
        "builders",
        "completed_runs",
        "lanes",
    )

    def __init__(
        self,
        instance_id: int,
        kind: StructureKind,
        site: AllocationSite | None,
        label: str,
        max_gap: int,
    ) -> None:
        self.instance_id = instance_id
        self.kind = kind
        self.site = site
        self.label = label
        self.max_gap = max_gap
        self.index = 0  # profile-relative event index (matches enumerate())
        self.read_kind = 0
        self.op_counts: dict[int, int] = {}
        self.insert_front = 0
        self.insert_back = 0
        self.delete_front = 0
        self.delete_back = 0
        self.read_front = 0
        self.read_back = 0
        self.end_events = 0
        self.sort_count = 0
        self.last_sort_index = -1
        self.trailing = 0
        self.trailing_ops: set[int] = set()
        self.trailing_positions: set[int] = set()
        self.trailing_max_size = 0
        self.builders: dict[int, _RunBuilder] = {}
        self.completed_runs: list = []
        # Happens-before lane summary for the what-if profiler: O(threads)
        # state that survives checkpoints, because the events themselves
        # are discarded after this fold (the bug ISSUE 8 fixes).
        self.lanes = LaneSummary()

    def feed(self, raw: RawEvent) -> None:
        _, op, kind, position, size, thread_id, _ = raw
        i = self.index
        self.index = i + 1
        self.lanes.feed(thread_id, kind == _READ)

        # -- scalar aggregates (features_of's numpy masks, one row) -----
        counts = self.op_counts
        counts[op] = counts.get(op, 0) + 1

        # Write-without-read tail: non-Init events after the last
        # read-kind event.  A read resets the tail; an Init neither
        # joins nor resets it.
        if kind == _READ:
            self.read_kind += 1
            if self.trailing:
                self.trailing = 0
                self.trailing_ops.clear()
                self.trailing_positions.clear()
                self.trailing_max_size = 0
        elif op != _INIT:
            self.trailing += 1
            self.trailing_ops.add(op)
            if position is not None:
                self.trailing_positions.add(position)
            if size > self.trailing_max_size:
                self.trailing_max_size = size

        if position is not None:
            at_front = position == 0
            at_back = position >= size - 1  # numpy mask convention
            if at_front or at_back:
                self.end_events += 1
            if op == _INSERT:
                if at_front:
                    self.insert_front += 1
                if at_back:
                    self.insert_back += 1
            elif op == _DELETE:
                if at_front:
                    self.delete_front += 1
                if at_back:
                    self.delete_back += 1
            elif op == _OP_READ:
                if at_front:
                    self.read_front += 1
                if at_back:
                    self.read_back += 1

        if op == _SORT:
            self.sort_count += 1
            self.last_sort_index = i

        # -- run building (segment()'s loop body, one iteration) --------
        if op in _TRANSPARENT:
            return
        builder = self.builders.get(thread_id)
        if builder is None:
            builder = self.builders[thread_id] = _RunBuilder(self.max_gap)
        if op in _BREAKERS or position is None:
            finished = builder.flush()
            if finished is not None:
                self.completed_runs.append(finished)
            return
        category = _RUN_OPS.get(op)
        if category is None:
            return
        # event.targets_back semantics (size==0 excluded), unlike the
        # aggregate at_back mask above — both conventions are batch's.
        targets_back = False if size == 0 else position >= size - 1
        finished = builder.feed(i, category, position, size, targets_back, thread_id)
        if finished is not None:
            self.completed_runs.append(finished)

    # -- snapshots (non-destructive) ------------------------------------

    def patterns(self, config: DetectorConfig) -> tuple[AccessPattern, ...]:
        """Classified patterns as the batch detector would emit them now.

        In-flight runs are *read*, not flushed, so the fold keeps
        accepting events after a snapshot.
        """
        runs = list(self.completed_runs)
        for builder in self.builders.values():
            if builder.run is not None:
                runs.append(builder.run)
        runs.sort(key=lambda r: r.start)
        out: list[AccessPattern] = []
        for run in runs:
            if run.length < config.min_run_length:
                continue
            pattern_type = classify_run(run)
            if pattern_type is PatternType.UNCLASSIFIED and not config.keep_unclassified:
                continue
            out.append(
                AccessPattern(
                    pattern_type=pattern_type,
                    start=run.start,
                    stop=run.stop,
                    length=run.length,
                    first_position=run.first_position,
                    last_position=run.last_position,
                    distinct_positions=run.distinct_positions,
                    size_at_end=run.size_at_end,
                    thread_id=run.thread_id,
                )
            )
        return tuple(out)

    def features(self, config: DetectorConfig) -> ProfileFeatures:
        return ProfileFeatures(
            kind=self.kind,
            total_events=self.index,
            read_kind_events=self.read_kind,
            op_counts=self.op_counts,
            insert_front=self.insert_front,
            insert_back=self.insert_back,
            delete_front=self.delete_front,
            delete_back=self.delete_back,
            read_front=self.read_front,
            read_back=self.read_back,
            end_events=self.end_events,
            sort_count=self.sort_count,
            last_sort_index=self.last_sort_index,
            trailing_writes=self.trailing,
            trailing_ops=frozenset(OperationKind(op) for op in self.trailing_ops),
            trailing_distinct_positions=len(self.trailing_positions),
            trailing_max_size=self.trailing_max_size,
            patterns=self.patterns(config),
        )


class StreamingUseCaseEngine:
    """Incremental counterpart of :class:`~repro.usecases.UseCaseEngine`.

    Feed it instance registrations and windowed raw-event batches in
    per-instance order; ask for a :class:`UseCaseReport` at any time.
    The report's profiles are *skeletons* — correct identity
    (id/kind/site/label) with no event history, because the history was
    never retained.  Everything the report formatters consume
    (identity, patterns, evidence) is present.

    ``peak_resident_events`` records the largest window ever held at
    once — the bounded-memory claim, asserted in tests.
    """

    def __init__(
        self,
        thresholds: Thresholds = PAPER_THRESHOLDS,
        detector_config: DetectorConfig | None = None,
        rules: tuple[Rule, ...] = ALL_RULES,
    ) -> None:
        self.thresholds = thresholds
        self.config = detector_config if detector_config is not None else DetectorConfig()
        self.rules = rules
        self._folds: dict[int, _InstanceFold] = {}
        self.events_folded = 0
        self.peak_resident_events = 0
        self.unknown_instance_events = 0

    # -- ingestion -------------------------------------------------------

    def register_instance(
        self,
        instance_id: int,
        kind: StructureKind,
        site: AllocationSite | None = None,
        label: str = "",
    ) -> None:
        """Declare an instance before its events arrive.  Idempotent —
        a re-registration after session resume is a no-op."""
        if instance_id not in self._folds:
            self._folds[instance_id] = _InstanceFold(
                instance_id, kind, site, label, self.config.max_gap
            )

    def feed(self, raw: RawEvent) -> None:
        """Fold one raw event tuple.  Events of unregistered instances
        are dropped and counted, never guessed at."""
        fold = self._folds.get(raw[0])
        if fold is None:
            self.unknown_instance_events += 1
            return
        fold.feed(raw)
        self.events_folded += 1

    def feed_window(self, batch: list[RawEvent]) -> None:
        """Fold one window of events; the window is the only event
        storage that ever exists, and its size is recorded."""
        if len(batch) > self.peak_resident_events:
            self.peak_resident_events = len(batch)
        fold = self.feed
        for raw in batch:
            fold(raw)

    # -- reporting -------------------------------------------------------

    @property
    def instances_analyzed(self) -> int:
        return len(self._folds)

    def report(self) -> UseCaseReport:
        """Use cases over everything folded so far.

        Non-destructive: in-flight runs are inspected, not flushed, so
        streaming can continue after an interim report.
        """
        use_cases: list[UseCase] = []
        for instance_id in sorted(self._folds):
            fold = self._folds[instance_id]
            features = fold.features(self.config)
            fired = evaluate_rules(features, self.thresholds, self.rules)
            if not fired:
                continue
            profile = RuntimeProfile(
                instance_id, kind=fold.kind, site=fold.site, label=fold.label
            )
            analysis = PatternAnalysis(profile=profile, patterns=features.patterns)
            for rule, evidence in fired:
                use_cases.append(
                    UseCase(
                        kind=rule.kind,
                        profile=profile,
                        analysis=analysis,
                        recommendation=rule.recommend(evidence),
                        evidence=evidence,
                    )
                )
        return UseCaseReport(
            use_cases=tuple(use_cases), instances_analyzed=len(self._folds)
        )

    def flagged_kinds(self) -> dict[int, list[str]]:
        """``{instance_id: [abbreviations]}`` for quick stats output."""
        out: dict[int, list[str]] = {}
        for use_case in self.report().use_cases:
            out.setdefault(use_case.instance_id, []).append(use_case.kind.abbreviation)
        return out


__all__ = ["StreamingUseCaseEngine", "UseCaseKind"]
