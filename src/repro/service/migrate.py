"""On-disk state-format migration between dsspy generations.

One registered step per ``vN -> vN+1`` hop; :func:`migrate_session_dir`
chains them until the directory reaches the target generation.  Every
file rewrite follows the PR 4 barrier discipline — write a
``.migrate-tmp`` sibling, fsync it, then :func:`os.replace` over the
original — so a crash (SIGKILL included) at *any* byte leaves each
artifact wholly old or wholly new, never a hybrid, and rerunning the
migration completes it.  Mixed per-file versions inside one directory
are a legal intermediate state: every reader accepts all generations
up to its own.

Downgrades are refused with :class:`DowngradeError` — there is no
step that can forget what a newer format recorded.  State written by
a build newer than this one surfaces the durability layer's
:class:`~repro.service.durability.FutureFormatError` ("needs
migration by the newer build"), never a rewrite attempt.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable

from .durability import (
    _CHECKPOINT_NAME,
    _MAGIC_LEN,
    _SEGMENT_GLOB,
    CHECKPOINT_VERSION,
    JOURNAL_VERSION,
    FutureFormatError,
    journal_magic,
    parse_journal_magic,
)
from .governor import REAL_FS, RealFS

#: Current overall state-format generation (journal and checkpoint
#: formats move in lockstep; a hop that bumps only one still gets its
#: own generation number so the chain stays linear).
STATE_VERSION = 2

#: Sibling suffix for in-flight rewrites.  Chosen so the temp file can
#: never match ``_SEGMENT_GLOB`` — a crash mid-migration must not
#: leave a file that recovery or fsck would scan as a segment.
TMP_SUFFIX = ".migrate-tmp"


class DowngradeError(RuntimeError):
    """Asked to migrate state *down* to an older format generation."""


#: ``from_version -> step`` registry; each step raises on failure and
#: is idempotent over partially migrated directories.
MIGRATIONS: dict[int, Callable[[Path, RealFS], None]] = {}


def migration(from_version: int):
    """Register a ``v{from} -> v{from+1}`` migration step."""

    def register(fn: Callable[[Path, RealFS], None]):
        MIGRATIONS[from_version] = fn
        return fn

    return register


def _replace_file(fs: RealFS, path: Path, data: bytes) -> None:
    """Crash-safe whole-file rewrite: temp sibling, fsync, rename."""
    tmp = path.with_name(path.name + TMP_SUFFIX)
    fh = fs.open(tmp, "wb")
    try:
        fs.write(fh, data)
        fs.fsync(fh)
    finally:
        fh.close()
    fs.replace(tmp, path)


def _checkpoint_version(state: Any) -> int:
    if not isinstance(state, dict):
        return 1
    version = state.get("version", 1)
    return version if isinstance(version, int) and version >= 1 else 1


def session_versions(
    directory: str | Path, *, fs: RealFS | None = None
) -> dict[str, Any]:
    """Per-artifact format generations of one session directory.

    ``state`` is the *oldest* generation present — migration starts
    from there.  ``None`` means the directory holds nothing versioned
    (already current by definition).  Future-generation artifacts
    raise :class:`FutureFormatError`.
    """
    fs = fs if fs is not None else REAL_FS
    directory = Path(directory)
    segments: dict[str, int] = {}
    for segment in sorted(directory.glob(_SEGMENT_GLOB)):
        header = fs.read_bytes(segment)[:_MAGIC_LEN]
        try:
            segments[segment.name] = parse_journal_magic(header)
        except FutureFormatError:
            raise
        except ValueError:
            continue  # not a journal (damage is fsck's department)
    checkpoint: int | None = None
    ckpt_path = directory / _CHECKPOINT_NAME
    if ckpt_path.exists():
        try:
            state = json.loads(fs.read_text(ckpt_path))
        except (OSError, ValueError):
            state = None  # unreadable: recovery replays; nothing to migrate
        if state is not None:
            checkpoint = _checkpoint_version(state)
            if checkpoint > CHECKPOINT_VERSION:
                raise FutureFormatError(
                    f"{ckpt_path}: checkpoint format v{checkpoint} is newer "
                    f"than this build writes (v{CHECKPOINT_VERSION})"
                )
    known = list(segments.values())
    if checkpoint is not None:
        known.append(checkpoint)
    return {
        "segments": segments,
        "checkpoint": checkpoint,
        "state": min(known) if known else None,
    }


@migration(1)
def _migrate_1_to_2(directory: Path, fs: RealFS) -> None:
    """v1 -> v2: stamp segment headers with their format generation
    and add the ``format`` build block to the checkpoint.  The record
    layout is unchanged, so the rewrite is mechanical — which is
    exactly why this hop exists: it proves the machinery the next
    record-format change will depend on."""
    from ..buildinfo import build_info

    for segment in sorted(directory.glob(_SEGMENT_GLOB)):
        data = fs.read_bytes(segment)
        try:
            version = parse_journal_magic(data[:_MAGIC_LEN])
        except ValueError:
            continue  # damaged header; fsck, not migrate, handles it
        if version != 1:
            continue  # already migrated (idempotent re-run)
        _replace_file(fs, segment, journal_magic(2) + data[_MAGIC_LEN:])
    ckpt_path = directory / _CHECKPOINT_NAME
    if ckpt_path.exists():
        try:
            state = json.loads(fs.read_text(ckpt_path))
        except (OSError, ValueError):
            return  # unreadable checkpoint: recovery replays instead
        if isinstance(state, dict) and _checkpoint_version(state) == 1:
            state["version"] = 2
            state["format"] = build_info()  # the build that migrated it
            _replace_file(
                fs, ckpt_path, json.dumps(state, separators=(",", ":")).encode()
            )


def migrate_session_dir(
    directory: str | Path,
    *,
    to: int = STATE_VERSION,
    fs: RealFS | None = None,
) -> dict[str, Any]:
    """Bring one session directory to format generation ``to``.

    Returns ``{"path", "from", "to", "steps"}``; ``from`` is ``None``
    for a directory with nothing to migrate.  Refuses downgrades.
    """
    fs = fs if fs is not None else REAL_FS
    directory = Path(directory)
    # Sweep crash leftovers first: a .migrate-tmp sibling is an
    # incomplete rewrite whose original is still intact.
    for leftover in directory.glob("*" + TMP_SUFFIX):
        fs.unlink(leftover)
    versions = session_versions(directory, fs=fs)
    current = versions["state"]
    result = {
        "path": str(directory),
        "from": current,
        "to": to,
        "steps": [],
    }
    if current is None:
        return result
    if current > to:
        raise DowngradeError(
            f"{directory}: state is format v{current}, target is v{to}; "
            "downgrades are not supported — run the newer dsspy build "
            "against this state directory instead"
        )
    while current < to:
        step = MIGRATIONS.get(current)
        if step is None:
            raise FutureFormatError(
                f"{directory}: no migration step registered for "
                f"v{current} -> v{current + 1}"
            )
        step(directory, fs)
        result["steps"].append(f"v{current}->v{current + 1}")
        current += 1
    return result


def migrate_state_dir(
    root: str | Path,
    *,
    to: int = STATE_VERSION,
    fs: RealFS | None = None,
) -> dict[str, Any]:
    """Migrate every session directory under ``root``.

    ``root`` may be a daemon state dir, a fleet state dir with
    ``shard-NN`` subdirectories, or one bare session directory — the
    same layouts ``dsspy fsck`` walks.
    """
    from .fleet import scan_fleet_state_dir

    root = Path(root)
    if not root.is_dir():
        raise FileNotFoundError(f"{root}: not a directory")
    if any(root.glob(_SEGMENT_GLOB)) or (root / _CHECKPOINT_NAME).exists():
        session_dirs = [root]  # bare session directory
    else:
        session_dirs = scan_fleet_state_dir(root)
    report: dict[str, Any] = {
        "root": str(root),
        "to": to,
        "sessions": [],
        "migrated": 0,
    }
    for session_dir in session_dirs:
        entry = migrate_session_dir(session_dir, to=to, fs=fs)
        report["sessions"].append(entry)
        if entry["steps"]:
            report["migrated"] += 1
    return report


__all__ = [
    "DowngradeError",
    "MIGRATIONS",
    "STATE_VERSION",
    "TMP_SUFFIX",
    "migrate_session_dir",
    "migrate_state_dir",
    "migration",
    "session_versions",
]
