"""Fleet-scale sharded ingestion: supervisor, coordinator, batch runs.

One :class:`~repro.service.ProfilingDaemon` process is the ceiling on
concurrent clients: every session shares its GIL, its ingest folders,
and its accept loop.  This module grows the service horizontally
while keeping the single-daemon analysis guarantees:

**FleetSupervisor** spawns N worker processes (each a full ``dsspy
serve`` — daemon + per-session :class:`~repro.service.IngestPipeline` +
:class:`~repro.service.StreamingUseCaseEngine` — with its own
``shard-NN`` state subdirectory) and fronts them with either a
session-affine :class:`~repro.service.router.SessionRouter` (default)
or SO_REUSEPORT.  Worker lifecycle is supervised: a crashed worker is
respawned on its old port and shard directory, so journal recovery
rebuilds its sessions and resuming clients land back on it; SIGTERM
drains every worker cleanly; on startup, on-disk session directories
are rebalanced to their hash-assigned shard (orphans from a resized or
torn-down fleet, or a single daemon's state dir being adopted).

**FleetCoordinator** pulls per-shard engine snapshots over the wire
(the ``engine_to_dict`` seam that also backs checkpoints) and merges
them into one fleet-wide use-case report.  Folds are per-instance and
sessions live on exactly one shard, so the merge is exact — the same
report a single daemon would have produced over the union of streams.
Instance ids are only unique per session, so the coordinator remaps
them densely and keeps a provenance table from merged id back to
``(worker, session, original id)``.

**Batch orchestration** (:func:`fleet_run`, ``dsspy fleet-run``)
profiles many programs/sessions against the fleet in one invocation,
with an on-disk :class:`ResultCache` keyed by the full task config so
reruns skip finished sessions.  Each task runs in its *own producer
subprocess* — the collector stack is process-global, so concurrent
tracked workloads must not share an interpreter.

Routing and rebalancing agree on one function,
:func:`~repro.service.router.shard_for`; it is the fleet's only
sharding decision.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import shutil
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from .router import SessionRouter, shard_for

#: Shard state subdirectories are ``<state_dir>/shard-NN``.
SHARD_DIR_PREFIX = "shard-"


def shard_dir_name(index: int) -> str:
    return f"{SHARD_DIR_PREFIX}{index:02d}"


def scan_fleet_state_dir(state_dir: str | Path) -> list[Path]:
    """Every recoverable session directory under a fleet state dir.

    Covers both layouts: session dirs directly under ``state_dir`` (a
    single daemon's layout, or a fleet of one) and under any
    ``shard-NN`` subdirectory.  ``dsspy recover`` uses this so one
    invocation recovers a whole fleet.
    """
    from .durability import scan_state_dir

    state_dir = Path(state_dir)
    if not state_dir.is_dir():
        return []
    dirs = list(scan_state_dir(state_dir))
    for shard in sorted(state_dir.glob(SHARD_DIR_PREFIX + "*")):
        if shard.is_dir():
            dirs.extend(scan_state_dir(shard))
    return dirs


def rebalance_state_dir(
    state_dir: str | Path, n_workers: int
) -> list[dict[str, Any]]:
    """Move every on-disk session directory to its hash-assigned shard.

    Run before workers start (they must not race their own recovery
    scan).  Handles orphans three ways: a session under the wrong
    shard (the fleet was resized), a session at the state-dir top
    level (a single daemon's state dir being adopted by a fleet), and
    a session already in place (no-op).  A duplicate — the same
    session id present in two places — keeps the copy already at its
    assigned shard and leaves the other untouched for the operator,
    since merging two journals is not a move.
    """
    state_dir = Path(state_dir)
    moves: list[dict[str, Any]] = []
    for session_dir in scan_fleet_state_dir(state_dir):
        session_id = session_dir.name
        target = state_dir / shard_dir_name(shard_for(session_id, n_workers))
        if session_dir.parent == target:
            continue
        destination = target / session_id
        if destination.exists():
            moves.append(
                {
                    "session": session_id,
                    "from": str(session_dir),
                    "to": str(destination),
                    "moved": False,
                    "note": "duplicate: assigned shard already has this session",
                }
            )
            continue
        target.mkdir(parents=True, exist_ok=True)
        shutil.move(str(session_dir), str(destination))
        moves.append(
            {
                "session": session_id,
                "from": str(session_dir),
                "to": str(destination),
                "moved": True,
            }
        )
    return moves


def _repro_env() -> dict[str, str]:
    """Environment for spawned workers/producers: the interpreter must
    import :mod:`repro` from the same tree as this process."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    return env


def _free_port(host: str = "127.0.0.1") -> int:
    import socket as _socket

    with _socket.socket(_socket.AF_INET, _socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


@dataclass
class _Worker:
    """Supervisor-side record of one spawned ``dsspy serve`` process."""

    index: int
    shard_dir: Path
    port: int = 0  # concrete once the port file has been read
    proc: subprocess.Popen | None = None
    restarts: int = 0
    log_path: Path | None = None
    address: str = ""
    dead: bool = False  # gave up restarting (restart budget exhausted)
    upgrading: bool = False  # intentional exit in progress: monitor hands off


class FleetSupervisor:
    """Spawn, front, monitor, and drain N profiling-daemon workers.

    Parameters
    ----------
    n_workers:
        Fleet size; also the modulus of :func:`shard_for`, so changing
        it across restarts of the same ``state_dir`` triggers a
        rebalance of the on-disk sessions.
    state_dir:
        Fleet state root.  Required: supervised restart is only
        meaningful with journals to recover from.
    mode:
        ``"router"`` (default) — a :class:`SessionRouter` fronts the
        workers; reconnects keep session affinity, and aggregated
        STATS/SNAPSHOT work against the one public address.
        ``"reuseport"`` — workers share one SO_REUSEPORT listen port;
        the kernel spreads *connections*, so there is no session
        affinity (a resuming client may land on a worker that does not
        hold its session and start over) and fleet-wide observability
        is best-effort (see :meth:`worker_addresses`).  Use it for
        raw ingest fan-out of fresh, short-lived sessions.
    """

    def __init__(
        self,
        n_workers: int,
        state_dir: str | Path,
        *,
        mode: str = "router",
        host: str = "127.0.0.1",
        port: int = 0,
        report_dir: str | Path | None = None,
        overflow: str = "block",
        checkpoint_every: int = 50_000,
        heartbeat_timeout: float = 30.0,
        linger: float = 60.0,
        serve_args: Sequence[str] = (),
        python: str = sys.executable,
        startup_timeout: float = 30.0,
        max_restarts: int = 20,
        auto_restart: bool = True,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if mode not in ("router", "reuseport"):
            raise ValueError(f"mode must be 'router' or 'reuseport', got {mode!r}")
        self.n_workers = n_workers
        self.mode = mode
        self.state_dir = Path(state_dir)
        self._host = host
        self._port = port
        self._report_dir = Path(report_dir) if report_dir is not None else None
        self._overflow = overflow
        self._checkpoint_every = checkpoint_every
        self._heartbeat_timeout = heartbeat_timeout
        self._linger = linger
        self._serve_args = list(serve_args)
        self._python = python
        self._startup_timeout = startup_timeout
        self._max_restarts = max_restarts
        self._auto_restart = auto_restart
        self.workers: list[_Worker] = []
        self.router: SessionRouter | None = None
        self.rebalanced: list[dict[str, Any]] = []
        self.upgrades = 0  # workers cycled through upgrade_worker
        self._stopping = False
        self._started = False
        self._lock = threading.Lock()
        self._monitor: threading.Thread | None = None

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "FleetSupervisor":
        if self._started:
            return self
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.rebalanced = rebalance_state_dir(self.state_dir, self.n_workers)
        shared_port = 0
        if self.mode == "reuseport":
            # Every worker binds the same concrete port; pick it now.
            shared_port = self._port or _free_port(self._host)
            self._port = shared_port
        self.workers = [
            _Worker(index=i, shard_dir=self.state_dir / shard_dir_name(i))
            for i in range(self.n_workers)
        ]
        try:
            for worker in self.workers:
                self._spawn(worker, port=shared_port)
            for worker in self.workers:
                self._await_ready(worker)
            if self.mode == "router":
                self.router = SessionRouter(
                    [w.address for w in self.workers],
                    host=self._host,
                    port=self._port,
                )
        except Exception:
            self.stop(graceful=False)
            raise
        self._started = True
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="dsspy-fleet-monitor", daemon=True
        )
        self._monitor.start()
        return self

    @property
    def address(self) -> str:
        """The fleet's one public dial address."""
        if self.mode == "router":
            if self.router is None:
                raise RuntimeError("fleet not started")
            return self.router.address
        return f"{self._host}:{self._port}"

    def worker_addresses(self) -> list[str]:
        """Per-worker dial addresses.

        In router mode these are the real per-worker listeners — the
        coordinator merges from them deterministically.  In reuseport
        mode every worker shares one address, so per-worker dialing is
        *not* addressable and callers (the coordinator) fall back to
        coupon-collector sampling of the shared address.
        """
        return [w.address for w in self.workers]

    def coordinator(self, **kwargs: Any) -> "FleetCoordinator":
        if self.mode == "reuseport":
            # Dials of the shared port land on arbitrary workers; the
            # coordinator samples it repeatedly and keys replies by
            # shard state-dir, which converges with high probability
            # but is not a guarantee.  Router mode is exact.
            return FleetCoordinator(
                [self.address],
                expect_shards=self.n_workers,
                sample_shared=True,
                **kwargs,
            )
        return FleetCoordinator(self.worker_addresses, **kwargs)

    def stats(self) -> dict[str, Any]:
        if self.mode == "router" and self.router is not None:
            out = self.router.stats()
        else:
            out = {"address": self.address, "fleet": True, "workers": []}
        out["mode"] = self.mode
        out["restarts"] = {
            str(w.index): w.restarts for w in self.workers if w.restarts
        }
        out["rebalanced"] = len(self.rebalanced)
        out["upgrades"] = self.upgrades
        return out

    def stop(self, graceful: bool = True, timeout: float = 15.0) -> None:
        """Drain the fleet: close the front door, SIGTERM every worker
        (their ``serve_forever`` flushes and finalizes all sessions),
        escalate to SIGKILL past the deadline."""
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
        if self.router is not None:
            self.router.close()
        procs = [w.proc for w in self.workers if w.proc is not None]
        if graceful:
            for proc in procs:
                if proc.poll() is None:
                    try:
                        proc.send_signal(signal.SIGTERM)
                    except OSError:
                        pass
            deadline = time.monotonic() + timeout
            for proc in procs:
                remaining = max(0.1, deadline - time.monotonic())
                try:
                    proc.wait(timeout=remaining)
                except subprocess.TimeoutExpired:
                    pass
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.kill()
                    proc.wait(timeout=5.0)
                except (OSError, subprocess.TimeoutExpired):
                    pass
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)

    def __enter__(self) -> "FleetSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- worker management ------------------------------------------------

    def kill_worker(self, index: int) -> None:
        """SIGKILL one worker (fault injection; the monitor restarts
        it, journal recovery rebuilds its sessions)."""
        proc = self.workers[index].proc
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)

    def upgrade_worker(
        self,
        index: int,
        *,
        drain_timeout: float = 15.0,
        migrate: bool = True,
    ) -> dict[str, Any]:
        """Drain, migrate, and respawn one worker — a zero-loss deploy.

        The sequence is the rolling-upgrade runbook, mechanized:
        the router stops routing new HELLOs to the shard (RETRY_AFTER,
        so clients back off instead of erroring), the worker gets
        SIGUSR1 (``serve_forever`` answers with
        :meth:`~repro.service.ProfilingDaemon.park`: every session
        checkpointed, journals closed but *kept*), the shard's state
        is migrated to the current format, and a fresh process — the
        new code — respawns on the same shard and port, recovering
        every parked session at its exact cursor.

        A worker that misses ``drain_timeout`` is SIGKILLed: the
        journal's append-before-ack barrier means even a hard kill
        loses nothing acked, the respawn merely replays instead of
        resuming.  Returns a summary dict for ``dsspy fleet upgrade``.
        """
        worker = self.workers[index]
        out: dict[str, Any] = {
            "worker": index,
            "drained": False,
            "forced": False,
            "migrated": 0,
            "restarted": False,
        }
        worker.upgrading = True
        if self.router is not None:
            self.router.set_draining(index, True)
        try:
            proc = worker.proc
            if proc is not None and proc.poll() is None:
                try:
                    proc.send_signal(signal.SIGUSR1)
                except OSError:
                    pass
                try:
                    proc.wait(timeout=drain_timeout)
                    out["drained"] = True
                except subprocess.TimeoutExpired:
                    # The journal is the source of truth; a stuck
                    # drain must not stall the deploy.
                    out["forced"] = True
                    try:
                        proc.kill()
                        proc.wait(timeout=10.0)
                    except (OSError, subprocess.TimeoutExpired):
                        pass
            elif proc is not None:
                out["drained"] = True  # already exited
            if migrate:
                from .migrate import migrate_state_dir

                out["migrated"] = migrate_state_dir(worker.shard_dir)[
                    "migrated"
                ]
            self._spawn(worker)
            self._await_ready(worker)
            out["restarted"] = True
            if self.router is not None:
                self.router.set_worker(index, worker.address)
        finally:
            worker.upgrading = False
            if self.router is not None:
                self.router.set_draining(index, False)
        self.upgrades += 1
        if self.router is not None:
            self.router.upgrades = self.upgrades
        return out

    def rolling_upgrade(
        self, *, drain_timeout: float = 15.0, migrate: bool = True
    ) -> list[dict[str, Any]]:
        """Upgrade the whole fleet one worker at a time.

        Strictly serial on purpose: at most one shard is draining at
        any moment, so fleet capacity never dips below N-1 workers and
        a failed respawn stops the rollout with the rest of the fleet
        untouched."""
        return [
            self.upgrade_worker(
                index, drain_timeout=drain_timeout, migrate=migrate
            )
            for index in range(len(self.workers))
        ]

    def _spawn(self, worker: _Worker, port: int = 0) -> None:
        worker.shard_dir.mkdir(parents=True, exist_ok=True)
        port_file = worker.shard_dir / "port"
        port_file.unlink(missing_ok=True)
        listen_port = worker.port or port
        cmd = [
            self._python,
            "-m",
            "repro.cli",
            "serve",
            "--host",
            self._host,
            "--port",
            str(listen_port),
            "--state-dir",
            str(worker.shard_dir),
            "--port-file",
            str(port_file),
            "--overflow",
            self._overflow,
            "--checkpoint-every",
            str(self._checkpoint_every),
            "--heartbeat-timeout",
            str(self._heartbeat_timeout),
            "--linger",
            str(self._linger),
        ]
        if self.mode == "reuseport":
            cmd.append("--reuseport")
        if self._report_dir is not None:
            cmd += ["--report-dir", str(self._report_dir)]
        cmd += self._serve_args
        worker.log_path = worker.shard_dir / "serve.log"
        log = open(worker.log_path, "ab")
        try:
            worker.proc = subprocess.Popen(
                cmd, env=_repro_env(), stdout=log, stderr=subprocess.STDOUT
            )
        finally:
            log.close()

    def _await_ready(self, worker: _Worker) -> None:
        """Block until the worker published its bound port."""
        port_file = worker.shard_dir / "port"
        deadline = time.monotonic() + self._startup_timeout
        while time.monotonic() < deadline:
            proc = worker.proc
            if proc is not None and proc.poll() is not None:
                raise RuntimeError(
                    f"fleet worker {worker.index} exited with "
                    f"{proc.returncode} during startup "
                    f"(log: {worker.log_path})"
                )
            try:
                text = port_file.read_text().strip()
            except FileNotFoundError:
                text = ""
            if text:
                worker.port = int(text)
                worker.address = f"{self._host}:{worker.port}"
                return
            time.sleep(0.02)
        raise TimeoutError(
            f"fleet worker {worker.index} did not publish its port within "
            f"{self._startup_timeout}s (log: {worker.log_path})"
        )

    def _monitor_loop(self) -> None:
        while not self._stopping:
            for worker in self.workers:
                proc = worker.proc
                if (
                    proc is None
                    or proc.poll() is None
                    or self._stopping
                    or worker.dead
                    or worker.upgrading  # intentional: upgrade respawns it
                    or not self._auto_restart
                ):
                    continue
                if worker.restarts >= self._max_restarts:
                    worker.dead = True  # crash loop: stop feeding it
                    continue
                worker.restarts += 1
                # Same port, same shard dir: journal recovery rebuilds
                # the sessions and resuming clients (direct or via the
                # router's stable hash) land back on this worker.
                try:
                    self._spawn(worker)
                    self._await_ready(worker)
                except (RuntimeError, TimeoutError, OSError):
                    continue  # next pass retries (counts a restart)
                if self.router is not None:
                    self.router.set_worker(worker.index, worker.address)
            time.sleep(0.2)


# -- fleet-wide merged analysis ----------------------------------------------


class FleetCoordinator:
    """Merge per-shard engine snapshots into one fleet-wide report.

    ``workers`` is a list of addresses or a zero-arg callable returning
    one (the supervisor passes its live list, so restarts are picked
    up).  :meth:`collect` is one merge pass; :meth:`start_polling`
    runs passes on a cadence and keeps :attr:`latest`.
    """

    def __init__(
        self,
        workers: Sequence[str] | Callable[[], list[str]],
        *,
        timeout: float = 10.0,
        expect_shards: int | None = None,
        sample_shared: bool = False,
        thresholds=None,
        detector_config=None,
        rules=None,
    ) -> None:
        self._workers = workers
        self._timeout = timeout
        self._expect_shards = expect_shards
        self._sample_shared = sample_shared
        self._thresholds = thresholds
        self._detector_config = detector_config
        self._rules = rules
        self.latest: dict[str, Any] | None = None
        self.merges = 0
        self._poll_stop = threading.Event()
        self._poll_thread: threading.Thread | None = None

    def _addresses(self) -> list[str]:
        return list(self._workers()) if callable(self._workers) else list(self._workers)

    # -- snapshot gathering ----------------------------------------------

    def _gather(self) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
        from .client import fetch_snapshot
        from .protocol import ProtocolError

        snapshots: list[dict[str, Any]] = []
        errors: list[dict[str, Any]] = []
        if self._sample_shared:
            return self._gather_shared()
        for index, address in enumerate(self._addresses()):
            try:
                reply = fetch_snapshot(address, timeout=self._timeout)
            except (OSError, ProtocolError) as exc:
                errors.append(
                    {"worker": index, "address": address, "error": str(exc)}
                )
                continue
            for snap in reply["snapshots"]:
                snap.setdefault("worker", index)
                snapshots.append(snap)
            errors.extend(reply.get("errors", []))
        return snapshots, errors

    def _gather_shared(self) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
        """Reuseport mode: repeatedly dial the shared address; each
        connection lands on an arbitrary worker, so sample until every
        expected shard replied or the attempt budget runs out (coupon
        collector — probabilistic, unlike router mode)."""
        from .client import fetch_snapshot, fetch_stats
        from .protocol import ProtocolError

        address = self._addresses()[0]
        expected = self._expect_shards or 1
        by_shard: dict[str, dict[str, Any]] = {}
        errors: list[dict[str, Any]] = []
        attempts = max(8, 8 * expected)
        for _ in range(attempts):
            try:
                stats = fetch_stats(address, timeout=self._timeout)
                shard = str(stats.get("state_dir"))
                if shard in by_shard:
                    continue
                by_shard[shard] = fetch_snapshot(address, timeout=self._timeout)
            except (OSError, ProtocolError) as exc:
                errors.append({"address": address, "error": str(exc)})
                continue
            if len(by_shard) >= expected:
                break
        if len(by_shard) < expected:
            errors.append(
                {
                    "address": address,
                    "error": f"sampled {len(by_shard)}/{expected} shards "
                    f"in {attempts} dials (reuseport mode is best-effort)",
                }
            )
        snapshots: list[dict[str, Any]] = []
        for reply in by_shard.values():
            snapshots.extend(reply["snapshots"])
            errors.extend(reply.get("errors", []))
        return snapshots, errors

    # -- merging ----------------------------------------------------------

    def merge(
        self,
        snapshots: list[dict[str, Any]],
        errors: Sequence[dict[str, Any]] = (),
    ) -> dict[str, Any]:
        """Merge session snapshots into one converged use-case report.

        Instance ids are per-session, so folds are remapped to dense
        fleet-wide ids before the engine-level merge; ``provenance``
        maps each merged id back to its origin, and every use case in
        the merged report carries its ``origin`` inline.
        """
        from ..usecases.json_export import report_to_dict
        from .durability import engine_from_dict, merge_engine_dicts

        remapped: list[dict[str, Any]] = []
        provenance: dict[int, dict[str, Any]] = {}
        sessions: list[dict[str, Any]] = []
        next_id = 1
        for snap in sorted(snapshots, key=lambda s: s["session"]):
            folds = []
            for fold in sorted(
                snap["engine"]["folds"], key=lambda f: int(f["instance_id"])
            ):
                fold = dict(fold)
                provenance[next_id] = {
                    "worker": snap.get("worker"),
                    "session": snap["session"],
                    "instance_id": int(fold["instance_id"]),
                }
                fold["instance_id"] = next_id
                next_id += 1
                folds.append(fold)
            remapped.append(
                {
                    "events_folded": snap["engine"]["events_folded"],
                    "peak_resident_events": snap["engine"]["peak_resident_events"],
                    "unknown_instance_events": snap["engine"][
                        "unknown_instance_events"
                    ],
                    "folds": folds,
                }
            )
            sessions.append(
                {
                    "session": snap["session"],
                    "worker": snap.get("worker"),
                    "state": snap["state"],
                    "received": snap["received"],
                }
            )
        merged_dict = merge_engine_dicts(remapped)
        kwargs: dict[str, Any] = {}
        if self._thresholds is not None:
            kwargs["thresholds"] = self._thresholds
        if self._detector_config is not None:
            kwargs["detector_config"] = self._detector_config
        if self._rules is not None:
            kwargs["rules"] = self._rules
        engine = engine_from_dict(merged_dict, **kwargs)
        report = report_to_dict(engine.report())
        for use_case in report["use_cases"]:
            use_case["origin"] = provenance.get(use_case["instance_id"])
        return {
            "sessions": sessions,
            "events_folded": merged_dict["events_folded"],
            "unknown_instance_events": merged_dict["unknown_instance_events"],
            "report": report,
            "errors": list(errors),
            # A merge with errors is a *partial* view (a worker was
            # down or a folder busy); consumers must not present it as
            # the converged fleet report.
            "complete": not errors,
        }

    def collect(self) -> dict[str, Any]:
        """One full merge pass: gather every shard's snapshots, merge,
        remember the result."""
        snapshots, errors = self._gather()
        result = self.merge(snapshots, errors=errors)
        self.latest = result
        self.merges += 1
        return result

    # -- polling ----------------------------------------------------------

    def start_polling(self, interval: float = 2.0) -> None:
        """Run :meth:`collect` on a cadence until :meth:`stop_polling`.
        Fetch/merge failures are recorded in :attr:`latest` (as errors),
        never raised out of the thread."""
        if self._poll_thread is not None:
            return
        self._poll_stop.clear()

        def loop() -> None:
            while not self._poll_stop.wait(interval):
                try:
                    self.collect()
                except Exception as exc:  # a torn snapshot must not kill polling
                    self.latest = {
                        "sessions": [],
                        "report": None,
                        "errors": [{"error": str(exc)}],
                        "complete": False,
                    }

        self._poll_thread = threading.Thread(
            target=loop, name="dsspy-fleet-coordinator", daemon=True
        )
        self._poll_thread.start()

    def stop_polling(self) -> None:
        if self._poll_thread is None:
            return
        self._poll_stop.set()
        self._poll_thread.join(timeout=5.0)
        self._poll_thread = None


# -- batch orchestration ------------------------------------------------------


class ResultCache:
    """On-disk cache of finished profiling runs, keyed by task config.

    The key is the SHA-256 of the canonical JSON of the whole task
    config — program, scale, session, anything the caller adds — so
    any config change is a different run, and a rerun of an unchanged
    config is a hit.  Entries store the config alongside the result
    and are verified on read: a hash collision or a stale schema reads
    as a miss, never as wrong data.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.lock_takeovers = 0

    @staticmethod
    def key(config: dict[str, Any]) -> str:
        canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def path(self, config: dict[str, Any]) -> Path:
        return self.root / f"{self.key(config)}.json"

    def get(self, config: dict[str, Any]) -> dict[str, Any] | None:
        path = self.path(config)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError, UnicodeDecodeError):
            self.misses += 1
            return None
        if entry.get("config") != config:
            self.misses += 1
            return None
        self.hits += 1
        return entry["result"]

    def put(self, config: dict[str, Any], result: dict[str, Any]) -> None:
        path = self.path(config)
        # pid-suffixed tmp: two processes racing to fill the same entry
        # never tear each other's tmp file; last replace wins whole.
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(
            json.dumps({"config": config, "result": result}), encoding="utf-8"
        )
        os.replace(tmp, path)  # atomic: a torn write is never a valid entry

    @contextlib.contextmanager
    def lock(self, config: dict[str, Any], *, timeout: float = 600.0,
             poll: float = 0.05):
        """Advisory per-entry exclusive lock, so concurrent ``fleet_run``
        invocations sharing one cache dir compute each miss once.

        Uses ``fcntl.flock`` where available: the kernel releases the
        lock when the holder dies, so a crashed holder is taken over
        automatically (the leftover ``.lock`` file is inert and is
        deliberately never unlinked — unlinking a flock'd path races a
        third process onto a fresh inode and splits the lock).  Where
        ``fcntl`` is missing the fallback is a pid lock file; a holder
        pid that no longer exists is removed and taken over.  Raises
        ``TimeoutError`` when a *live* holder keeps the lock past
        ``timeout`` — callers should treat that as "compute without the
        lock": duplicated work is safe, deadlock is not.
        """
        path = self.root / f"{self.key(config)}.lock"
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX fallback
            fcntl = None
        deadline = time.monotonic() + timeout
        fh = None
        acquired = False
        try:
            while True:
                if fcntl is not None:
                    fh = open(path, "a+", encoding="utf-8")
                    try:
                        fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                        acquired = True
                        break
                    except OSError:
                        fh.close()
                        fh = None
                else:  # pragma: no cover - non-POSIX fallback
                    try:
                        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                        os.write(fd, str(os.getpid()).encode("ascii"))
                        os.close(fd)
                        acquired = True
                        break
                    except FileExistsError:
                        try:
                            holder = int(path.read_text(encoding="ascii"))
                            os.kill(holder, 0)  # raises if the pid is gone
                        except (OSError, ValueError):
                            try:
                                path.unlink()
                                self.lock_takeovers += 1
                            except OSError:
                                pass
                            continue
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"cache entry lock {path.name} held past {timeout}s"
                    )
                time.sleep(poll)
            if fh is not None:
                # Record the holder for operators (`cat *.lock`); the
                # flock itself, not this pid, is the source of truth.
                fh.seek(0)
                fh.truncate()
                fh.write(f"{os.getpid()}\n")
                fh.flush()
            yield
        finally:
            if fh is not None:
                fh.close()  # closing drops the flock
            elif fcntl is None and acquired:  # pragma: no cover
                try:
                    path.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


def run_producer_task(spec: dict[str, Any]) -> dict[str, Any]:
    """Run one batch task in *this* process: record the named workload
    through a :class:`~repro.service.RemoteChannel` to ``address`` as
    session ``session``; returns the daemon's final report.

    This is the body of the ``python -m repro.service.fleet
    --run-task`` child.  It must own the process: the collector stack
    is global, so two tracked workloads in one interpreter would
    cross-record into each other's profiles.
    """
    from ..events.collector import collecting
    from ..workloads import workload_by_name

    from .client import RemoteChannel

    workload = workload_by_name(spec["workload"])
    channel = RemoteChannel(
        spec["address"],
        session_id=spec["session"],
        give_up_after=spec.get("give_up_after"),
    )
    with collecting(channel=channel):
        workload.run_tracked(scale=float(spec.get("scale", 1.0)))
    ack = channel.final_ack
    if ack is None:
        raise RuntimeError(
            f"session {spec['session']}: FIN handshake with "
            f"{spec['address']} failed"
        )
    return {
        "session": ack["session"],
        "received": ack["received"],
        "report": ack["report"],
    }


def fleet_run(
    tasks: Sequence[dict[str, Any]],
    address: str,
    cache: ResultCache,
    *,
    workers: Sequence[str] | None = None,
    concurrency: int = 2,
    python: str = sys.executable,
    task_timeout: float = 600.0,
    on_progress: Callable[[str, dict[str, Any]], None] | None = None,
) -> dict[str, Any]:
    """Profile every task against the fleet, skipping cached results.

    Each task is ``{"workload": name, "scale": s, "session": id}``.
    Cache hits return their stored report without touching the fleet;
    misses run as producer subprocesses, up to ``concurrency`` at a
    time.  With ``workers`` given, each producer dials its session's
    hash-assigned worker directly (client-side sharding keeps the
    router out of the data path); otherwise all dial ``address``.
    """
    results: dict[str, dict[str, Any]] = {}
    failures: list[dict[str, Any]] = []
    pending: list[dict[str, Any]] = []
    for task in tasks:
        config = dict(task)
        cached = cache.get(config)
        if cached is not None:
            results[config["session"]] = cached
            if on_progress is not None:
                on_progress("cached", config)
        else:
            pending.append(config)

    lock = threading.Lock()

    def execute(config: dict[str, Any]) -> None:
        target = address
        if workers:
            target = workers[shard_for(config["session"], len(workers))]
        spec = dict(config)
        spec["address"] = target
        # -c instead of -m: runpy would re-execute a module the repro
        # package already imported and warn about it.
        entry = "from repro.service.fleet import main; import sys; sys.exit(main())"
        proc = subprocess.run(
            [python, "-c", entry, "--run-task", json.dumps(spec)],
            env=_repro_env(),
            capture_output=True,
            text=True,
            timeout=task_timeout,
        )
        if proc.returncode != 0:
            with lock:
                failures.append(
                    {
                        "session": config["session"],
                        "returncode": proc.returncode,
                        "stderr": proc.stderr[-2000:],
                    }
                )
            if on_progress is not None:
                on_progress("failed", config)
            return
        result = json.loads(proc.stdout.strip().splitlines()[-1])
        cache.put(config, result)
        with lock:
            results[config["session"]] = result
        if on_progress is not None:
            on_progress("ran", config)

    def run_one(config: dict[str, Any]) -> None:
        # The entry lock serializes concurrent fleet_run invocations
        # sharing this cache dir; whoever loses the race re-checks the
        # cache and takes the winner's result instead of recomputing.
        try:
            with cache.lock(config, timeout=task_timeout):
                cached = cache.get(config)
                if cached is not None:
                    with lock:
                        results[config["session"]] = cached
                    if on_progress is not None:
                        on_progress("cached", config)
                    return
                execute(config)
        except TimeoutError:
            # A live holder wedged past the task timeout: duplicated
            # work is safe, waiting forever is not.
            execute(config)

    threads: list[threading.Thread] = []
    queue = list(pending)

    def drain_queue() -> None:
        while True:
            with lock:
                if not queue:
                    return
                config = queue.pop(0)
            try:
                run_one(config)
            except (subprocess.TimeoutExpired, OSError, json.JSONDecodeError) as exc:
                with lock:
                    failures.append(
                        {"session": config["session"], "error": str(exc)}
                    )

    for _ in range(max(1, min(concurrency, len(pending)))):
        thread = threading.Thread(target=drain_queue, daemon=True)
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()

    flagged: dict[str, int] = {}
    for result in results.values():
        for use_case in result["report"].get("use_cases", []):
            abbrev = use_case["abbreviation"]
            flagged[abbrev] = flagged.get(abbrev, 0) + 1
    return {
        "tasks": len(tasks),
        "cache_hits": len(tasks) - len(pending),
        "ran": len(pending) - len(failures),
        "failures": failures,
        "flagged": flagged,
        "results": results,
    }


def main(argv: Sequence[str] | None = None) -> int:
    """Module entry point: the producer child of :func:`fleet_run`."""
    import argparse

    parser = argparse.ArgumentParser(prog="python -m repro.service.fleet")
    parser.add_argument(
        "--run-task",
        required=True,
        metavar="JSON",
        help="task spec: {workload, scale, session, address}",
    )
    args = parser.parse_args(argv)
    spec = json.loads(args.run_task)
    result = run_producer_task(spec)
    print(json.dumps(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
