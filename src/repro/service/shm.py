"""Zero-copy shared-memory ring transport for same-host captures.

The socket transport pays a syscall plus a kernel copy per shipped
batch.  For clients on the daemon's own host, this module replaces the
EVENTS frames with a single-producer/single-consumer byte ring in
POSIX shared memory (:mod:`multiprocessing.shared_memory`): the client
memcpys packed 39-byte records into the ring and publishes a head
counter; the daemon's consumer thread reads them out at its leisure.
No syscalls, no serialization, no kernel copies — the packed record
bytes the encode-at-record fast path produced are the bytes the
daemon's ingest pipeline consumes.

Layout (64-byte header, then ``capacity_bytes`` of payload)::

    0   8   magic             b"DSSPYRG1"
    8   4   version           u32 (currently 1)
    12  4   record_size       u32 (must equal the spill RECORD_SIZE)
    16  8   capacity_bytes    u64 (multiple of record_size)
    24  8   head              u64: total bytes ever written (producer)
    32  8   tail              u64: total bytes ever consumed (consumer)
    40  8   generation        u64: producer pid (stale-segment check)
    48  16  reserved

Synchronization is seqlock-flavored monotonic counters, sound on a
single-producer/single-consumer ring:

- ``head`` and ``tail`` never wrap; the payload offset is
  ``counter % capacity_bytes``.  ``head - tail`` is the number of
  unread bytes, so full/empty are unambiguous without a wasted slot.
- The producer copies payload bytes *first* and publishes ``head``
  after; the consumer reads ``head`` first and consumes payload up to
  it.  Each counter has exactly one writer, so torn updates are the
  only hazard — and CPython's struct pack/unpack of an aligned 8-byte
  field via memoryview slicing is a single store/load of that region
  under the GIL-released buffer copy, which is atomic on every
  platform CPython supports in practice; crucially, even a stale read
  is *safe* (the consumer merely sees fewer bytes, the producer merely
  sees less free space).

Because ``capacity_bytes`` and every published counter are multiples
of :data:`RECORD_SIZE`, payload offsets are always record-aligned and
the distance from any offset to the end of the buffer is a whole
number of records — a single record therefore never straddles the
wrap boundary.  Multi-record writes may still split into two memcpys
at the wrap point; both spans stay record-aligned.

Backpressure is the producer's problem: :meth:`ShmRing.write` copies
as many *whole records* as fit and returns the byte count actually
written; the caller keeps the remainder and retries later (the
client counts these stalls in its ``ring_full`` stat).
"""

from __future__ import annotations

import os
import struct
import threading
from multiprocessing import shared_memory

from ..events.spill import RECORD_SIZE

MAGIC = b"DSSPYRG1"
VERSION = 1

HEADER_SIZE = 64
_HEAD_OFF = 24
_TAIL_OFF = 32

_HEADER = struct.Struct("<8sIIQQQQ")  # magic, version, record_size, capacity, head, tail, generation
_U64 = struct.Struct("<Q")

#: Default ring capacity, in records (~2.3 MB payload).
DEFAULT_RING_RECORDS = 60000


_attach_lock = threading.Lock()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without adopting its lifetime.

    Python 3.12 and older register every ``SharedMemory`` with the
    resource tracker even when ``create=False``, so an attaching
    process (or an in-process daemon sharing the creator's tracker)
    would unlink — or double-unregister — a segment it does not own.
    3.13 grew ``track=False`` for exactly this; on older interpreters
    the registration is suppressed for this one name while the segment
    opens.  Best-effort: if the private API moved, the cost is only a
    spurious cleanup warning at exit, never a correctness problem.
    """
    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:
        pass  # pre-3.13: no track parameter
    try:
        from multiprocessing import resource_tracker
    except Exception:
        return shared_memory.SharedMemory(name=name, create=False)
    with _attach_lock:
        original = resource_tracker.register

        def selective(rname, rtype, _orig=original):
            if rtype == "shared_memory" and rname.lstrip("/") == name.lstrip("/"):
                return None
            return _orig(rname, rtype)

        resource_tracker.register = selective
        try:
            return shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original


class ShmRing:
    """Single-producer/single-consumer byte ring over shared memory.

    Exactly one side calls :meth:`write` (the capture client) and one
    side calls :meth:`read` (the daemon's consumer thread).  Both hold
    an attached :class:`~multiprocessing.shared_memory.SharedMemory`;
    the creator additionally owns the segment's lifetime
    (:meth:`unlink`).
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self._shm = shm
        self._buf = shm.buf
        self._owner = owner
        self._closed = False
        (_m, _v, _rs, capacity, _h, _t, generation) = _HEADER.unpack_from(self._buf, 0)
        self.capacity_bytes = capacity
        self.generation = generation

    # -- construction -----------------------------------------------------

    @classmethod
    def create(cls, capacity_records: int = DEFAULT_RING_RECORDS) -> "ShmRing":
        """Create a fresh ring segment (producer side)."""
        if capacity_records < 1:
            raise ValueError("ring capacity must be at least one record")
        capacity = capacity_records * RECORD_SIZE
        shm = shared_memory.SharedMemory(create=True, size=HEADER_SIZE + capacity)
        _HEADER.pack_into(
            shm.buf, 0, MAGIC, VERSION, RECORD_SIZE, capacity, 0, 0, os.getpid()
        )
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        """Attach to an existing ring by segment name (consumer side).

        Validates the header before trusting anything in it: magic,
        version, record size, and a sane capacity.  Raises
        :class:`ValueError` on a stale or foreign segment — the daemon
        turns that into a declined HELLO capability rather than a dead
        session.
        """
        shm = _attach_untracked(name)
        try:
            if len(shm.buf) < HEADER_SIZE:
                raise ValueError(f"shm segment {name!r} too small for a ring header")
            magic, version, record_size, capacity, _h, _t, _gen = _HEADER.unpack_from(
                shm.buf, 0
            )
            if magic != MAGIC:
                raise ValueError(f"shm segment {name!r} is not a DSspy ring (bad magic)")
            if version != VERSION:
                raise ValueError(
                    f"shm ring {name!r} speaks version {version}, expected {VERSION}"
                )
            if record_size != RECORD_SIZE:
                raise ValueError(
                    f"shm ring {name!r} carries {record_size}-byte records, "
                    f"expected {RECORD_SIZE}"
                )
            if capacity <= 0 or capacity % RECORD_SIZE or len(shm.buf) < HEADER_SIZE + capacity:
                raise ValueError(f"shm ring {name!r} declares an implausible capacity")
        except Exception:
            shm.close()
            raise
        return cls(shm, owner=False)

    # -- counters ---------------------------------------------------------

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def head(self) -> int:
        return _U64.unpack_from(self._buf, _HEAD_OFF)[0]

    @property
    def tail(self) -> int:
        return _U64.unpack_from(self._buf, _TAIL_OFF)[0]

    @property
    def used(self) -> int:
        """Unread bytes currently in the ring."""
        return self.head - self.tail

    @property
    def free(self) -> int:
        """Writable bytes currently available."""
        return self.capacity_bytes - self.used

    # -- producer side ----------------------------------------------------

    def write(self, data) -> int:
        """Copy as many whole records of ``data`` as fit; publish head.

        Returns the number of bytes written (a record multiple, possibly
        zero when the ring is full).  The caller retains everything past
        the returned count.
        """
        head = self.head
        free = self.capacity_bytes - (head - self.tail)
        n = min(len(data), free)
        n -= n % RECORD_SIZE
        if n <= 0:
            return 0
        view = memoryview(data)[:n]
        offset = head % self.capacity_bytes
        first = min(n, self.capacity_bytes - offset)
        base = HEADER_SIZE
        self._buf[base + offset : base + offset + first] = view[:first]
        if first < n:
            self._buf[base : base + (n - first)] = view[first:]
        # Publish only after the payload copy — the consumer never sees
        # bytes that are not fully written.
        _U64.pack_into(self._buf, _HEAD_OFF, head + n)
        return n

    # -- consumer side ----------------------------------------------------

    def read(self, max_bytes: int | None = None) -> bytes:
        """Consume up to ``max_bytes`` of available payload; advance tail.

        Returns ``b""`` when the ring is empty.  Always consumes a whole
        number of records (the producer only ever publishes record
        multiples)."""
        tail = self.tail
        avail = self.head - tail
        if max_bytes is not None:
            avail = min(avail, max_bytes - max_bytes % RECORD_SIZE)
        if avail <= 0:
            return b""
        offset = tail % self.capacity_bytes
        first = min(avail, self.capacity_bytes - offset)
        base = HEADER_SIZE
        out = bytes(self._buf[base + offset : base + offset + first])
        if first < avail:
            out += bytes(self._buf[base : base + (avail - first)])
        # Release the space only after the payload copy completes.
        _U64.pack_into(self._buf, _TAIL_OFF, tail + avail)
        return out

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Detach from the segment (safe in fork children; never unlinks)."""
        if self._closed:
            return
        self._closed = True
        self._buf = None
        try:
            self._shm.close()
        except Exception:
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator only; idempotent)."""
        self.close()
        if self._owner:
            try:
                self._shm.unlink()
            except Exception:
                pass

    def __enter__(self) -> "ShmRing":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink() if self._owner else self.close()
