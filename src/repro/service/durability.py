"""Crash safety for the profiling daemon: journal, checkpoint, recovery.

The daemon's promise to a client is simple: once the server's
``received`` cursor covers an event, the client may forget it.  That
promise is only honest if the events behind the cursor survive a
daemon death.  This module keeps it with a classic write-ahead scheme:

**Journal.**  Every session owns a directory under the daemon's
``--state-dir`` holding append-only segment files.  Each REGISTER and
EVENTS window is appended — CRC-framed, reusing the 39-byte spill
record packing for event payloads — *before* the session advances its
``received`` cursor.  A crash can therefore only lose events the
client still holds and will retransmit.

**Checkpoint.**  Replaying a long journal from zero would make restart
cost proportional to session length.  Periodically the session
serializes its :class:`~repro.service.streaming.StreamingUseCaseEngine`
(every per-instance fold, including in-flight phase runs) plus its
cursors into ``checkpoint.json`` (atomic ``os.replace``), rolls the
journal to a fresh segment, and prunes the segments the checkpoint
subsumes.  Recovery loads the checkpoint and replays only the tail.

**Recovery.**  :func:`recover_session_dir` rebuilds one session's
engine and cursors from disk, truncating a torn tail record (a crash
mid-append) back to the last whole record.  The daemon runs it for
every session directory at startup; ``dsspy recover`` runs it offline.

**Admission.**  Durability makes overload *survivable*; the
:class:`AdmissionController` makes it *graceful*.  Global and
per-session event-rate quotas (sliding-window :class:`RateMeter`)
drive a degradation ladder — decimate, journal-only (events land
durably but analysis is deferred), shed with a RETRY-AFTER reply —
so an overloaded daemon slows clients down instead of falling over.

Journal segment layout::

    8 bytes   magic  b"DSPYWJ01"
    records, each:
        1 byte    record type (REC_REGISTER / REC_EVENTS / REC_FIN)
        4 bytes   little-endian uint32 payload length
        4 bytes   little-endian uint32 CRC-32 of the payload
        N bytes   payload

EVENTS payloads are exactly the wire protocol's: an 8-byte big-endian
stream index + 4-byte count header followed by packed spill records.
REGISTER payloads are the UTF-8 JSON registration object.  FIN marks
a cleanly finished session — its directory is garbage, not state.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
import threading
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from ..events.event import RawEvent
from ..events.profile import AllocationSite
from ..events.spill import RECORD_SIZE, pack_record, unpack_record
from ..events.types import StructureKind
from ..patterns.detector import DetectorConfig
from ..patterns.phases import Run, _RunBuilder
from ..testing.clock import SYSTEM_CLOCK, Clock
from ..usecases.rules import ALL_RULES, Rule
from ..usecases.thresholds import PAPER_THRESHOLDS, Thresholds
from ..whatif.dag import LaneSummary
from .governor import REAL_FS, RealFS, ResourceGovernor, is_resource_error
from .protocol import _EVENTS_HEADER
from .streaming import StreamingUseCaseEngine, _InstanceFold

#: Every journal segment opens with ``DSPYWJ`` plus two ASCII digits
#: naming the on-disk format generation that wrote it.  v1 and v2
#: share the record layout (v2 merely stamps the generation so future
#: record-format changes have a place to hang a migration); readers
#: accept every generation up to :data:`JOURNAL_VERSION` and refuse
#: newer ones with :class:`FutureFormatError` — "needs migration by a
#: newer build", never "corrupt".
JOURNAL_MAGIC_PREFIX = b"DSPYWJ"
JOURNAL_VERSION = 2
JOURNAL_MAGIC = b"DSPYWJ02"  # stamped on newly opened segments
_MAGIC_LEN = len(JOURNAL_MAGIC)


class FutureFormatError(RuntimeError):
    """On-disk state written by a newer dsspy than this build.

    Deliberately *not* a :class:`ValueError` subclass: recovery paths
    that tolerate corruption (replay-from-zero, fsck damage handling)
    must not swallow a version mismatch — refusing loudly is the whole
    point, because "recovering" newer state would silently destroy it.
    """


def journal_magic(version: int) -> bytes:
    """Segment header for format generation ``version``."""
    if not 1 <= version <= 99:
        raise ValueError(f"journal format version out of range: {version}")
    return JOURNAL_MAGIC_PREFIX + b"%02d" % version


def parse_journal_magic(header: bytes) -> int:
    """Format generation from a segment's first 8 bytes.

    Raises :class:`ValueError` for non-journal bytes and
    :class:`FutureFormatError` for a generation newer than this build
    understands.
    """
    if len(header) < _MAGIC_LEN or not header.startswith(JOURNAL_MAGIC_PREFIX):
        raise ValueError("not a DSspy journal segment")
    tail = header[len(JOURNAL_MAGIC_PREFIX) : _MAGIC_LEN]
    if not tail.isdigit():
        raise ValueError("not a DSspy journal segment")
    version = int(tail)
    if version < 1:
        raise ValueError("not a DSspy journal segment")
    if version > JOURNAL_VERSION:
        raise FutureFormatError(
            f"journal segment format v{version} is newer than this build "
            f"reads (v{JOURNAL_VERSION}); run 'dsspy migrate' with the "
            "newer build or upgrade this one"
        )
    return version


def segment_version(path: str | Path, *, fs: RealFS | None = None) -> int:
    """Format generation of one segment file on disk."""
    data = (fs if fs is not None else REAL_FS).read_bytes(Path(path))
    return parse_journal_magic(data[:_MAGIC_LEN])


#: Journal record types.
REC_REGISTER = 1
REC_EVENTS = 2
REC_FIN = 3
_KNOWN_RECORDS = frozenset((REC_REGISTER, REC_EVENTS, REC_FIN))

_REC_HEADER = struct.Struct("<BII")

#: Sanity ceiling on one journal payload; anything larger is a torn or
#: corrupt header, not a real record (wire frames are capped at 8 MB).
MAX_JOURNAL_PAYLOAD = 16 * 1024 * 1024

_SEGMENT_GLOB = "journal-*.wal"
_CHECKPOINT_NAME = "checkpoint.json"
#: Checkpoint schema generation.  v1 lacked the ``format`` block; v2
#: records the writing build's format versions so mixed-version state
#: directories are diagnosable.  Readers accept v1 and v2; a newer
#: version is a :class:`FutureFormatError`, never "replay from zero"
#: (which would silently discard the newer engine state).
CHECKPOINT_VERSION = 2


# -- registration parsing (shared by daemon ingest and recovery) -------------


def parse_register_entries(
    obj: dict[str, Any],
) -> Iterator[tuple[int, StructureKind, AllocationSite | None, str]]:
    """Yield ``(instance_id, kind, site, label)`` per REGISTER entry.

    A malformed entry raises :class:`ValueError` *at its position* —
    entries before it have already been yielded, matching the daemon's
    register-as-you-go semantics.  Both the live REGISTER handler and
    journal replay parse through here so they cannot drift.
    """
    for inst in obj.get("instances", ()):
        try:
            instance_id = int(inst["id"])
            kind = StructureKind(inst.get("kind", "list"))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"bad REGISTER entry: {exc}") from exc
        site_obj = inst.get("site")
        site = (
            AllocationSite(
                filename=site_obj.get("filename", "?"),
                lineno=int(site_obj.get("lineno", 0)),
                function=site_obj.get("function", "<module>"),
                variable=site_obj.get("variable", ""),
            )
            if isinstance(site_obj, dict)
            else None
        )
        yield instance_id, kind, site, str(inst.get("label", ""))


def _site_to_dict(site: AllocationSite | None) -> dict[str, Any] | None:
    if site is None:
        return None
    return {
        "filename": site.filename,
        "lineno": site.lineno,
        "function": site.function,
        "variable": site.variable,
    }


def _site_from_dict(obj: dict[str, Any] | None) -> AllocationSite | None:
    if obj is None:
        return None
    return AllocationSite(
        filename=obj.get("filename", "?"),
        lineno=int(obj.get("lineno", 0)),
        function=obj.get("function", "<module>"),
        variable=obj.get("variable", ""),
    )


# -- engine serialization ----------------------------------------------------


def _run_to_dict(run: Run) -> dict[str, Any]:
    return {
        "category": run.category,
        "thread_id": run.thread_id,
        "start": run.start,
        "stop": run.stop,
        "length": run.length,
        "direction": run.direction,
        "first_position": run.first_position,
        "last_position": run.last_position,
        "positions": sorted(run.positions),
        "size_at_end": run.size_at_end,
        "all_front": run.all_front,
        "all_back": run.all_back,
    }


def _run_from_dict(obj: dict[str, Any]) -> Run:
    return Run(
        category=obj["category"],
        thread_id=obj["thread_id"],
        start=obj["start"],
        stop=obj["stop"],
        length=obj["length"],
        direction=obj["direction"],
        first_position=obj["first_position"],
        last_position=obj["last_position"],
        positions=set(obj["positions"]),
        size_at_end=obj["size_at_end"],
        all_front=obj["all_front"],
        all_back=obj["all_back"],
    )


def _fold_to_dict(fold: _InstanceFold) -> dict[str, Any]:
    return {
        "instance_id": fold.instance_id,
        "kind": fold.kind.value,
        "site": _site_to_dict(fold.site),
        "label": fold.label,
        "index": fold.index,
        "read_kind": fold.read_kind,
        "op_counts": {str(op): n for op, n in fold.op_counts.items()},
        "insert_front": fold.insert_front,
        "insert_back": fold.insert_back,
        "delete_front": fold.delete_front,
        "delete_back": fold.delete_back,
        "read_front": fold.read_front,
        "read_back": fold.read_back,
        "end_events": fold.end_events,
        "sort_count": fold.sort_count,
        "last_sort_index": fold.last_sort_index,
        "trailing": fold.trailing,
        "trailing_ops": sorted(fold.trailing_ops),
        "trailing_positions": sorted(fold.trailing_positions),
        "trailing_max_size": fold.trailing_max_size,
        "builders": {
            str(tid): (None if b.run is None else _run_to_dict(b.run))
            for tid, b in fold.builders.items()
        },
        "completed_runs": [_run_to_dict(r) for r in fold.completed_runs],
        "lanes": fold.lanes.to_dict(),
    }


def _fold_from_dict(obj: dict[str, Any], max_gap: int) -> _InstanceFold:
    fold = _InstanceFold(
        int(obj["instance_id"]),
        StructureKind(obj["kind"]),
        _site_from_dict(obj.get("site")),
        obj.get("label", ""),
        max_gap,
    )
    fold.index = obj["index"]
    fold.read_kind = obj["read_kind"]
    fold.op_counts = {int(op): n for op, n in obj["op_counts"].items()}
    fold.insert_front = obj["insert_front"]
    fold.insert_back = obj["insert_back"]
    fold.delete_front = obj["delete_front"]
    fold.delete_back = obj["delete_back"]
    fold.read_front = obj["read_front"]
    fold.read_back = obj["read_back"]
    fold.end_events = obj["end_events"]
    fold.sort_count = obj["sort_count"]
    fold.last_sort_index = obj["last_sort_index"]
    fold.trailing = obj["trailing"]
    fold.trailing_ops = set(obj["trailing_ops"])
    fold.trailing_positions = set(obj["trailing_positions"])
    fold.trailing_max_size = obj["trailing_max_size"]
    for tid_str, run_obj in obj["builders"].items():
        builder = _RunBuilder(max_gap)
        builder.run = None if run_obj is None else _run_from_dict(run_obj)
        fold.builders[int(tid_str)] = builder
    fold.completed_runs = [_run_from_dict(r) for r in obj["completed_runs"]]
    # Checkpoints written before the what-if profiler existed have no
    # lane summary; recover them with an empty one rather than failing.
    fold.lanes = LaneSummary.from_dict(obj.get("lanes"))
    return fold


def engine_to_dict(engine: StreamingUseCaseEngine) -> dict[str, Any]:
    """Serialize every fold and counter; the engine must be quiescent
    (no concurrent ``feed``) while this runs."""
    return {
        "events_folded": engine.events_folded,
        "peak_resident_events": engine.peak_resident_events,
        "unknown_instance_events": engine.unknown_instance_events,
        "folds": [
            _fold_to_dict(engine._folds[iid]) for iid in sorted(engine._folds)
        ],
    }


def engine_from_dict(
    obj: dict[str, Any],
    *,
    thresholds: Thresholds = PAPER_THRESHOLDS,
    detector_config: DetectorConfig | None = None,
    rules: tuple[Rule, ...] = ALL_RULES,
) -> StreamingUseCaseEngine:
    """Rebuild an engine whose future ``report()`` calls are identical
    to the serialized engine's.  Analysis knobs are *not* persisted —
    the recovering daemon supplies its own, which must match the
    original's for the convergence guarantee to hold."""
    engine = StreamingUseCaseEngine(
        thresholds=thresholds, detector_config=detector_config, rules=rules
    )
    engine.events_folded = obj["events_folded"]
    engine.peak_resident_events = obj["peak_resident_events"]
    engine.unknown_instance_events = obj["unknown_instance_events"]
    max_gap = engine.config.max_gap
    for fold_obj in obj["folds"]:
        fold = _fold_from_dict(fold_obj, max_gap)
        engine._folds[fold.instance_id] = fold
    return engine


def merge_engine_dicts(dicts: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Merge serialized engine states from disjoint session shards.

    Folds are strictly per-instance and ``report()`` evaluates each
    instance independently, so a fleet-wide engine is the union of the
    shards' folds plus summed counters.  The *disjointness* contract is
    the sharding invariant (a session — and therefore every instance it
    registers — lives on exactly one worker); a duplicate instance id
    means two shards claim the same instance and the merge would be
    silently lossy, so it raises instead.
    """
    merged: dict[str, Any] = {
        "events_folded": 0,
        "peak_resident_events": 0,
        "unknown_instance_events": 0,
        "folds": [],
    }
    seen: set[int] = set()
    folds: list[dict[str, Any]] = []
    for obj in dicts:
        merged["events_folded"] += obj["events_folded"]
        merged["unknown_instance_events"] += obj["unknown_instance_events"]
        # Peak residency is per-process; the fleet-wide figure is the
        # worst single shard, not a sum of non-simultaneous peaks.
        merged["peak_resident_events"] = max(
            merged["peak_resident_events"], obj["peak_resident_events"]
        )
        for fold_obj in obj["folds"]:
            iid = int(fold_obj["instance_id"])
            if iid in seen:
                raise ValueError(
                    f"instance id {iid} appears in more than one shard; "
                    "shards must hold disjoint session subsets"
                )
            seen.add(iid)
            folds.append(fold_obj)
    merged["folds"] = sorted(folds, key=lambda f: int(f["instance_id"]))
    return merged


def merge_engines(
    engines: Iterable[StreamingUseCaseEngine],
    *,
    thresholds: Thresholds = PAPER_THRESHOLDS,
    detector_config: DetectorConfig | None = None,
    rules: tuple[Rule, ...] = ALL_RULES,
) -> StreamingUseCaseEngine:
    """Fuse quiescent shard engines into one whose ``report()`` equals
    a single engine fed the union of the shards' streams."""
    return engine_from_dict(
        merge_engine_dicts(engine_to_dict(e) for e in engines),
        thresholds=thresholds,
        detector_config=detector_config,
        rules=rules,
    )


# -- the write-ahead journal -------------------------------------------------


def _encode_record(rtype: int, payload: bytes) -> bytes:
    return _REC_HEADER.pack(rtype, len(payload), zlib.crc32(payload)) + payload


class SessionJournal:
    """Append-only per-session write-ahead journal.

    One instance per live session; appends are serialized by the
    session lock but an internal lock makes the journal safe on its
    own.  Appends are flushed to the OS per record (a SIGKILL'd
    process loses nothing already appended); ``fsync=True`` extends
    that to power loss at a heavy per-append cost.

    Disk I/O goes through ``fs`` (a
    :class:`~repro.service.governor.RealFS`, or a
    :class:`~repro.testing.faults.FaultFS` under test) and failures are
    classified by ``governor``.  A failed append leaves the cursor
    untouched and *self-heals* the segment: the partial record is
    truncated away (or, when even that fails, the segment is abandoned
    and the next append rolls to a fresh one), so a later successful
    append can never land behind a torn record that a crash-recovery
    scan would treat as the end of the journal.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        segment_max_bytes: int = 4 * 1024 * 1024,
        fsync: bool = False,
        fs: RealFS | None = None,
        governor: ResourceGovernor | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._segment_max = segment_max_bytes
        self._fsync = fsync
        self._fs = fs if fs is not None else (
            governor.fs if governor is not None else REAL_FS
        )
        self._governor = governor
        self._lock = threading.Lock()
        self._fh = None
        self._closed = False
        self._segment_bytes = 0
        self.appended_events = 0
        self.checkpoints = 0
        self.append_failures = 0
        self.checkpoint_failures = 0
        existing = sorted(self.directory.glob(_SEGMENT_GLOB))
        self._next_index = (
            int(existing[-1].stem.split("-")[1]) + 1 if existing else 0
        )
        try:
            self._open_segment()
        except OSError as exc:
            # A full or failing disk at construction time (typically
            # crash-recovery on the very volume that caused the crash)
            # must not prevent the session from coming up: the first
            # append retries the open, and *its* failure surfaces
            # through the normal ResourcePressure ladder instead of
            # aborting recovery.
            self.append_failures += 1
            self._record_failure("journal-open", exc)

    def _open_segment(self) -> None:
        path = self.directory / f"journal-{self._next_index:06d}.wal"
        self._next_index += 1
        fh = self._fs.open(path, "wb")
        try:
            self._fs.write(fh, JOURNAL_MAGIC)
        except OSError:
            fh.close()
            self._fs.unlink(path)  # a magic-less file is not a segment
            raise
        self._fh = fh
        self._segment_bytes = len(JOURNAL_MAGIC)

    def _record_failure(self, op: str, exc: OSError) -> None:
        if self._governor is not None and is_resource_error(exc):
            self._governor.record_failure(op, exc)

    def _append(self, rtype: int, payload: bytes) -> None:
        if self._closed:
            raise RuntimeError("journal already closed")
        if self._fh is None:
            # A previous failure abandoned the segment; start fresh.
            try:
                self._open_segment()
            except OSError as exc:
                self.append_failures += 1
                self._record_failure("journal-append", exc)
                raise
        record = _encode_record(rtype, payload)
        try:
            self._fs.write(self._fh, record)
            if self._fsync:
                self._fs.fsync(self._fh)
        except OSError as exc:
            self.append_failures += 1
            self._record_failure("journal-append", exc)
            # Self-heal: drop whatever partial bytes the failed write
            # left so the next append starts at a clean record boundary.
            try:
                self._fh.seek(self._segment_bytes)
                self._fh.truncate(self._segment_bytes)
                self._fh.flush()
            except OSError:
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None  # next append rolls to a fresh segment
            raise
        self._segment_bytes += len(record)
        if self._segment_bytes >= self._segment_max:
            self._fh.close()
            self._fh = None  # stays None if the roll fails (retried later)
            try:
                self._open_segment()
            except OSError as exc:
                # The append itself landed in the closed segment; the
                # roll is retried by the next append.
                self._record_failure("journal-roll", exc)

    # -- appends (called with the session quiescent or locked) -----------

    def append_events(self, start: int, raws: list[RawEvent]) -> None:
        body = bytearray(_EVENTS_HEADER.pack(start, len(raws)))
        for raw in raws:
            body += pack_record(raw)
        with self._lock:
            self._append(REC_EVENTS, bytes(body))
            self.appended_events += len(raws)

    def append_register(self, entries: list[dict[str, Any]]) -> None:
        payload = json.dumps(
            {"instances": entries}, separators=(",", ":")
        ).encode("utf-8")
        with self._lock:
            self._append(REC_REGISTER, payload)

    def append_fin(self) -> None:
        with self._lock:
            self._append(REC_FIN, b"")

    def checkpoint(self, state: dict[str, Any]) -> None:
        """Atomically persist ``state`` and prune the journal behind it.

        The caller guarantees ``state`` covers every event appended so
        far (``applied == received`` and the engine flushed); only then
        is deleting the old segments sound.

        A resource failure while writing the checkpoint leaves the old
        checkpoint and every journal segment in place (the ``.tmp`` +
        ``replace`` dance means a torn write is never visible), counts
        the failure, and re-raises; the caller skips the checkpoint and
        retries later.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("journal already closed")
            tmp = self.directory / (_CHECKPOINT_NAME + ".tmp")
            try:
                self._fs.write_text(tmp, json.dumps(state, separators=(",", ":")))
                self._fs.replace(tmp, self.directory / _CHECKPOINT_NAME)
            except OSError as exc:
                self.checkpoint_failures += 1
                self._record_failure("checkpoint", exc)
                try:
                    self._fs.unlink(tmp)
                except OSError:
                    pass
                raise
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            keep_from = self._next_index
            try:
                self._open_segment()
            except OSError as exc:
                self._record_failure("journal-roll", exc)
            for seg in self.directory.glob(_SEGMENT_GLOB):
                if int(seg.stem.split("-")[1]) < keep_from:
                    try:
                        self._fs.unlink(seg)
                    except OSError:
                        pass  # pruning is an optimization, not a promise
            self.checkpoints += 1

    def size_bytes(self) -> int:
        """On-disk footprint of this session (segments + checkpoint),
        for state-budget accounting."""
        total = 0
        for child in self.directory.glob(_SEGMENT_GLOB):
            total += self._fs.size(child)
        total += self._fs.size(self.directory / _CHECKPOINT_NAME)
        return total

    # -- reads (deferred-window replay) ----------------------------------

    def iter_event_windows(self, from_index: int) -> Iterator[tuple[int, list[RawEvent]]]:
        """Yield journaled ``(start, raws)`` windows covering stream
        indices ``>= from_index``, trimmed to start exactly there.

        Safe while the journal is open for appending: appends flush per
        record, so every complete record is visible to the reader.

        The cursor advances monotonically across records, so a journal
        holding retransmit overlap (a legal state — e.g. a window that
        landed twice around a crash) yields each stream index exactly
        once, the same dedup :func:`recover_session_dir` applies.
        Feeding an overlapping record twice would double-fold events
        into the engine.
        """
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
            segments = sorted(self.directory.glob(_SEGMENT_GLOB))
        cursor = from_index
        for segment in segments:
            records, _ = scan_segment(segment)
            for rtype, payload in records:
                if rtype != REC_EVENTS:
                    continue
                start, raws = _decode_events_payload(payload)
                end = start + len(raws)
                if end <= cursor:
                    continue
                if start < cursor:
                    yield cursor, raws[cursor - start :]
                else:
                    yield start, raws
                cursor = end

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def delete(self) -> None:
        """Close and remove the whole session directory."""
        self.close()
        shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "SessionJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _decode_events_payload(payload: bytes) -> tuple[int, list[RawEvent]]:
    start, count = _EVENTS_HEADER.unpack_from(payload)
    body = payload[_EVENTS_HEADER.size :]
    return start, [
        unpack_record(body[offset : offset + RECORD_SIZE])
        for offset in range(0, count * RECORD_SIZE, RECORD_SIZE)
    ]


def scan_segment(
    path: str | Path, *, fs: RealFS | None = None
) -> tuple[list[tuple[int, bytes]], int | None]:
    """Read one segment; returns ``(records, torn_offset)``.

    ``torn_offset`` is the byte offset of the first incomplete or
    CRC-failing record (``None`` when the file is wholly clean).  The
    journal is append-only, so a bad record can only be the torn tail
    of a crash mid-append; everything before it is trusted, everything
    after it is not.
    """
    path = Path(path)
    data = (fs if fs is not None else REAL_FS).read_bytes(path)
    try:
        parse_journal_magic(data[:_MAGIC_LEN])
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None
    records: list[tuple[int, bytes]] = []
    offset = _MAGIC_LEN
    while offset < len(data):
        if offset + _REC_HEADER.size > len(data):
            return records, offset
        rtype, length, crc = _REC_HEADER.unpack_from(data, offset)
        if rtype not in _KNOWN_RECORDS or length > MAX_JOURNAL_PAYLOAD:
            return records, offset
        end = offset + _REC_HEADER.size + length
        if end > len(data):
            return records, offset
        payload = data[offset + _REC_HEADER.size : end]
        if zlib.crc32(payload) != crc:
            return records, offset
        records.append((rtype, payload))
        offset = end
    return records, None


# -- recovery ----------------------------------------------------------------


@dataclass
class RecoveredSession:
    """Everything a daemon needs to resurrect one session from disk."""

    session_id: str
    engine: StreamingUseCaseEngine
    received: int
    applied: int
    finished: bool
    checkpoint_loaded: bool
    events_replayed: int
    truncated_bytes: int
    duplicates: int = 0
    notes: list[str] = field(default_factory=list)


def recover_session_dir(
    directory: str | Path,
    *,
    thresholds: Thresholds = PAPER_THRESHOLDS,
    detector_config: DetectorConfig | None = None,
    rules: tuple[Rule, ...] = ALL_RULES,
    truncate: bool = True,
) -> RecoveredSession:
    """Rebuild one session from its journal directory.

    Loads the checkpoint if present (falling back to a full replay when
    it is unreadable), replays every journal record past the
    checkpoint's ``applied`` cursor in append order, and truncates a
    torn tail back to the last whole record so the reopened journal
    and the rebuilt state agree.
    """
    directory = Path(directory)
    session_id = directory.name
    notes: list[str] = []
    engine: StreamingUseCaseEngine | None = None
    received = applied = 0
    duplicates = 0
    checkpoint_loaded = False

    ckpt_path = directory / _CHECKPOINT_NAME
    if ckpt_path.exists():
        try:
            state = json.loads(ckpt_path.read_text())
            if isinstance(state, dict):
                version = state.get("version", 0)
                if isinstance(version, int) and version > CHECKPOINT_VERSION:
                    # Outside this try's except net on purpose: a
                    # future-version checkpoint must refuse recovery,
                    # not degrade into a replay-from-zero that would
                    # clobber the newer state on the next checkpoint.
                    raise FutureFormatError(
                        f"checkpoint of session {session_id} is format "
                        f"v{version}, newer than this build reads "
                        f"(v{CHECKPOINT_VERSION}); run 'dsspy migrate' "
                        "with the newer build or upgrade this one"
                    )
            engine = engine_from_dict(
                state["engine"],
                thresholds=thresholds,
                detector_config=detector_config,
                rules=rules,
            )
            received = applied = int(state["applied"])
            duplicates = int(state.get("duplicates", 0))
            checkpoint_loaded = True
        except (OSError, ValueError, KeyError, TypeError) as exc:
            notes.append(f"checkpoint unreadable ({exc}); replaying from zero")
            engine = None
    if engine is None:
        engine = StreamingUseCaseEngine(
            thresholds=thresholds, detector_config=detector_config, rules=rules
        )
        received = applied = 0

    finished = False
    events_replayed = 0
    truncated_bytes = 0
    for segment in sorted(directory.glob(_SEGMENT_GLOB)):
        records, torn_offset = scan_segment(segment)
        if torn_offset is not None:
            size = segment.stat().st_size
            truncated_bytes += size - torn_offset
            notes.append(
                f"{segment.name}: torn tail, dropped {size - torn_offset} bytes"
            )
            if truncate:
                with segment.open("r+b") as fh:
                    fh.truncate(torn_offset)
        for rtype, payload in records:
            if rtype == REC_FIN:
                finished = True
            elif rtype == REC_REGISTER:
                try:
                    obj = json.loads(payload.decode("utf-8"))
                    for iid, kind, site, label in parse_register_entries(obj):
                        engine.register_instance(iid, kind, site=site, label=label)
                except ValueError as exc:
                    notes.append(f"skipped bad REGISTER record: {exc}")
            elif rtype == REC_EVENTS:
                start, raws = _decode_events_payload(payload)
                end = start + len(raws)
                if end > received:
                    received = end
                if end <= applied:
                    continue  # checkpoint already covers this window
                if start > applied:
                    # Cursor gap: events [applied, start) exist on no
                    # disk.  Jump the cursor rather than letting it lag
                    # — a lagging ``applied`` would make the resurrected
                    # session re-drain (and double-fold) the tail the
                    # engine is about to absorb right here.  The loss
                    # itself is fsck's to flag; recovery just must not
                    # compound it.
                    notes.append(
                        f"{segment.name}: cursor gap {applied}..{start}, "
                        f"{start - applied} events lost"
                    )
                    applied = start
                fresh = raws[applied - start :] if start < applied else raws
                engine.feed_window(fresh)
                applied += len(fresh)
                events_replayed += len(fresh)
    return RecoveredSession(
        session_id=session_id,
        engine=engine,
        received=received,
        applied=applied,
        finished=finished,
        checkpoint_loaded=checkpoint_loaded,
        events_replayed=events_replayed,
        truncated_bytes=truncated_bytes,
        duplicates=duplicates,
        notes=notes,
    )


def scan_state_dir(state_dir: str | Path) -> list[Path]:
    """Session directories under ``state_dir`` (those with journals)."""
    state_dir = Path(state_dir)
    if not state_dir.is_dir():
        return []
    return sorted(
        child
        for child in state_dir.iterdir()
        if child.is_dir() and any(child.glob(_SEGMENT_GLOB))
    )


# -- overload protection -----------------------------------------------------


class AdmissionStage:
    """Degradation ladder positions (ints: comparisons are ordering).

    ``JOURNAL_COMPACT`` is the disk-pressure rung: ingest continues at
    full fidelity but every window force-checkpoints the session,
    which prunes journal segments — the one ladder step that *frees*
    resources instead of consuming fewer.  Rate overload never selects
    it (sampling is the right answer there); only the
    :class:`~repro.service.governor.ResourceGovernor` does.
    """

    NORMAL = 0
    DECIMATE = 1
    JOURNAL_COMPACT = 2
    JOURNAL = 3
    SHED = 4

    _NAMES = {
        0: "normal",
        1: "decimate",
        2: "journal-compact",
        3: "journal",
        4: "shed",
    }

    @classmethod
    def name(cls, stage: int) -> str:
        return cls._NAMES.get(stage, f"unknown({stage})")


class AdmissionController:
    """Global + per-session event-rate quotas driving the degradation
    ladder.

    The *load factor* is the worst ratio of observed rate to quota
    (global and per-session, whichever is more over budget).  Stage
    thresholds are multiples of quota: at ``decimate_at`` the daemon
    starts sampling, at ``journal_at`` it journals without analyzing
    (recovery or FIN replays the backlog), at ``shed_at`` it refuses
    the window with a RETRY-AFTER reply and drops the connection —
    the client's backoff turns that into spaced-out retries.

    Rates are measured with ``min_span=1.0`` so a single early burst
    is averaged over at least a second instead of tripping SHED from
    the first millisecond of traffic.
    """

    def __init__(
        self,
        *,
        global_events_per_sec: float | None = None,
        session_events_per_sec: float | None = None,
        decimate_at: float = 1.0,
        journal_at: float = 2.0,
        shed_at: float = 4.0,
        retry_after: float = 2.0,
        clock: Clock = SYSTEM_CLOCK,
        governor: ResourceGovernor | None = None,
    ) -> None:
        if not (0 < decimate_at <= journal_at <= shed_at):
            raise ValueError(
                "stage thresholds must satisfy 0 < decimate_at <= "
                f"journal_at <= shed_at, got {decimate_at}/{journal_at}/{shed_at}"
            )
        from .session import RateMeter  # deferred: session imports this module

        self.global_quota = global_events_per_sec
        self.session_quota = session_events_per_sec
        self.decimate_at = decimate_at
        self.journal_at = journal_at
        self.shed_at = shed_at
        self.retry_after = retry_after
        self.governor = governor
        self._global_rate = RateMeter(clock=clock)
        self._lock = threading.Lock()
        self.windows_by_stage = {stage: 0 for stage in range(5)}
        self.refused_hellos = 0

    def _stage_for(self, load: float) -> int:
        if load >= self.shed_at:
            return AdmissionStage.SHED
        if load >= self.journal_at:
            return AdmissionStage.JOURNAL
        if load >= self.decimate_at:
            return AdmissionStage.DECIMATE
        return AdmissionStage.NORMAL

    def _load(self, session_rate: float) -> float:
        load = 0.0
        if self.global_quota:
            load = self._global_rate.rate(min_span=1.0) / self.global_quota
        if self.session_quota:
            load = max(load, session_rate / self.session_quota)
        return load

    def _pressure_stage(self) -> int:
        """The resource governor's demanded stage (NORMAL without one).
        Taken *outside* the controller lock — the governor has its own."""
        if self.governor is None:
            return AdmissionStage.NORMAL
        return self.governor.pressure_stage()

    def admit(self, session, n: int) -> int:
        """Account ``n`` incoming events and return the stage to apply.

        ``session`` supplies its own :class:`RateMeter` (``.rate``);
        the controller owns the global one.  The verdict is the worse
        of the rate ladder and the resource governor's pressure ladder.
        """
        pressure = self._pressure_stage()
        with self._lock:
            self._global_rate.tick(n)
            stage = self._stage_for(self._load(session.rate.rate(min_span=1.0)))
            stage = max(stage, pressure)
            self.windows_by_stage[stage] += 1
            return stage

    def peek(self) -> int:
        """Current global stage without accounting anything (used to
        turn away a HELLO while shedding)."""
        pressure = self._pressure_stage()
        with self._lock:
            return max(self._stage_for(self._load(0.0)), pressure)

    def note_hello_refused(self) -> None:
        """Account one HELLO turned away while shedding — part of the
        no-silent-loss ledger: every RETRY-AFTER the daemon ever sends
        must be visible in some counter."""
        with self._lock:
            self.refused_hellos += 1

    def stats(self) -> dict[str, Any]:
        pressure = self._pressure_stage()
        with self._lock:
            out = {
                "global_events_per_sec": round(self._global_rate.rate(min_span=1.0), 1),
                "global_quota": self.global_quota,
                "session_quota": self.session_quota,
                "stage": AdmissionStage.name(
                    max(self._stage_for(self._load(0.0)), pressure)
                ),
                "windows_by_stage": {
                    AdmissionStage.name(s): n
                    for s, n in self.windows_by_stage.items()
                },
                "refused_hellos": self.refused_hellos,
            }
        if self.governor is not None:
            out["governor"] = self.governor.stats()
        return out


def warn_notes(session_id: str, notes: list[str]) -> None:
    """Surface recovery anomalies without failing the recovery."""
    for note in notes:
        warnings.warn(f"session {session_id}: {note}", RuntimeWarning, stacklevel=3)


__all__ = [
    "AdmissionController",
    "AdmissionStage",
    "CHECKPOINT_VERSION",
    "FutureFormatError",
    "JOURNAL_MAGIC",
    "JOURNAL_MAGIC_PREFIX",
    "JOURNAL_VERSION",
    "MAX_JOURNAL_PAYLOAD",
    "REC_EVENTS",
    "REC_FIN",
    "REC_REGISTER",
    "RecoveredSession",
    "SessionJournal",
    "engine_from_dict",
    "engine_to_dict",
    "journal_magic",
    "parse_journal_magic",
    "parse_register_entries",
    "recover_session_dir",
    "scan_segment",
    "scan_state_dir",
    "segment_version",
]
