"""The profiling daemon: many instrumented clients, one analyzer.

:class:`ProfilingDaemon` listens on TCP (or a Unix socket), speaks the
frame protocol of :mod:`~repro.service.protocol`, and keeps one
:class:`~repro.service.session.Session` — engine, cursor, stats — per
client.  Each accepted connection gets its own handler thread; a
background *reaper* enforces the time-based guarantees:

- an ACTIVE session whose client went silent past ``heartbeat_timeout``
  has its connection closed (the session detaches and can resume);
- a DETACHED session past ``session_linger`` is finalized — the daemon
  emits a report for the events it *did* receive, which is what makes
  an abrupt client death non-fatal to the capture;
- a FINISHED session past ``session_linger`` is evicted from memory.

Shutdown is a first-class path, not process teardown: ``SIGTERM`` and
``SIGINT`` (when :meth:`serve_forever` installs handlers) stop the
accept loop, close every live connection, flush and finalize every
session (reports optionally land in ``report_dir``), and remove the
Unix socket file.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import socket
import stat
import threading
import time
import uuid
from pathlib import Path
from typing import Any

from ..patterns.detector import DetectorConfig
from ..testing.clock import SYSTEM_CLOCK, Clock
from ..usecases.rules import ALL_RULES, Rule
from ..usecases.thresholds import PAPER_THRESHOLDS, Thresholds
from .durability import (
    AdmissionController,
    AdmissionStage,
    SessionJournal,
    parse_register_entries,
    recover_session_dir,
    scan_state_dir,
    warn_notes,
)
from ..events.spill import RECORD_SIZE, unpack_records
from .governor import RealFS, ResourceGovernor, ResourcePressure, is_resource_error
from .protocol import (
    PROTOCOL_FEATURES,
    PROTOCOL_MIN_SUPPORTED,
    PROTOCOL_VERSION,
    MessageType,
    ProtocolError,
    decode_events,
    decode_json,
    encode_json,
    negotiate_version,
    parse_shm_offer,
    parse_version_offer,
    recv_frame,
)
from .session import Session, SessionState
from .shm import ShmRing
from .streaming import StreamingUseCaseEngine


class _ShmConsumer:
    """Per-session drain thread for a client's shared-memory ring.

    Polls the ring and folds whole records into the session's ingest
    pipeline.  Records are *not* individually screened the way socket
    EVENTS frames are: skipping one would desynchronize the stream
    cursor both sides use for exact resume, and the trust boundary was
    already enforced at attach time (header validation in
    :meth:`~repro.service.shm.ShmRing.attach`) — the ring lives in the
    same trust domain as the client's own memory.

    Admission control still applies: when the controller says shed,
    the consumer simply stops reading — the ring fills up and the
    *client* stalls, which is backpressure with zero protocol traffic.
    """

    def __init__(
        self,
        ring: ShmRing,
        session: Session,
        admission: AdmissionController | None = None,
        poll_interval: float = 0.001,
    ) -> None:
        self._ring = ring
        self._session = session
        self._admission = admission
        self._poll = poll_interval
        self._stop = threading.Event()
        self._stopped = False
        self.error: Exception | None = None
        self._thread = threading.Thread(
            target=self._run, name="dsspy-daemon-shm", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        try:
            while not self._stop.is_set():
                if not self._drain_once():
                    self._stop.wait(self._poll)
        except Exception as exc:  # ring torn down under us, pipeline dead
            self.error = exc

    def _drain_once(self, final: bool = False) -> bool:
        """Ingest one batch; returns whether any records moved."""
        count = self._ring.used // RECORD_SIZE
        if count <= 0:
            return False
        stage = AdmissionStage.NORMAL
        if self._admission is not None and not final:
            stage = self._admission.admit(self._session, count)
            if stage >= AdmissionStage.SHED:
                return False  # leave the bytes in the ring: backpressure
        data = self._ring.read(count * RECORD_SIZE)
        raws = unpack_records(data)
        session = self._session
        try:
            session.ingest(session.received, raws, stage=stage)
        except ResourcePressure:
            # Journal refused the batch: the session accounted it as a
            # refused window.  Keep the consumer alive and back off —
            # the ring backpressures the client while pressure decays.
            return False
        session.touch()
        return True

    def stop(self, drain: bool = True, timeout: float = 5.0) -> None:
        """Stop the thread; with ``drain``, ingest the ring's remainder
        so ``session.received`` is final before anyone reads it."""
        if self._stopped:
            return
        self._stopped = True
        self._stop.set()
        self._thread.join(timeout)
        if drain:
            try:
                while self._drain_once(final=True):
                    pass
            except Exception as exc:
                self.error = exc
        self._ring.close()


def _remove_stale_unix_socket(path: Path) -> None:
    """Unlink ``path`` only if it is a dead daemon's leftover socket.

    A crashed daemon (SIGKILL, power loss) cannot remove its socket
    file, so a restart must cope with the leftover — but blindly
    unlinking would hijack a *live* daemon's address or destroy an
    unrelated file.  The probe: a non-socket path is refused outright;
    a socket someone still answers on is an address-in-use error; only
    a socket nobody accepts on (``ECONNREFUSED``) is removed.
    """
    try:
        mode = path.lstat().st_mode
    except FileNotFoundError:
        return
    if not stat.S_ISSOCK(mode):
        raise OSError(
            f"{path} exists and is not a socket; refusing to remove it"
        )
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(1.0)
    try:
        probe.connect(str(path))
    except ConnectionRefusedError:
        path.unlink(missing_ok=True)  # dead socket: safe to reclaim
    except FileNotFoundError:
        pass  # raced away; bind will recreate it
    else:
        raise OSError(f"{path} is in use by a live daemon")
    finally:
        probe.close()


class ProfilingDaemon:
    """Long-running analysis service for remote event streams.

    Parameters
    ----------
    host, port:
        TCP listen address; ``port=0`` picks a free port (see
        :attr:`address`).  Ignored when ``unix_socket`` is given.
    unix_socket:
        Path for an ``AF_UNIX`` listener instead of TCP.
    heartbeat_timeout:
        Seconds of client silence before its connection is closed.
    session_linger:
        Seconds a detached session waits for a resume before being
        finalized, and a finished one stays queryable before eviction.
    max_pending_events / overflow / spill_dir:
        Per-session ingest bounds, see
        :class:`~repro.service.session.IngestPipeline`.
    report_dir:
        When set, every finalized session writes
        ``<report_dir>/<session>.json``.
    clock:
        Time source for every policy deadline (heartbeat staleness,
        linger windows, reaper cadence, uptime).  Defaults to real
        time; tests pass a :class:`~repro.testing.clock.SimClock` and
        advance it instead of sleeping.  I/O waits (socket reads,
        ingest backpressure, close-time connection drain) stay on real
        time regardless.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_socket: str | Path | None = None,
        *,
        heartbeat_timeout: float = 30.0,
        session_linger: float = 60.0,
        max_pending_events: int = 200_000,
        overflow: str = "block",
        spill_dir: str | None = None,
        report_dir: str | Path | None = None,
        state_dir: str | Path | None = None,
        checkpoint_every: int = 50_000,
        journal_fsync: bool = False,
        admission: AdmissionController | None = None,
        max_events_per_sec: float | None = None,
        session_max_events_per_sec: float | None = None,
        retry_after: float = 2.0,
        state_budget: int | None = None,
        governor: ResourceGovernor | None = None,
        fs: RealFS | None = None,
        thresholds: Thresholds = PAPER_THRESHOLDS,
        detector_config: DetectorConfig | None = None,
        rules: tuple[Rule, ...] = ALL_RULES,
        clock: Clock = SYSTEM_CLOCK,
        reuseport: bool = False,
    ) -> None:
        self.clock = clock
        self.heartbeat_timeout = heartbeat_timeout
        self.session_linger = session_linger
        self._max_pending_events = max_pending_events
        self._overflow = overflow
        self._spill_dir = spill_dir
        self._report_dir = Path(report_dir) if report_dir is not None else None
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self._checkpoint_every = checkpoint_every
        self._journal_fsync = journal_fsync
        self._thresholds = thresholds
        self._detector_config = detector_config
        self._rules = rules
        # Resource governance: any of state_budget / fs / governor turns
        # it on; a state_dir alone also gets one so disk failures are
        # always accounted even without a configured budget.
        if governor is None and (
            state_budget is not None or fs is not None or state_dir is not None
        ):
            governor = ResourceGovernor(
                fs=fs,
                state_budget_bytes=state_budget,
                retry_after=retry_after,
                clock=clock,
            )
        self._governor = governor
        self._fs = fs if fs is not None else (
            governor.fs if governor is not None else None
        )
        if admission is None and (
            max_events_per_sec or session_max_events_per_sec or governor is not None
        ):
            admission = AdmissionController(
                global_events_per_sec=max_events_per_sec,
                session_events_per_sec=session_max_events_per_sec,
                retry_after=retry_after,
                clock=clock,
                governor=governor,
            )
        elif admission is not None and governor is not None and admission.governor is None:
            admission.governor = governor
        self._admission = admission

        self.sessions: dict[str, Session] = {}
        self._sessions_lock = threading.Lock()
        self._shm_consumers: dict[str, _ShmConsumer] = {}
        self._shm_lock = threading.Lock()
        self._conns: dict[int, socket.socket] = {}
        self._conn_sessions: dict[int, str] = {}
        self._conns_lock = threading.Lock()
        self._closed = False
        self._close_lock = threading.Lock()
        self.started_at = clock.wall()
        self._shutdown = threading.Event()
        self._drain_requested = False
        #: Frames of a type this build does not know, skipped whole
        #: (version-skew tolerance; framing is self-delimiting).
        self.frames_skipped = 0
        self.recovered_sessions: list[str] = []
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            self._recover_state_dir()

        self.unix_socket_path: Path | None = None
        if unix_socket is not None:
            self.unix_socket_path = Path(unix_socket)
            _remove_stale_unix_socket(self.unix_socket_path)
            self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._listener.bind(str(self.unix_socket_path))
            self.host, self.port = None, None
        else:
            self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if reuseport:
                # Fleet workers in "reuseport" mode share one listen
                # address; the kernel spreads accepts across them.
                if not hasattr(socket, "SO_REUSEPORT"):
                    raise OSError("SO_REUSEPORT is not supported on this platform")
                self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            self._listener.bind((host, port))
            self.host, self.port = self._listener.getsockname()[:2]
        self._listener.listen(64)

        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dsspy-daemon-accept", daemon=True
        )
        self._accept_thread.start()
        self._reaper_thread = threading.Thread(
            target=self._reap_loop, name="dsspy-daemon-reaper", daemon=True
        )
        self._reaper_thread.start()

    # -- addresses -------------------------------------------------------

    @property
    def address(self) -> str:
        """Dialable address string (``host:port`` or ``unix:<path>``)."""
        if self.unix_socket_path is not None:
            return f"unix:{self.unix_socket_path}"
        return f"{self.host}:{self.port}"

    @property
    def bound_port(self) -> int | None:
        """The actually-bound TCP port (resolves ``port=0``); ``None``
        for Unix-socket daemons.  Fleet supervisors and tests that ask
        for an ephemeral port read the real one back from here."""
        return self.port

    # -- crash recovery --------------------------------------------------

    def _recover_state_dir(self) -> None:
        """Rebuild every unfinished session found under ``state_dir``.

        Runs before the listener opens, so a resuming client can never
        race a half-rebuilt session.  Directories whose journal carries
        a FIN record belong to cleanly finished sessions — their report
        was already delivered or written — and are deleted, not
        resurrected.
        """
        for directory in scan_state_dir(self.state_dir):
            recovered = recover_session_dir(
                directory,
                thresholds=self._thresholds,
                detector_config=self._detector_config,
                rules=self._rules,
            )
            warn_notes(recovered.session_id, recovered.notes)
            if recovered.finished:
                shutil.rmtree(directory, ignore_errors=True)
                continue
            session = Session(
                recovered.session_id,
                recovered.engine,
                max_pending_events=self._max_pending_events,
                overflow=self._overflow,
                spill_dir=self._spill_dir,
                clock=self.clock,
                journal=SessionJournal(
                    directory,
                    fsync=self._journal_fsync,
                    governor=self._governor,
                ),
                checkpoint_every=self._checkpoint_every,
                governor=self._governor,
            )
            session.received = recovered.received
            session.applied = recovered.applied
            session.duplicates = recovered.duplicates
            session.recovered = True
            session.state = SessionState.DETACHED
            session.detached_at = self.clock.monotonic()
            self.sessions[recovered.session_id] = session
            self.recovered_sessions.append(recovered.session_id)

    def _new_journal(self, session_id: str) -> SessionJournal | None:
        if self.state_dir is None:
            return None
        return SessionJournal(
            self.state_dir / session_id,
            fsync=self._journal_fsync,
            governor=self._governor,
        )

    # -- accept / handle -------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._handle,
                args=(conn,),
                name="dsspy-daemon-conn",
                daemon=True,
            )
            thread.start()

    def _handle(self, conn: socket.socket) -> None:
        key = id(conn)
        with self._conns_lock:
            self._conns[key] = conn
        session: Session | None = None
        try:
            while True:
                frame = recv_frame(conn)
                if frame is None:
                    break  # clean EOF
                mtype, payload = frame
                if mtype == MessageType.HELLO:
                    session = self._hello(conn, payload)
                    if session is None:
                        break  # shedding load: RETRY_AFTER already sent
                    with self._conns_lock:
                        self._conn_sessions[key] = session.session_id
                elif mtype == MessageType.STATS:
                    conn.sendall(encode_json(MessageType.ACK, self.stats()))
                elif mtype == MessageType.SNAPSHOT:
                    # Like STATS, allowed before HELLO: the fleet
                    # coordinator is an observer, not a producer.
                    req = decode_json(payload)
                    conn.sendall(
                        encode_json(
                            MessageType.ACK, self.snapshot(req.get("session"))
                        )
                    )
                elif session is None:
                    raise ProtocolError(
                        f"{MessageType.name(mtype)} before HELLO"
                    )
                elif mtype == MessageType.REGISTER:
                    self._register(session, payload)
                elif mtype == MessageType.EVENTS:
                    # validate=True: a corrupted record (torn frame, bad
                    # proxy, bit rot) is rejected with a ProtocolError —
                    # tearing down the connection so the client
                    # retransmits the window — rather than folded into
                    # the analysis as garbage.
                    start, raws = decode_events(payload, validate=True)
                    stage = AdmissionStage.NORMAL
                    if self._admission is not None:
                        stage = self._admission.admit(session, len(raws))
                        if stage >= AdmissionStage.SHED:
                            # Refuse the window before it is journaled
                            # or folded; the cursor in the reply tells
                            # the client where to retransmit from once
                            # its backoff delay expires.
                            conn.sendall(
                                encode_json(
                                    MessageType.RETRY_AFTER,
                                    {
                                        "session": session.session_id,
                                        "received": session.received,
                                        "retry_after": self._admission.retry_after,
                                    },
                                )
                            )
                            break
                    try:
                        session.ingest(start, raws, stage=stage)
                    except ResourcePressure as exc:
                        # Disk is refusing the durability barrier; the
                        # window was NOT accepted.  Same contract as
                        # admission shedding — RETRY_AFTER carries the
                        # cursor to retransmit from.
                        conn.sendall(
                            encode_json(
                                MessageType.RETRY_AFTER,
                                {
                                    "session": session.session_id,
                                    "received": session.received,
                                    "retry_after": exc.retry_after,
                                },
                            )
                        )
                        break
                elif mtype == MessageType.HEARTBEAT:
                    session.touch()
                    deferred = session.deferred
                    # JOURNALED instead of ACK tells the client its
                    # events are durable but analysis lags (journal-only
                    # admission); clients treat both as success.
                    conn.sendall(
                        encode_json(
                            MessageType.JOURNALED if deferred else MessageType.ACK,
                            {"session": session.session_id,
                             "received": session.received,
                             "deferred": deferred},
                        )
                    )
                elif mtype == MessageType.FIN:
                    # The ring may still hold events the consumer has
                    # not folded yet; drain it before finalizing so the
                    # report covers everything the client shipped.
                    self._stop_shm_consumer(session.session_id)
                    report = session.finish()
                    self._write_report(session)
                    conn.sendall(
                        encode_json(
                            MessageType.ACK,
                            {
                                "session": session.session_id,
                                "received": session.received,
                                "report": report,
                            },
                        )
                    )
                elif mtype in MessageType._NAMES:
                    raise ProtocolError(
                        f"unexpected message type {MessageType.name(mtype)}"
                    )
                else:
                    # A frame type from a newer protocol than this
                    # build speaks.  Framing is self-delimiting, so the
                    # frame has already been consumed whole — skip it
                    # and keep the session alive instead of treating
                    # version skew as corruption.  Counted and surfaced
                    # in STATS so a mixed fleet is diagnosable.
                    self.frames_skipped += 1
        except ProtocolError as exc:
            try:
                conn.sendall(encode_json(MessageType.ERROR, {"error": str(exc)}))
            except OSError:
                pass
        except OSError:
            pass  # abrupt disconnect: fall through to detach
        finally:
            with self._conns_lock:
                self._conns.pop(key, None)
                self._conn_sessions.pop(key, None)
            try:
                conn.close()
            except OSError:
                pass
            if session is not None:
                # Salvage whatever reached the ring before the link
                # died, so the resume cursor reflects it.
                self._stop_shm_consumer(session.session_id)
                session.detach()

    def _stop_shm_consumer(self, session_id: str, drain: bool = True) -> None:
        with self._shm_lock:
            consumer = self._shm_consumers.pop(session_id, None)
        if consumer is not None:
            consumer.stop(drain=drain)

    def _attach_shm(self, session: Session, offer: tuple[str, int] | None) -> bool:
        """Negotiate the HELLO shm capability for ``session``.

        Any previous consumer is stopped and drained *first* — also
        when the new connection offers no ring — so the ``received``
        cursor sent back in the ACK is final.  Returns whether the
        offered ring was attached; a stale, foreign, or unreachable
        segment declines the capability instead of failing the session.
        """
        self._stop_shm_consumer(session.session_id)
        if offer is None:
            return False
        name, _capacity = offer
        try:
            ring = ShmRing.attach(name)
        except (ValueError, OSError) as exc:
            # An fd-limit or mmap failure here is resource pressure,
            # not a bad offer; count it so STATS shows why shm rings
            # are being declined.
            if self._governor is not None and is_resource_error(exc):
                self._governor.record_failure("shm-attach", exc)
            return False
        with self._shm_lock:
            self._shm_consumers[session.session_id] = _ShmConsumer(
                ring, session, admission=self._admission
            )
        return True

    def _hello(self, conn: socket.socket, payload: bytes) -> Session | None:
        obj = decode_json(payload)
        session_id = obj.get("session") or uuid.uuid4().hex[:12]
        if not isinstance(session_id, str):
            raise ProtocolError("HELLO 'session' must be a string")
        peer_min, peer_max, peer_features = parse_version_offer(obj)
        proto = negotiate_version(peer_min, peer_max)
        if proto is None:
            # Disjoint ranges have no safe fallback; a clear refusal
            # beats a half-understood conversation.
            conn.sendall(
                encode_json(
                    MessageType.ERROR,
                    {
                        "error": (
                            f"no common protocol version: client speaks "
                            f"{peer_min}-{peer_max}, server speaks "
                            f"{PROTOCOL_MIN_SUPPORTED}-{PROTOCOL_VERSION}"
                        )
                    },
                )
            )
            return None
        features = sorted(PROTOCOL_FEATURES & peer_features)
        if (
            self._admission is not None
            and self._admission.peek() >= AdmissionStage.SHED
        ):
            self._admission.note_hello_refused()
            conn.sendall(
                encode_json(
                    MessageType.RETRY_AFTER,
                    {"retry_after": self._admission.retry_after},
                )
            )
            return None
        with self._sessions_lock:
            session = self.sessions.get(session_id)
            if session is None:
                session = Session(
                    session_id,
                    StreamingUseCaseEngine(
                        thresholds=self._thresholds,
                        detector_config=self._detector_config,
                        rules=self._rules,
                    ),
                    max_pending_events=self._max_pending_events,
                    overflow=self._overflow,
                    spill_dir=self._spill_dir,
                    clock=self.clock,
                    journal=self._new_journal(session_id),
                    checkpoint_every=self._checkpoint_every,
                    governor=self._governor,
                )
                self.sessions[session_id] = session
                resumed = False
            else:
                resumed = session.resume()
        session.proto_version = proto
        # shm rides the feature set: a peer that did not advertise it
        # (or a build without it) keeps shipping EVENTS frames on the
        # socket — graceful degradation, not an error.  _attach_shm is
        # called either way so a previous connection's consumer is
        # always stopped and drained before the cursor is ACKed.
        offer = parse_shm_offer(obj) if "shm" in features else None
        shm_ok = self._attach_shm(session, offer)
        conn.sendall(
            encode_json(
                MessageType.ACK,
                {
                    "session": session_id,
                    "received": session.received,
                    "resumed": resumed,
                    "recovered": session.recovered,
                    "shm": shm_ok,
                    "proto": proto,
                    "proto_min": PROTOCOL_MIN_SUPPORTED,
                    "features": features,
                },
            )
        )
        return session

    def _register(self, session: Session, payload: bytes) -> None:
        obj = decode_json(payload)
        try:
            for instance_id, kind, site, label in parse_register_entries(obj):
                session.register(instance_id, kind, site, label)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc

    # -- reaper ----------------------------------------------------------

    def _reap_loop(self) -> None:
        interval = min(1.0, self.heartbeat_timeout / 4)
        while not self.clock.wait(self._shutdown, interval):
            self.reap()

    def reap(self) -> None:
        """One maintenance pass (also called directly by tests)."""
        now = self.clock.monotonic()
        with self._sessions_lock:
            sessions = list(self.sessions.values())
        stale_ids = set()
        for session in sessions:
            if (
                session.state == SessionState.ACTIVE
                and now - session.last_seen > self.heartbeat_timeout
            ):
                stale_ids.add(session.session_id)
            elif (
                session.state == SessionState.DETACHED
                and session.detached_at is not None
                and now - session.detached_at > self.session_linger
            ):
                session.finish()
                self._write_report(session)
            elif (
                session.state == SessionState.FINISHED
                and session.finished_at is not None
                and now - session.finished_at > self.session_linger
            ):
                with self._sessions_lock:
                    self.sessions.pop(session.session_id, None)
                session.delete_journal()  # report delivered: state is garbage
        if stale_ids:
            with self._conns_lock:
                stale_conns = [
                    conn
                    for key, conn in self._conns.items()
                    if self._conn_sessions.get(key) in stale_ids
                ]
            for conn in stale_conns:
                try:  # handler thread unblocks with an OSError and detaches
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
        self._enforce_state_budget()

    def _enforce_state_budget(self) -> None:
        """Keep the state directory under ``--state-budget`` bytes.

        Retention runs cheapest-first: force-checkpoint the fattest
        journals (pruning their replayed segments), then evict FINISHED
        sessions oldest-first (their reports are already delivered),
        and only if the directory *still* overflows pin the admission
        ladder at shed so no new bytes land until usage drops.  Every
        action is counted on the governor — an operator reading STATS
        sees exactly what the cap cost."""
        gov = self._governor
        if (
            gov is None
            or gov.state_budget_bytes is None
            or self.state_dir is None
        ):
            return
        if gov.measure_state(self.state_dir) <= gov.state_budget_bytes:
            return
        gov.note_budget_overrun()
        with self._sessions_lock:
            sessions = list(self.sessions.values())
        for session in sorted(sessions, key=lambda s: s.journal_bytes(), reverse=True):
            if session.journal_bytes() == 0:
                break
            session.compact()
            if gov.measure_state(self.state_dir) <= gov.state_budget_bytes:
                return
        finished = [s for s in sessions if s.state == SessionState.FINISHED]
        finished.sort(key=lambda s: s.finished_at or 0.0)
        for session in finished:
            with self._sessions_lock:
                self.sessions.pop(session.session_id, None)
            session.delete_journal()
            gov.note_budget_eviction()
            if gov.measure_state(self.state_dir) <= gov.state_budget_bytes:
                return
        # Nothing left to reclaim: stop the bleeding at admission.
        gov.force_pressure(3)

    def _write_report(self, session: Session) -> None:
        if self._report_dir is None:
            return
        self._report_dir.mkdir(parents=True, exist_ok=True)
        path = self._report_dir / f"{session.session_id}.json"
        path.write_text(json.dumps(session.finish(), indent=2))

    # -- observability ---------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._sessions_lock:
            sessions = list(self.sessions.values())
        from ..buildinfo import build_info

        out = {
            "address": self.address,
            "uptime_sec": round(self.clock.wall() - self.started_at, 1),
            "state_dir": str(self.state_dir) if self.state_dir else None,
            "recovered_sessions": list(self.recovered_sessions),
            "build": build_info(),
            "frames_skipped": self.frames_skipped,
            "sessions": [s.stats() for s in sessions],
        }
        if self._admission is not None:
            out["admission"] = self._admission.stats()
        elif self._governor is not None:
            out["governor"] = self._governor.stats()
        return out

    def snapshot(self, session_id: str | None = None) -> dict[str, Any]:
        """Serialized engine state of one session (or all of them).

        The payload feeds :func:`~repro.service.durability.merge_engine_dicts`
        on the fleet coordinator.  A session whose ingest folder cannot
        drain within its flush timeout is reported under ``"errors"``
        instead of being silently skipped — a partial merge must be
        visible to the caller, never mistaken for a converged one.
        """
        with self._sessions_lock:
            if session_id is not None:
                found = self.sessions.get(session_id)
                sessions = [found] if found is not None else []
            else:
                sessions = list(self.sessions.values())
        snapshots: list[dict[str, Any]] = []
        errors: list[dict[str, Any]] = []
        for session in sessions:
            try:
                snapshots.append(session.snapshot())
            except TimeoutError as exc:
                errors.append({"session": session.session_id, "error": str(exc)})
        out: dict[str, Any] = {"address": self.address, "snapshots": snapshots}
        if errors:
            out["errors"] = errors
        return out

    # -- lifecycle -------------------------------------------------------

    def serve_forever(self, install_signals: bool = True) -> None:
        """Block until :meth:`shutdown` or a termination signal."""
        if install_signals:
            try:
                signal.signal(signal.SIGTERM, self.handle_signal)
                signal.signal(signal.SIGINT, self.handle_signal)
                signal.signal(signal.SIGUSR1, self.handle_drain_signal)
            except (ValueError, AttributeError):
                pass  # not the main thread; caller drives shutdown
        try:
            self._shutdown.wait()
        finally:
            if self._drain_requested:
                self.park()
            else:
                self.close()

    def handle_signal(self, signum, frame) -> None:  # noqa: ARG002
        self.shutdown()

    def handle_drain_signal(self, signum, frame) -> None:  # noqa: ARG002
        self.request_drain()

    def shutdown(self) -> None:
        """Request shutdown (signal-safe: just sets an event)."""
        self._shutdown.set()

    def request_drain(self) -> None:
        """Request a journal-preserving exit (signal-safe).

        ``serve_forever`` answers with :meth:`park` instead of
        :meth:`close`: sessions are checkpointed and left on disk for
        the next daemon generation — the exit half of a rolling
        upgrade."""
        self._drain_requested = True
        self._shutdown.set()

    def crash(self) -> None:
        """Die abruptly, as SIGKILL would: no flush, no reports, no
        socket-file cleanup — in-memory state is discarded and only the
        journal survives.  The fault-injection harness uses this to
        test crash recovery in-process; a subsequent daemon constructed
        with the same ``state_dir`` must rebuild every session."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._shutdown.set()
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._conns_lock:
            conns = list(self._conns.values())
        for conn in conns:
            try:
                conn.close()  # hard close: handler threads die on OSError
            except OSError:
                pass
        self._accept_thread.join(timeout=5.0)
        self._reaper_thread.join(timeout=5.0)
        with self._shm_lock:
            consumers = list(self._shm_consumers.values())
            self._shm_consumers.clear()
        for consumer in consumers:
            consumer.stop(drain=False)  # a crash salvages nothing
        with self._sessions_lock:
            sessions = list(self.sessions.values())
            self.sessions.clear()
        for session in sessions:
            session.abandon()

    def purge_sessions(self) -> None:
        """Finalize and evict every session, removing its journal.

        The differential oracle calls this between trials: each trial's
        session (plus any stranded by a reset during HELLO) owns a live
        pipeline thread and a journal directory, which would otherwise
        accumulate across hundreds of trials.
        """
        with self._sessions_lock:
            sessions = list(self.sessions.values())
            self.sessions.clear()
        for session in sessions:
            self._stop_shm_consumer(session.session_id)
            if session.state != SessionState.FINISHED:
                session.finish()  # idempotent; joins the pipeline worker
            session.delete_journal()

    def _quiesce_transport(self) -> bool:
        """Common first half of :meth:`close` and :meth:`park`: stop
        accepting, wake the worker threads, and give in-flight
        connections a moment to drain.  Returns False when another
        caller already closed the daemon."""
        with self._close_lock:
            if self._closed:
                return False
            self._closed = True
        self._shutdown.set()
        try:
            # close() alone does not wake a thread blocked in accept()
            # (the in-flight syscall pins the open file description);
            # shutdown() forces accept() to return so the thread exits.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=5.0)
        self._reaper_thread.join(timeout=5.0)
        with self._conns_lock:
            conns = list(self._conns.values())
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            with self._conns_lock:
                if not self._conns:
                    break
            time.sleep(0.01)
        return True

    def _remove_unix_socket(self) -> None:
        if self.unix_socket_path is not None:
            try:
                self.unix_socket_path.unlink()
            except FileNotFoundError:
                pass

    def close(self) -> None:
        """Stop listening, flush and finalize every session, remove the
        Unix socket file.  Idempotent and safe to call from any thread."""
        if not self._quiesce_transport():
            return
        with self._sessions_lock:
            sessions = list(self.sessions.values())
        for session in sessions:
            self._stop_shm_consumer(session.session_id)
            if session.state != SessionState.FINISHED:
                session.finish()
            self._write_report(session)
            # A clean shutdown delivers (or persists) every report, so
            # the journals have served their purpose; only a crash
            # leaves state behind for the next daemon to recover.
            session.delete_journal()
        self._remove_unix_socket()

    def park(self) -> None:
        """Journal-preserving shutdown — the exit half of a rolling
        upgrade.  Unlike :meth:`close`, unfinished sessions are *not*
        finalized: each is quiesced under the checkpoint barrier
        (deferred backlog drained, pipeline flushed, checkpoint
        written) and its journal closed but kept, so the next daemon
        generation on the same state directory resumes every session
        at its exact ``received`` cursor.  Idempotent with close():
        whichever runs first wins."""
        if not self._quiesce_transport():
            return
        with self._sessions_lock:
            sessions = list(self.sessions.values())
        for session in sessions:
            # Drain the ring first so everything the client shipped is
            # in the session (and therefore the journal) before the
            # parking checkpoint freezes the cursor.
            self._stop_shm_consumer(session.session_id)
            if session.state == SessionState.FINISHED:
                # Report already frozen; deliver it and clean up as a
                # normal shutdown would.
                self._write_report(session)
                session.delete_journal()
            else:
                session.park()
        self._remove_unix_socket()

    def __enter__(self) -> "ProfilingDaemon":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
