"""The profiling daemon: many instrumented clients, one analyzer.

:class:`ProfilingDaemon` listens on TCP (or a Unix socket), speaks the
frame protocol of :mod:`~repro.service.protocol`, and keeps one
:class:`~repro.service.session.Session` — engine, cursor, stats — per
client.  Each accepted connection gets its own handler thread; a
background *reaper* enforces the time-based guarantees:

- an ACTIVE session whose client went silent past ``heartbeat_timeout``
  has its connection closed (the session detaches and can resume);
- a DETACHED session past ``session_linger`` is finalized — the daemon
  emits a report for the events it *did* receive, which is what makes
  an abrupt client death non-fatal to the capture;
- a FINISHED session past ``session_linger`` is evicted from memory.

Shutdown is a first-class path, not process teardown: ``SIGTERM`` and
``SIGINT`` (when :meth:`serve_forever` installs handlers) stop the
accept loop, close every live connection, flush and finalize every
session (reports optionally land in ``report_dir``), and remove the
Unix socket file.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time
import uuid
from pathlib import Path
from typing import Any

from ..patterns.detector import DetectorConfig
from ..testing.clock import SYSTEM_CLOCK, Clock
from ..usecases.rules import ALL_RULES, Rule
from ..usecases.thresholds import PAPER_THRESHOLDS, Thresholds
from .protocol import (
    MessageType,
    ProtocolError,
    decode_events,
    decode_json,
    encode_json,
    recv_frame,
)
from .session import Session, SessionState
from .streaming import StreamingUseCaseEngine


class ProfilingDaemon:
    """Long-running analysis service for remote event streams.

    Parameters
    ----------
    host, port:
        TCP listen address; ``port=0`` picks a free port (see
        :attr:`address`).  Ignored when ``unix_socket`` is given.
    unix_socket:
        Path for an ``AF_UNIX`` listener instead of TCP.
    heartbeat_timeout:
        Seconds of client silence before its connection is closed.
    session_linger:
        Seconds a detached session waits for a resume before being
        finalized, and a finished one stays queryable before eviction.
    max_pending_events / overflow / spill_dir:
        Per-session ingest bounds, see
        :class:`~repro.service.session.IngestPipeline`.
    report_dir:
        When set, every finalized session writes
        ``<report_dir>/<session>.json``.
    clock:
        Time source for every policy deadline (heartbeat staleness,
        linger windows, reaper cadence, uptime).  Defaults to real
        time; tests pass a :class:`~repro.testing.clock.SimClock` and
        advance it instead of sleeping.  I/O waits (socket reads,
        ingest backpressure, close-time connection drain) stay on real
        time regardless.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_socket: str | Path | None = None,
        *,
        heartbeat_timeout: float = 30.0,
        session_linger: float = 60.0,
        max_pending_events: int = 200_000,
        overflow: str = "block",
        spill_dir: str | None = None,
        report_dir: str | Path | None = None,
        thresholds: Thresholds = PAPER_THRESHOLDS,
        detector_config: DetectorConfig | None = None,
        rules: tuple[Rule, ...] = ALL_RULES,
        clock: Clock = SYSTEM_CLOCK,
    ) -> None:
        self.clock = clock
        self.heartbeat_timeout = heartbeat_timeout
        self.session_linger = session_linger
        self._max_pending_events = max_pending_events
        self._overflow = overflow
        self._spill_dir = spill_dir
        self._report_dir = Path(report_dir) if report_dir is not None else None
        self._thresholds = thresholds
        self._detector_config = detector_config
        self._rules = rules

        self.sessions: dict[str, Session] = {}
        self._sessions_lock = threading.Lock()
        self._conns: dict[int, socket.socket] = {}
        self._conn_sessions: dict[int, str] = {}
        self._conns_lock = threading.Lock()
        self._closed = False
        self._close_lock = threading.Lock()
        self.started_at = clock.wall()
        self._shutdown = threading.Event()

        self.unix_socket_path: Path | None = None
        if unix_socket is not None:
            self.unix_socket_path = Path(unix_socket)
            if self.unix_socket_path.exists():
                self.unix_socket_path.unlink()
            self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._listener.bind(str(self.unix_socket_path))
            self.host, self.port = None, None
        else:
            self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._listener.bind((host, port))
            self.host, self.port = self._listener.getsockname()[:2]
        self._listener.listen(64)

        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dsspy-daemon-accept", daemon=True
        )
        self._accept_thread.start()
        self._reaper_thread = threading.Thread(
            target=self._reap_loop, name="dsspy-daemon-reaper", daemon=True
        )
        self._reaper_thread.start()

    # -- addresses -------------------------------------------------------

    @property
    def address(self) -> str:
        """Dialable address string (``host:port`` or ``unix:<path>``)."""
        if self.unix_socket_path is not None:
            return f"unix:{self.unix_socket_path}"
        return f"{self.host}:{self.port}"

    # -- accept / handle -------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._handle,
                args=(conn,),
                name="dsspy-daemon-conn",
                daemon=True,
            )
            thread.start()

    def _handle(self, conn: socket.socket) -> None:
        key = id(conn)
        with self._conns_lock:
            self._conns[key] = conn
        session: Session | None = None
        try:
            while True:
                frame = recv_frame(conn)
                if frame is None:
                    break  # clean EOF
                mtype, payload = frame
                if mtype == MessageType.HELLO:
                    session = self._hello(conn, payload)
                    with self._conns_lock:
                        self._conn_sessions[key] = session.session_id
                elif mtype == MessageType.STATS:
                    conn.sendall(encode_json(MessageType.ACK, self.stats()))
                elif session is None:
                    raise ProtocolError(
                        f"{MessageType.name(mtype)} before HELLO"
                    )
                elif mtype == MessageType.REGISTER:
                    self._register(session, payload)
                elif mtype == MessageType.EVENTS:
                    # validate=True: a corrupted record (torn frame, bad
                    # proxy, bit rot) is rejected with a ProtocolError —
                    # tearing down the connection so the client
                    # retransmits the window — rather than folded into
                    # the analysis as garbage.
                    start, raws = decode_events(payload, validate=True)
                    session.ingest(start, raws)
                elif mtype == MessageType.HEARTBEAT:
                    session.touch()
                    conn.sendall(
                        encode_json(
                            MessageType.ACK,
                            {"session": session.session_id,
                             "received": session.received},
                        )
                    )
                elif mtype == MessageType.FIN:
                    report = session.finish()
                    self._write_report(session)
                    conn.sendall(
                        encode_json(
                            MessageType.ACK,
                            {
                                "session": session.session_id,
                                "received": session.received,
                                "report": report,
                            },
                        )
                    )
                else:
                    raise ProtocolError(
                        f"unexpected message type {MessageType.name(mtype)}"
                    )
        except ProtocolError as exc:
            try:
                conn.sendall(encode_json(MessageType.ERROR, {"error": str(exc)}))
            except OSError:
                pass
        except OSError:
            pass  # abrupt disconnect: fall through to detach
        finally:
            with self._conns_lock:
                self._conns.pop(key, None)
                self._conn_sessions.pop(key, None)
            try:
                conn.close()
            except OSError:
                pass
            if session is not None:
                session.detach()

    def _hello(self, conn: socket.socket, payload: bytes) -> Session:
        obj = decode_json(payload)
        session_id = obj.get("session") or uuid.uuid4().hex[:12]
        if not isinstance(session_id, str):
            raise ProtocolError("HELLO 'session' must be a string")
        with self._sessions_lock:
            session = self.sessions.get(session_id)
            if session is None:
                session = Session(
                    session_id,
                    StreamingUseCaseEngine(
                        thresholds=self._thresholds,
                        detector_config=self._detector_config,
                        rules=self._rules,
                    ),
                    max_pending_events=self._max_pending_events,
                    overflow=self._overflow,
                    spill_dir=self._spill_dir,
                    clock=self.clock,
                )
                self.sessions[session_id] = session
                resumed = False
            else:
                resumed = session.resume()
        conn.sendall(
            encode_json(
                MessageType.ACK,
                {
                    "session": session_id,
                    "received": session.received,
                    "resumed": resumed,
                },
            )
        )
        return session

    def _register(self, session: Session, payload: bytes) -> None:
        from ..events.profile import AllocationSite
        from ..events.types import StructureKind

        obj = decode_json(payload)
        for inst in obj.get("instances", ()):
            try:
                instance_id = int(inst["id"])
                kind = StructureKind(inst.get("kind", "list"))
            except (KeyError, TypeError, ValueError) as exc:
                raise ProtocolError(f"bad REGISTER entry: {exc}") from exc
            site_obj = inst.get("site")
            site = (
                AllocationSite(
                    filename=site_obj.get("filename", "?"),
                    lineno=int(site_obj.get("lineno", 0)),
                    function=site_obj.get("function", "<module>"),
                    variable=site_obj.get("variable", ""),
                )
                if isinstance(site_obj, dict)
                else None
            )
            session.register(instance_id, kind, site, str(inst.get("label", "")))

    # -- reaper ----------------------------------------------------------

    def _reap_loop(self) -> None:
        interval = min(1.0, self.heartbeat_timeout / 4)
        while not self.clock.wait(self._shutdown, interval):
            self.reap()

    def reap(self) -> None:
        """One maintenance pass (also called directly by tests)."""
        now = self.clock.monotonic()
        with self._sessions_lock:
            sessions = list(self.sessions.values())
        stale_ids = set()
        for session in sessions:
            if (
                session.state == SessionState.ACTIVE
                and now - session.last_seen > self.heartbeat_timeout
            ):
                stale_ids.add(session.session_id)
            elif (
                session.state == SessionState.DETACHED
                and session.detached_at is not None
                and now - session.detached_at > self.session_linger
            ):
                session.finish()
                self._write_report(session)
            elif (
                session.state == SessionState.FINISHED
                and session.finished_at is not None
                and now - session.finished_at > self.session_linger
            ):
                with self._sessions_lock:
                    self.sessions.pop(session.session_id, None)
        if stale_ids:
            with self._conns_lock:
                stale_conns = [
                    conn
                    for key, conn in self._conns.items()
                    if self._conn_sessions.get(key) in stale_ids
                ]
            for conn in stale_conns:
                try:  # handler thread unblocks with an OSError and detaches
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass

    def _write_report(self, session: Session) -> None:
        if self._report_dir is None:
            return
        self._report_dir.mkdir(parents=True, exist_ok=True)
        path = self._report_dir / f"{session.session_id}.json"
        path.write_text(json.dumps(session.finish(), indent=2))

    # -- observability ---------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._sessions_lock:
            sessions = list(self.sessions.values())
        return {
            "address": self.address,
            "uptime_sec": round(self.clock.wall() - self.started_at, 1),
            "sessions": [s.stats() for s in sessions],
        }

    # -- lifecycle -------------------------------------------------------

    def serve_forever(self, install_signals: bool = True) -> None:
        """Block until :meth:`shutdown` or a termination signal."""
        if install_signals:
            try:
                signal.signal(signal.SIGTERM, self.handle_signal)
                signal.signal(signal.SIGINT, self.handle_signal)
            except ValueError:
                pass  # not the main thread; caller drives shutdown
        try:
            self._shutdown.wait()
        finally:
            self.close()

    def handle_signal(self, signum, frame) -> None:  # noqa: ARG002
        self.shutdown()

    def shutdown(self) -> None:
        """Request shutdown (signal-safe: just sets an event)."""
        self._shutdown.set()

    def close(self) -> None:
        """Stop listening, flush and finalize every session, remove the
        Unix socket file.  Idempotent and safe to call from any thread."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._shutdown.set()
        try:
            # close() alone does not wake a thread blocked in accept()
            # (the in-flight syscall pins the open file description);
            # shutdown() forces accept() to return so the thread exits.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=5.0)
        self._reaper_thread.join(timeout=5.0)
        with self._conns_lock:
            conns = list(self._conns.values())
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            with self._conns_lock:
                if not self._conns:
                    break
            time.sleep(0.01)
        with self._sessions_lock:
            sessions = list(self.sessions.values())
        for session in sessions:
            if session.state != SessionState.FINISHED:
                session.finish()
            self._write_report(session)
        if self.unix_socket_path is not None:
            try:
                self.unix_socket_path.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "ProfilingDaemon":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
