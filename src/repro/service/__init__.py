"""Client/server profiling service.

The paper's DSspy streams access events from the instrumented program
to a separate analysis process over an asynchronous channel; this
package is that separation for the reproduction.  A long-running
:class:`ProfilingDaemon` accepts length-prefixed binary event streams
from many concurrent clients, keeps one :class:`Session` per client,
and analyzes incrementally with :class:`StreamingUseCaseEngine` — a
bounded-memory fold that converges to the exact batch
:class:`~repro.usecases.UseCaseEngine` report.

Producer side, :class:`RemoteChannel` drops into the existing
collector/channel seam: same hot path as
:class:`~repro.events.batching.BatchingChannel`, network I/O on the
drainer thread, transparent reconnect-and-retransmit on failure.
"""

from .client import RemoteChannel, ServiceClient, fetch_stats, parse_address
from .daemon import ProfilingDaemon
from .protocol import (
    MAX_EVENTS_PER_FRAME,
    MAX_FRAME_BYTES,
    FrameDecoder,
    MessageType,
    ProtocolError,
    decode_events,
    decode_json,
    encode_events,
    encode_frame,
    encode_json,
    recv_frame,
    send_frame,
)
from .session import IngestPipeline, RateMeter, Session, SessionState
from .streaming import StreamingUseCaseEngine

__all__ = [
    "FrameDecoder",
    "IngestPipeline",
    "MAX_EVENTS_PER_FRAME",
    "MAX_FRAME_BYTES",
    "MessageType",
    "ProfilingDaemon",
    "ProtocolError",
    "RateMeter",
    "RemoteChannel",
    "ServiceClient",
    "Session",
    "SessionState",
    "StreamingUseCaseEngine",
    "decode_events",
    "decode_json",
    "encode_events",
    "encode_frame",
    "encode_json",
    "fetch_stats",
    "parse_address",
    "recv_frame",
    "send_frame",
]
