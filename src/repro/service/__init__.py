"""Client/server profiling service.

The paper's DSspy streams access events from the instrumented program
to a separate analysis process over an asynchronous channel; this
package is that separation for the reproduction.  A long-running
:class:`ProfilingDaemon` accepts length-prefixed binary event streams
from many concurrent clients, keeps one :class:`Session` per client,
and analyzes incrementally with :class:`StreamingUseCaseEngine` — a
bounded-memory fold that converges to the exact batch
:class:`~repro.usecases.UseCaseEngine` report.

Producer side, :class:`RemoteChannel` drops into the existing
collector/channel seam: same hot path as
:class:`~repro.events.batching.BatchingChannel`, network I/O on the
drainer thread, transparent reconnect-and-retransmit on failure.
"""

from .client import (
    BackoffPolicy,
    RemoteChannel,
    ServiceClient,
    fetch_snapshot,
    fetch_stats,
    parse_address,
)
from .daemon import ProfilingDaemon
from .durability import (
    AdmissionController,
    AdmissionStage,
    FutureFormatError,
    RecoveredSession,
    SessionJournal,
    engine_from_dict,
    engine_to_dict,
    merge_engine_dicts,
    merge_engines,
    recover_session_dir,
    scan_state_dir,
    segment_version,
)
from .governor import (
    RESOURCE_ERRNOS,
    RealFS,
    ResourceGovernor,
    ResourcePressure,
    is_resource_error,
)
from .fleet import (
    FleetCoordinator,
    FleetSupervisor,
    ResultCache,
    fleet_run,
    rebalance_state_dir,
    scan_fleet_state_dir,
)
from .migrate import (
    DowngradeError,
    STATE_VERSION,
    migrate_session_dir,
    migrate_state_dir,
    session_versions,
)
from .protocol import (
    MAX_EVENTS_PER_FRAME,
    MAX_FRAME_BYTES,
    PROTOCOL_FEATURES,
    PROTOCOL_MIN_SUPPORTED,
    PROTOCOL_VERSION,
    FrameDecoder,
    MessageType,
    ProtocolError,
    RetryAfterError,
    decode_events,
    decode_json,
    encode_events,
    encode_frame,
    encode_json,
    negotiate_version,
    parse_version_offer,
    recv_frame,
    send_frame,
    version_offer,
)
from .router import SessionRouter, shard_for
from .session import IngestPipeline, RateMeter, Session, SessionState
from .shm import DEFAULT_RING_RECORDS, ShmRing
from .streaming import StreamingUseCaseEngine

__all__ = [
    "AdmissionController",
    "AdmissionStage",
    "BackoffPolicy",
    "DEFAULT_RING_RECORDS",
    "DowngradeError",
    "FleetCoordinator",
    "FleetSupervisor",
    "FrameDecoder",
    "FutureFormatError",
    "IngestPipeline",
    "MAX_EVENTS_PER_FRAME",
    "MAX_FRAME_BYTES",
    "MessageType",
    "PROTOCOL_FEATURES",
    "PROTOCOL_MIN_SUPPORTED",
    "PROTOCOL_VERSION",
    "STATE_VERSION",
    "ProfilingDaemon",
    "ProtocolError",
    "RESOURCE_ERRNOS",
    "RateMeter",
    "RealFS",
    "RecoveredSession",
    "RemoteChannel",
    "ResourceGovernor",
    "ResourcePressure",
    "ResultCache",
    "RetryAfterError",
    "ServiceClient",
    "Session",
    "SessionJournal",
    "SessionRouter",
    "SessionState",
    "ShmRing",
    "StreamingUseCaseEngine",
    "decode_events",
    "decode_json",
    "encode_events",
    "encode_frame",
    "encode_json",
    "engine_from_dict",
    "engine_to_dict",
    "fetch_snapshot",
    "fetch_stats",
    "fleet_run",
    "is_resource_error",
    "migrate_session_dir",
    "migrate_state_dir",
    "negotiate_version",
    "parse_address",
    "parse_version_offer",
    "merge_engine_dicts",
    "merge_engines",
    "rebalance_state_dir",
    "recover_session_dir",
    "recv_frame",
    "scan_fleet_state_dir",
    "scan_state_dir",
    "segment_version",
    "send_frame",
    "session_versions",
    "shard_for",
    "version_offer",
]
