"""Offline deep verification and repair of daemon state directories.

``dsspy recover`` answers "rebuild whatever you can and keep going";
this module answers the operator's *other* question after a bad night
— "is this state directory telling the truth?" — without mutating
anything unless explicitly asked.

:func:`fsck_state_dir` walks a state directory (a single daemon's, a
fleet's ``shard-NN`` layout, or one bare session directory) and checks
every layer the durability design promises:

- **Segment integrity** — every journal segment has the right magic and
  every record passes its CRC.  A torn tail on the *last* segment is
  ordinary crash damage (recovery truncates it); damage anywhere else
  means bytes were altered after they were acked, which is corruption.
- **Checkpoint schema** — ``checkpoint.json`` parses, carries the
  expected fields, names its own session, and its serialized engine
  actually deserializes (:func:`~repro.service.durability.engine_from_dict`).
- **Cursor continuity** — EVENTS windows across the surviving segments
  form a contiguous (overlaps allowed, gaps not) ascending cursor
  range, and the first surviving window connects to the checkpoint's
  ``received`` cursor.  A gap means acked events exist nowhere on
  disk — exactly the silent loss the journal exists to prevent.
- **Shard ownership** — in a fleet layout, a session directory under
  ``shard-NN`` must hash there (:func:`~repro.service.router.shard_for`);
  a misplaced session would be invisible to its resuming client.
- **Format versions** — every artifact's format generation is reported
  (segment magic digits, checkpoint ``version``).  State written by a
  *newer* build is classified ``needs_migration`` (CLI exit 2), never
  "damaged" (exit 1): it is healthy data this build cannot read, and
  repair mode refuses to touch it.

The default run is strictly read-only and reports problems in a
machine-readable dict (the CLI exits non-zero on any).  With
``repair=True`` the scrubber makes the directory *recoverable* again:

- a benign torn tail is truncated back to the last whole record;
- a damaged segment is moved to ``quarantine/`` inside its session
  directory **together with every later segment** — records after the
  damage may be intact but their cursor continuity is broken, and
  replaying them would fabricate a gapless history that never existed;
- the checkpoint is re-derived from the surviving journal tail (or
  quarantined too when it is the damaged artifact), so a subsequent
  daemon start or ``dsspy recover`` sees a self-consistent session.

Quarantined files are moved, never deleted: the operator (or a future
forensic tool) can still inspect what was lost, and the post-repair
report counts every quarantined byte so the loss is accounted, not
silent.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Any

from .durability import (
    _CHECKPOINT_NAME,
    _MAGIC_LEN,
    _SEGMENT_GLOB,
    CHECKPOINT_VERSION,
    JOURNAL_MAGIC,
    REC_EVENTS,
    REC_FIN,
    FutureFormatError,
    _decode_events_payload,
    engine_from_dict,
    engine_to_dict,
    parse_journal_magic,
    recover_session_dir,
    scan_segment,
    scan_state_dir,
)
from .fleet import SHARD_DIR_PREFIX, scan_fleet_state_dir, shard_dir_name
from .router import shard_for

QUARANTINE_DIRNAME = "quarantine"

_SHARD_DIR_RE = re.compile(rf"^{SHARD_DIR_PREFIX}(\d+)$")

#: Checkpoint fields every valid checkpoint must carry.
_CHECKPOINT_FIELDS = ("version", "session", "received", "applied", "engine")


def _quarantine(session_dir: Path, path: Path) -> str:
    """Move ``path`` into the session's quarantine directory; returns
    the quarantined file's name.  Move, not delete — the damage stays
    inspectable and the report stays auditable."""
    qdir = session_dir / QUARANTINE_DIRNAME
    qdir.mkdir(exist_ok=True)
    target = qdir / path.name
    suffix = 0
    while target.exists():
        suffix += 1
        target = qdir / f"{path.name}.{suffix}"
    os.replace(path, target)
    return target.name


def _check_checkpoint(session_dir: Path, session_id: str) -> dict[str, Any]:
    """Validate ``checkpoint.json``; returns a sub-report with
    ``present`` / ``valid`` / ``problems`` / cursor fields."""
    out: dict[str, Any] = {
        "present": False,
        "valid": False,
        "version": None,
        "needs_migration": False,
        "received": None,
        "applied": None,
        "problems": [],
    }
    path = session_dir / _CHECKPOINT_NAME
    if not path.exists():
        return out
    out["present"] = True
    try:
        state = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        out["problems"].append(f"checkpoint unreadable: {exc}")
        return out
    if not isinstance(state, dict):
        out["problems"].append("checkpoint is not a JSON object")
        return out
    missing = [f for f in _CHECKPOINT_FIELDS if f not in state]
    if missing:
        out["problems"].append(f"checkpoint missing fields: {', '.join(missing)}")
        return out
    version = state["version"]
    if not isinstance(version, int) or version < 1:
        out["problems"].append(f"checkpoint version invalid: {version!r}")
        return out
    out["version"] = version
    if version > CHECKPOINT_VERSION:
        # Written by a newer build.  Not damage — do not validate the
        # (possibly changed) schema any further, and never quarantine
        # it; the classification is "needs migration by that build".
        out["needs_migration"] = True
        return out
    if state["session"] != session_id:
        out["problems"].append(
            f"checkpoint names session {state['session']!r}, directory is "
            f"{session_id!r}"
        )
    try:
        received = int(state["received"])
        applied = int(state["applied"])
        if applied < 0 or received < applied:
            raise ValueError(f"applied={applied} received={received}")
        out["received"], out["applied"] = received, applied
    except (TypeError, ValueError) as exc:
        out["problems"].append(f"checkpoint cursors invalid: {exc}")
        return out
    try:
        engine_from_dict(state["engine"])
    except Exception as exc:  # schema damage surfaces as many exc types
        out["problems"].append(f"checkpoint engine does not deserialize: {exc}")
        return out
    out["valid"] = not out["problems"]
    return out


def fsck_session_dir(directory: str | Path, *, repair: bool = False) -> dict[str, Any]:
    """Deep-verify (and optionally repair) one session directory.

    Returns a machine-readable report; ``report["ok"]`` is True when
    the directory is self-consistent *as it now stands* — after a
    repair run that quarantined damage and rebuilt the checkpoint, a
    directory is ok again even though ``problems`` records what was
    found.
    """
    directory = Path(directory)
    session_id = directory.name
    problems: list[str] = []
    quarantined: list[str] = []
    repaired: list[str] = []
    needs_migration: list[str] = []
    segment_versions: dict[str, int | None] = {}

    ckpt = _check_checkpoint(directory, session_id)
    problems.extend(ckpt["problems"])
    if ckpt["needs_migration"]:
        needs_migration.append(
            f"checkpoint is format v{ckpt['version']}, newer than this "
            f"build reads (v{CHECKPOINT_VERSION})"
        )

    segments = sorted(directory.glob(_SEGMENT_GLOB))
    # First pass: find the first damaged segment (bad magic, or a torn
    # record anywhere but the final segment's tail).
    damaged_from: int | None = None
    torn_tail: tuple[Path, int] | None = None
    scanned: list[tuple[Path, list[tuple[int, bytes]]]] = []
    for i, segment in enumerate(segments):
        try:
            segment_versions[segment.name] = parse_journal_magic(
                segment.read_bytes()[:_MAGIC_LEN]
            )
        except FutureFormatError:
            # A newer build's segment: not damage, not scannable here.
            # Continuity past it cannot be checked, so stop the scan —
            # the classification is "needs migration", never a repair.
            segment_versions[segment.name] = None
            needs_migration.append(
                f"{segment.name}: segment format newer than this build reads"
            )
            break
        except (ValueError, OSError):
            segment_versions[segment.name] = None  # scan below reports it
        try:
            records, torn_offset = scan_segment(segment)
        except (ValueError, OSError) as exc:
            problems.append(f"{segment.name}: unreadable ({exc})")
            damaged_from = i
            break
        if torn_offset is not None:
            if i == len(segments) - 1:
                # Crash damage on the live segment: benign, truncatable.
                size = segment.stat().st_size
                problems.append(
                    f"{segment.name}: torn tail ({size - torn_offset} bytes "
                    "past the last whole record)"
                )
                torn_tail = (segment, torn_offset)
                scanned.append((segment, records))
            else:
                problems.append(
                    f"{segment.name}: damaged record mid-journal at byte "
                    f"{torn_offset} (not a crash tail: "
                    f"{len(segments) - 1 - i} newer segment(s) exist)"
                )
                damaged_from = i
                break
        else:
            scanned.append((segment, records))

    # Cursor continuity over the surviving prefix.  Overlap is fine
    # (replay dedups); a gap means acked events are on no disk.
    cursor: int | None = ckpt["received"] if ckpt["valid"] else None
    received = cursor or 0
    finished = False
    for segment, records in scanned:
        for rtype, payload in records:
            if rtype == REC_FIN:
                finished = True
            if rtype != REC_EVENTS:
                continue
            start, raws = _decode_events_payload(payload)
            if cursor is None:
                if start > 0 and not ckpt["present"]:
                    problems.append(
                        f"{segment.name}: journal starts at cursor {start} "
                        "with no checkpoint to cover events before it"
                    )
                cursor = start
            elif start > cursor:
                problems.append(
                    f"{segment.name}: cursor gap — window starts at {start}, "
                    f"journal only covers through {cursor}"
                )
            cursor = max(cursor, start + len(raws))
            received = max(received, start + len(raws))

    if repair and needs_migration:
        # Never "repair" state a newer build wrote: quarantining or
        # rebuilding it would destroy data this build cannot read.
        # Migrate first (with the newer build), then fsck again.
        repair = False
    if repair:
        if damaged_from is not None:
            # Quarantine the damaged segment AND everything after it:
            # later records may be byte-perfect, but their cursor
            # continuity died with the damaged one.
            for segment in segments[damaged_from:]:
                quarantined.append(_quarantine(directory, segment))
        if torn_tail is not None and damaged_from is None:
            segment, torn_offset = torn_tail
            with segment.open("r+b") as fh:
                fh.truncate(torn_offset)
            repaired.append(f"{segment.name}: truncated torn tail")
        if ckpt["present"] and not ckpt["valid"]:
            quarantined.append(_quarantine(directory, directory / _CHECKPOINT_NAME))
        needs_checkpoint = (
            damaged_from is not None
            or (ckpt["present"] and not ckpt["valid"])
            or any("cursor gap" in p for p in problems)
        )
        if needs_checkpoint:
            # Re-derive state from whatever journal survived.  With the
            # checkpoint quarantined this replays from zero — slower,
            # but provably consistent with the surviving records.
            recovered = recover_session_dir(directory, truncate=True)
            state = {
                "version": CHECKPOINT_VERSION,
                "session": session_id,
                "received": recovered.received,
                "applied": recovered.applied,
                "duplicates": recovered.duplicates,
                "engine": engine_to_dict(recovered.engine),
            }
            tmp = directory / (_CHECKPOINT_NAME + ".tmp")
            tmp.write_text(json.dumps(state, separators=(",", ":")))
            os.replace(tmp, directory / _CHECKPOINT_NAME)
            repaired.append(
                f"checkpoint rebuilt from journal replay "
                f"(received={recovered.received}, applied={recovered.applied})"
            )
        if quarantined and not any(directory.glob(_SEGMENT_GLOB)):
            # Recovery scans only list directories that still hold a
            # segment; reseed an empty one so the session stays visible.
            last = max(int(seg.stem.split("-")[1]) for seg in segments)
            reseed = directory / f"journal-{last + 1:06d}.wal"
            reseed.write_bytes(JOURNAL_MAGIC)
            repaired.append(f"{reseed.name}: reseeded empty segment")
        ok = True  # whatever remains is self-consistent by construction
    else:
        ok = not problems

    return {
        "session": session_id,
        "path": str(directory),
        "ok": ok,
        "finished": finished,
        "segments": len(segments),
        "received": received,
        "checkpoint": {
            k: ckpt[k]
            for k in ("present", "valid", "version", "received", "applied")
        },
        "versions": {
            "segments": segment_versions,
            "checkpoint": ckpt["version"],
        },
        "needs_migration": needs_migration,
        "problems": problems,
        "quarantined": quarantined,
        "repaired": repaired,
    }


def fsck_state_dir(
    root: str | Path, *, repair: bool = False, shards: int | None = None
) -> dict[str, Any]:
    """Verify a whole state directory; see module docstring.

    ``root`` may be a daemon state dir, a fleet state dir with
    ``shard-NN`` subdirectories, or one bare session directory.
    ``shards`` overrides the fleet width used for ownership checks
    (default: the number of ``shard-NN`` directories present).
    """
    root = Path(root)
    report: dict[str, Any] = {
        "root": str(root),
        "repair": repair,
        "sessions": [],
        "problems": [],
        "ok": True,
    }
    if not root.is_dir():
        report["problems"].append(f"{root}: not a directory")
        report["ok"] = False
        return report

    if any(root.glob(_SEGMENT_GLOB)):
        session_dirs = [root]  # bare session directory
    else:
        session_dirs = scan_fleet_state_dir(root)

    shard_dirs = sorted(
        d for d in root.glob(SHARD_DIR_PREFIX + "*")
        if d.is_dir() and _SHARD_DIR_RE.match(d.name)
    )
    n_shards = shards if shards is not None else len(shard_dirs)

    for session_dir in session_dirs:
        entry = fsck_session_dir(session_dir, repair=repair)
        match = _SHARD_DIR_RE.match(session_dir.parent.name)
        if match and n_shards:
            actual = int(match.group(1))
            expected = shard_for(session_dir.name, n_shards)
            entry["shard"] = {"dir": actual, "expected": expected}
            if actual != expected:
                entry["problems"].append(
                    f"session {session_dir.name} lives in "
                    f"{session_dir.parent.name} but hashes to "
                    f"{shard_dir_name(expected)} of {n_shards}; a resuming "
                    "client cannot find it (fix: rerun the supervisor, "
                    "which rebalances on startup)"
                )
                entry["ok"] = False  # not repairable in place: a *move*
        report["sessions"].append(entry)
        report["ok"] = report["ok"] and entry["ok"]

    report["checked"] = len(report["sessions"])
    report["with_problems"] = sum(
        1 for s in report["sessions"] if s["problems"]
    )
    report["quarantined"] = sum(len(s["quarantined"]) for s in report["sessions"])
    report["needs_migration"] = sum(
        1 for s in report["sessions"] if s["needs_migration"]
    )
    return report


__all__ = [
    "QUARANTINE_DIRNAME",
    "fsck_session_dir",
    "fsck_state_dir",
]
