"""Resource-exhaustion governance for the profiling service.

Durability (PR 4) made the daemon honest about *crashes*; this module
makes it honest about the slower disasters a production host actually
delivers: a filesystem that fills up mid-journal-append, a process
that runs out of file descriptors, a disk that starts returning EIO.
Two pieces cooperate:

**The filesystem seam.**  Every on-disk write the durability layer
performs — journal appends, checkpoint renames, result-cache entries —
goes through an injectable :class:`RealFS` object instead of calling
:mod:`os` directly.  Production uses the passthrough default; tests
substitute :class:`~repro.testing.faults.FaultFS`, which duck-types the
same surface with a seeded fault schedule (ENOSPC after N bytes, EIO
on read, slow fsync), so every failure branch below is deterministically
reachable.

**The governor.**  :class:`ResourceGovernor` classifies caught
``OSError``\\ s (:data:`RESOURCE_ERRNOS`), counts them per operation
site, and converts sustained pressure into an admission-ladder stage:

- first failures put the governor at ``journal-compact`` — the session
  layer reacts by force-checkpointing, which prunes journal segments
  and is the one disk operation that *frees* space;
- pressure that survives compaction escalates to ``journal-only``
  (analysis deferred, RAM released, durable appends still attempted);
- persistent failure escalates to ``shed`` — windows are refused with
  RETRY-AFTER *before* any disk write, so nothing is half-journaled.

Failures decay: after :attr:`ResourceGovernor.cooldown` seconds
(governor clock) without a new failure the ladder steps back down, so
an operator who frees disk space gets a recovering daemon without a
restart.  The governor also owns the ``--state-budget`` accounting: a
byte cap over the whole state directory that the daemon enforces with
per-session retention (compact the biggest journals first, then evict
finished sessions, then apply ladder pressure).

Every count the governor keeps is surfaced through ``stats()`` into
the daemon's STATS reply — silent degradation is the one failure mode
this module exists to kill.
"""

from __future__ import annotations

import errno
import os
import threading
from pathlib import Path
from typing import IO, Any

from ..testing.clock import SYSTEM_CLOCK, Clock

#: errnos treated as *resource exhaustion* (recoverable by shedding or
#: compaction) rather than bugs: disk full, quota, fd limits, I/O error.
RESOURCE_ERRNOS = frozenset(
    {
        errno.ENOSPC,
        errno.EDQUOT,
        errno.EMFILE,
        errno.ENFILE,
        errno.EIO,
    }
)


def is_resource_error(exc: BaseException) -> bool:
    """Whether ``exc`` is an OSError the governor should absorb."""
    return isinstance(exc, OSError) and exc.errno in RESOURCE_ERRNOS


class RealFS:
    """Passthrough filesystem operations (the production default).

    The durability layer calls these instead of :mod:`os`/:mod:`pathlib`
    directly so a :class:`~repro.testing.faults.FaultFS` can be swapped
    in; the methods are deliberately thin and raise exactly what the
    underlying call raises.
    """

    def open(self, path: str | Path, mode: str = "wb") -> IO[bytes]:
        return Path(path).open(mode)

    def write(self, fh: IO[bytes], data: bytes) -> None:
        """Write + flush: after this returns, the bytes are in the OS
        (a SIGKILL loses nothing; power loss needs :meth:`fsync`)."""
        fh.write(data)
        fh.flush()

    def fsync(self, fh: IO[bytes]) -> None:
        os.fsync(fh.fileno())

    def read_bytes(self, path: str | Path) -> bytes:
        return Path(path).read_bytes()

    def read_text(self, path: str | Path) -> str:
        return Path(path).read_text()

    def write_text(self, path: str | Path, text: str) -> None:
        Path(path).write_text(text)

    def replace(self, src: str | Path, dst: str | Path) -> None:
        os.replace(src, dst)

    def unlink(self, path: str | Path) -> None:
        Path(path).unlink(missing_ok=True)

    def size(self, path: str | Path) -> int:
        try:
            return Path(path).stat().st_size
        except OSError:
            return 0

    def tree_bytes(self, root: str | Path) -> int:
        """Total bytes of regular files under ``root`` (state-budget
        accounting; a vanished file mid-walk counts as zero)."""
        total = 0
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in filenames:
                total += self.size(Path(dirpath) / name)
        return total


#: Shared default instance (stateless, so sharing is safe).
REAL_FS = RealFS()


class ResourcePressure(Exception):
    """Raised to refuse a window because a resource failure would make
    accepting it dishonest (the durability barrier could not be kept).
    Carries the cursor the daemon replies with, so the client's
    RETRY-AFTER backoff retransmits from the right place."""

    def __init__(self, message: str, *, retry_after: float = 2.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ResourceGovernor:
    """Classify resource failures and drive the admission ladder.

    Thread-safe; one instance per daemon (shared by every session's
    journal).  ``escalate_after`` failures at one rung step to the
    next; ``cooldown`` clean seconds step back down one rung at a time.
    """

    def __init__(
        self,
        *,
        fs: RealFS | None = None,
        state_budget_bytes: int | None = None,
        escalate_after: int = 3,
        cooldown: float = 5.0,
        retry_after: float = 2.0,
        clock: Clock = SYSTEM_CLOCK,
    ) -> None:
        if state_budget_bytes is not None and state_budget_bytes <= 0:
            raise ValueError(
                f"state_budget_bytes must be positive, got {state_budget_bytes}"
            )
        self.fs = fs if fs is not None else REAL_FS
        self.state_budget_bytes = state_budget_bytes
        self.escalate_after = escalate_after
        self.cooldown = cooldown
        self.retry_after = retry_after
        self._clock = clock
        self._lock = threading.Lock()
        self._level = 0  # 0 normal, 1 compact, 2 journal-only, 3 shed
        self._failures_at_level = 0
        self._last_failure: float | None = None
        self.failures_by_errno: dict[str, int] = {}
        self.failures_by_op: dict[str, int] = {}
        self.compactions = 0
        self.budget_overruns = 0
        self.budget_evictions = 0
        self.refused_windows = 0
        self.state_bytes = 0  # last measured state-dir usage

    # -- failure intake ---------------------------------------------------

    def record_failure(self, op: str, exc: OSError) -> None:
        """Account one resource failure at operation site ``op`` and
        step the pressure ladder if it keeps happening."""
        name = errno.errorcode.get(exc.errno or 0, str(exc.errno))
        with self._lock:
            self.failures_by_errno[name] = self.failures_by_errno.get(name, 0) + 1
            self.failures_by_op[op] = self.failures_by_op.get(op, 0) + 1
            self._last_failure = self._clock.monotonic()
            if self._level == 0:
                self._level = 1
                self._failures_at_level = 0
            else:
                self._failures_at_level += 1
                if self._failures_at_level >= self.escalate_after and self._level < 3:
                    self._level += 1
                    self._failures_at_level = 0

    def note_compaction(self) -> None:
        with self._lock:
            self.compactions += 1

    def note_refused(self) -> None:
        with self._lock:
            self.refused_windows += 1

    def force_pressure(self, level: int) -> None:
        """Pin the ladder at ``level`` (state-budget enforcement uses
        this when usage stays over cap after compaction/eviction)."""
        with self._lock:
            self._level = max(self._level, level)
            self._last_failure = self._clock.monotonic()

    def _decayed_level(self) -> int:
        """Current level after cooldown decay (caller holds the lock)."""
        if self._level and self._last_failure is not None:
            quiet = self._clock.monotonic() - self._last_failure
            steps = int(quiet // self.cooldown)
            if steps:
                self._level = max(0, self._level - steps)
                self._failures_at_level = 0
                if self._level:
                    self._last_failure += steps * self.cooldown
                else:
                    self._last_failure = None
        return self._level

    def pressure_stage(self) -> int:
        """The admission stage this governor currently demands
        (:class:`~repro.service.durability.AdmissionStage` value)."""
        from .durability import AdmissionStage

        with self._lock:
            level = self._decayed_level()
        return {
            0: AdmissionStage.NORMAL,
            1: AdmissionStage.JOURNAL_COMPACT,
            2: AdmissionStage.JOURNAL,
            3: AdmissionStage.SHED,
        }[level]

    # -- state-budget accounting ------------------------------------------

    def measure_state(self, state_dir: str | Path) -> int:
        """Re-measure state-dir usage; returns bytes used."""
        used = self.fs.tree_bytes(state_dir)
        with self._lock:
            self.state_bytes = used
        return used

    def over_budget(self) -> bool:
        return (
            self.state_budget_bytes is not None
            and self.state_bytes > self.state_budget_bytes
        )

    def note_budget_overrun(self) -> None:
        with self._lock:
            self.budget_overruns += 1

    def note_budget_eviction(self, n: int = 1) -> None:
        with self._lock:
            self.budget_evictions += n

    # -- observability ----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        from .durability import AdmissionStage

        stage = self.pressure_stage()
        with self._lock:
            return {
                "pressure_stage": AdmissionStage.name(stage),
                "failures_by_errno": dict(self.failures_by_errno),
                "failures_by_op": dict(self.failures_by_op),
                "compactions": self.compactions,
                "refused_windows": self.refused_windows,
                "state_bytes": self.state_bytes,
                "state_budget_bytes": self.state_budget_bytes,
                "budget_overruns": self.budget_overruns,
                "budget_evictions": self.budget_evictions,
            }


__all__ = [
    "REAL_FS",
    "RESOURCE_ERRNOS",
    "RealFS",
    "ResourceGovernor",
    "ResourcePressure",
    "is_resource_error",
]
