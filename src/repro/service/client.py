"""Client side of the profiling service.

:class:`ServiceClient` is the thin protocol speaker: connect, HELLO,
ship frames, strict request/response for the control messages.
:class:`RemoteChannel` is what instrumented programs actually use — a
:class:`~repro.events.batching.BatchingChannel` whose drainer-thread
sink forwards each harvested batch to the daemon, so the hot recording
path stays the same bare ``list.append`` as the in-process pipeline
and all network cost is paid off-thread.

Fault tolerance lives here, not in user code: the channel keeps every
event in its master buffer until drained, tracks how much of it the
server acknowledged receiving, and on a broken connection silently
reconnects with the same session id and retransmits from the server's
``received`` cursor.  The daemon's overlap-skip
(:meth:`~repro.service.session.Session.ingest`) makes the retransmit
idempotent, so an abrupt mid-stream disconnect costs nothing but
latency.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from pathlib import Path
from typing import Any

from ..events.batching import BatchingChannel
from ..events.event import RawEvent
from ..events.profile import AllocationSite
from ..events.spill import RECORD_SIZE, SpillWriter, pack_record
from ..events.types import StructureKind
from ..testing.clock import SYSTEM_CLOCK, Clock
from .protocol import (
    MAX_EVENTS_PER_FRAME,
    SHM_CAPABILITY,
    MessageType,
    ProtocolError,
    RetryAfterError,
    decode_json,
    encode_events,
    encode_json,
    parse_version_offer,
    recv_frame,
    shm_offer,
    version_offer,
)
from .shm import DEFAULT_RING_RECORDS, ShmRing


def parse_address(text: str) -> tuple[int, Any]:
    """Parse ``host:port``, ``unix:<path>``, or a filesystem path into
    ``(address_family, connect_arg)``."""
    text = text.strip()
    if text.startswith("unix:"):
        return socket.AF_UNIX, text[5:]
    if "/" in text:
        return socket.AF_UNIX, text
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"bad service address {text!r}; expected HOST:PORT or unix:PATH"
        )
    return socket.AF_INET, (host or "127.0.0.1", int(port))


class ServiceClient:
    """One connection-with-session to a profiling daemon.

    All I/O is serialized under one lock; the server only ever speaks
    when spoken to (strict request/response), so a reply always belongs
    to the request just sent.
    """

    def __init__(
        self,
        address: str,
        session_id: str | None = None,
        timeout: float = 10.0,
        shm: dict[str, Any] | None = None,
    ) -> None:
        self.address = address
        family, connect_arg = parse_address(address)
        self._io_lock = threading.RLock()
        self._sock = socket.socket(family, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(connect_arg)
        if family == socket.AF_INET:
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        #: Unknown frame types skipped whole instead of erroring — a
        #: newer daemon talking past this build (version skew).
        self.frames_skipped = 0
        hello: dict[str, Any] = version_offer()
        if session_id:
            hello["session"] = session_id
        if shm is not None:
            hello[SHM_CAPABILITY] = shm
        ack = self._request(MessageType.HELLO, hello)
        self.session_id: str = ack["session"]
        self.server_received: int = int(ack.get("received", 0))
        self.resumed: bool = bool(ack.get("resumed", False))
        #: Whether the daemon attached the offered shared-memory ring.
        self.shm_accepted: bool = bool(ack.get(SHM_CAPABILITY, False))
        # A version-1 daemon sends no version keys; parse_version_offer
        # folds that case into (1, 1, inferred features).  The ACK's
        # "proto" is already the daemon's negotiated pick, so the max
        # of its range *is* the session version.
        _, self.proto_version, self.server_features = parse_version_offer(ack)

    # -- plumbing --------------------------------------------------------

    def _request(self, mtype: int, obj: dict[str, Any]) -> dict[str, Any]:
        with self._io_lock:
            self._sock.sendall(encode_json(mtype, obj))
            return self._read_ack()

    def _read_ack(self) -> dict[str, Any]:
        while True:
            frame = recv_frame(self._sock)
            if frame is None:
                raise ProtocolError("server closed the connection")
            rtype, payload = frame
            if rtype in MessageType._NAMES:
                break
            # Version skew: a newer daemon sent a frame type this
            # build does not know.  Skip it (framing is
            # self-delimiting) and keep waiting for the reply.
            self.frames_skipped += 1
        obj = decode_json(payload)
        if rtype == MessageType.ERROR:
            raise ProtocolError(f"server error: {obj.get('error', '?')}")
        if rtype == MessageType.RETRY_AFTER:
            raise RetryAfterError(float(obj.get("retry_after", 1.0)))
        # JOURNALED is a positive ack: the events are durable, their
        # analysis is merely deferred behind the journal backlog.
        if rtype not in (MessageType.ACK, MessageType.JOURNALED):
            raise ProtocolError(f"expected ACK, got {MessageType.name(rtype)}")
        return obj

    # -- protocol verbs --------------------------------------------------

    def register_instances(self, instances: list[dict[str, Any]]) -> None:
        """Fire-and-forget instance declarations (no reply)."""
        with self._io_lock:
            self._sock.sendall(
                encode_json(MessageType.REGISTER, {"instances": instances})
            )

    def send_events(self, start: int, raws: list[RawEvent]) -> None:
        """Ship a window of raw events (no reply); chunks as needed."""
        with self._io_lock:
            for offset in range(0, len(raws), MAX_EVENTS_PER_FRAME):
                chunk = raws[offset : offset + MAX_EVENTS_PER_FRAME]
                self._sock.sendall(encode_events(start + offset, chunk))

    def heartbeat(self) -> dict[str, Any]:
        return self._request(MessageType.HEARTBEAT, {})

    def fin(self) -> dict[str, Any]:
        """End the session; the ACK carries the final report dict."""
        return self._request(MessageType.FIN, {})

    def stats(self) -> dict[str, Any]:
        return self._request(MessageType.STATS, {})

    def close(self) -> None:
        with self._io_lock:
            try:
                self._sock.close()
            except OSError:
                pass


def fetch_stats(address: str, timeout: float = 10.0) -> dict[str, Any]:
    """One-shot STATS query (used by ``dsspy sessions``).

    Speaks STATS before HELLO — the daemon answers observability
    queries without creating a session.
    """
    family, connect_arg = parse_address(address)
    sock = socket.socket(family, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(connect_arg)
        sock.sendall(encode_json(MessageType.STATS, {}))
        frame = recv_frame(sock)
        if frame is None:
            raise ProtocolError("server closed the connection")
        rtype, payload = frame
        obj = decode_json(payload)
        if rtype != MessageType.ACK:
            raise ProtocolError(f"expected ACK, got {MessageType.name(rtype)}")
        return obj
    finally:
        sock.close()


def fetch_snapshot(
    address: str, session: str | None = None, timeout: float = 10.0
) -> dict[str, Any]:
    """One-shot SNAPSHOT query: serialized engine state for merging.

    Like STATS, spoken before HELLO — the fleet coordinator observes a
    worker without creating a session on it.  ``session`` narrows the
    reply to one session (the coordinator fetches per-session to stay
    far below the frame ceiling); ``None`` asks for all of them.
    """
    family, connect_arg = parse_address(address)
    sock = socket.socket(family, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(connect_arg)
        req: dict[str, Any] = {} if session is None else {"session": session}
        sock.sendall(encode_json(MessageType.SNAPSHOT, req))
        frame = recv_frame(sock)
        if frame is None:
            raise ProtocolError("server closed the connection")
        rtype, payload = frame
        obj = decode_json(payload)
        if rtype != MessageType.ACK:
            raise ProtocolError(
                f"expected ACK, got {MessageType.name(rtype)}: "
                f"{obj.get('error', '')}"
            )
        return obj
    finally:
        sock.close()


def _site_to_dict(site: AllocationSite | None) -> dict[str, Any] | None:
    if site is None:
        return None
    return {
        "filename": site.filename,
        "lineno": site.lineno,
        "function": site.function,
        "variable": site.variable,
    }


class BackoffPolicy:
    """Capped exponential backoff with jitter for reconnect attempts.

    Delay after the *n*-th consecutive failure is
    ``min(cap, base * multiplier**(n-1))`` stretched by up to
    ``jitter`` of itself (seedable ``random.Random`` — tests pin the
    schedule), and never shorter than a server-mandated minimum (the
    RETRY-AFTER delay).  A success resets the ladder.

    Timing goes through a :class:`~repro.testing.clock.Clock`, so a
    SimClock test can walk the schedule without sleeping.
    """

    def __init__(
        self,
        base: float = 0.05,
        cap: float = 5.0,
        multiplier: float = 2.0,
        jitter: float = 0.5,
        rng: random.Random | None = None,
        clock: Clock = SYSTEM_CLOCK,
    ) -> None:
        if base <= 0 or cap < base or multiplier < 1.0 or not 0 <= jitter <= 1:
            raise ValueError(
                f"bad backoff parameters base={base} cap={cap} "
                f"multiplier={multiplier} jitter={jitter}"
            )
        self.base = base
        self.cap = cap
        self.multiplier = multiplier
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock
        self.failures = 0
        self._until = 0.0

    def note_failure(self, min_delay: float = 0.0) -> float:
        """Record a failed attempt; returns the chosen delay."""
        self.failures += 1
        delay = min(self.cap, self.base * self.multiplier ** (self.failures - 1))
        delay *= 1.0 + self.jitter * self._rng.random()
        delay = max(delay, min_delay)
        self._until = self._clock.monotonic() + delay
        return delay

    def note_success(self) -> None:
        self.failures = 0
        self._until = 0.0

    def ready(self) -> bool:
        """Is the current delay over (always true when never failed)?"""
        return self._clock.monotonic() >= self._until

    def down_for(self) -> float:
        """Seconds until the next attempt is allowed (0 when ready)."""
        return max(0.0, self._until - self._clock.monotonic())


class RemoteChannel(BatchingChannel):
    """Batching channel that streams its harvests to a daemon.

    Producer side is untouched :class:`BatchingChannel` (same ~25 ns
    append); the drainer's ``sink`` hook ships each batch.  The master
    buffer retains everything (``block`` policy, no spill), serving as
    the retransmission source: on any socket error the channel marks
    itself disconnected and the next harvest reconnects with the same
    session id, rewinds its cursor to the server's ``received`` count,
    and resends the tail.

    ``drain()`` performs the handshake ending the session: final ship,
    FIN, and stores the server's report in :attr:`final_ack`.
    """

    def __init__(
        self,
        address: str,
        session_id: str | None = None,
        heartbeat_interval: float = 2.0,
        clock: Clock = SYSTEM_CLOCK,
        backoff: BackoffPolicy | None = None,
        give_up_after: float | None = None,
        fallback_spill: str | Path | None = None,
        transport: str = "socket",
        ring_records: int = DEFAULT_RING_RECORDS,
        **batching_kwargs: Any,
    ) -> None:
        if batching_kwargs.pop("spill", None) is not None:
            raise ValueError(
                "RemoteChannel keeps its retransmission source in RAM; "
                "spill is not supported (use the daemon-side spill instead)"
            )
        if transport not in ("socket", "shm"):
            raise ValueError(
                f"transport must be 'socket' or 'shm', got {transport!r}"
            )
        batching_kwargs.setdefault("policy", "block")
        self.address = address
        self._transport = transport
        self._ring_records = ring_records
        self._ring: ShmRing | None = None
        #: Harvests that stalled because the ring had no room (the
        #: consumer was behind); the tail is retried next harvest.
        self.ring_full = 0
        self._clock = clock
        self.final_ack: dict[str, Any] | None = None
        self._client: ServiceClient | None = None
        self._session_id = session_id
        self._shipped = 0
        self._ship_lock = threading.Lock()
        self._registered: list[dict[str, Any]] = []
        self._registered_sent = 0
        self._reconnects = 0
        self._backoff = backoff if backoff is not None else BackoffPolicy(clock=clock)
        self._give_up_after = give_up_after
        self._fallback_spill = (
            Path(fallback_spill) if fallback_spill is not None else None
        )
        self._down_since: float | None = None
        self._gave_up = False
        self.spill_path: Path | None = None
        self._heartbeat_interval = heartbeat_interval
        self._connect()  # fail fast: a bad address raises here, not mid-run
        super().__init__(sink=self._ship, **batching_kwargs)
        self._hb_stop = threading.Event()
        self._hb_thread = threading.Thread(
            target=self._heartbeat_loop,
            args=(heartbeat_interval,),
            name="dsspy-remote-heartbeat",
            daemon=True,
        )
        self._hb_thread.start()

    # -- collector hook --------------------------------------------------

    def on_register(
        self,
        instance_id: int,
        kind: StructureKind,
        site: AllocationSite | None,
        label: str,
    ) -> None:
        """Called by the collector for each new instance; forwards the
        declaration so the daemon knows the instance's identity."""
        entry = {
            "id": instance_id,
            "kind": kind.value,
            "site": _site_to_dict(site),
            "label": label,
        }
        with self._ship_lock:
            self._registered.append(entry)
            self._flush_registrations()

    def _flush_registrations(self) -> None:
        """Send not-yet-delivered registrations (caller holds the lock)."""
        client = self._client
        if client is None:
            return
        pending = self._registered[self._registered_sent :]
        if not pending:
            return
        try:
            client.register_instances(pending)
            self._registered_sent = len(self._registered)
        except (OSError, ProtocolError):
            self._disconnect()

    # -- shipping (drainer thread) ---------------------------------------

    def _connect(self) -> None:
        offer = None
        if self._transport == "shm":
            # Fresh ring per connection generation: the daemon's old
            # consumer (if any) drains before the new one attaches, so
            # reused counters could never line up with the resumed
            # cursor.  The old segment dies with its last detach.
            if self._ring is not None:
                self._ring.unlink()
                self._ring = None
            self._ring = ShmRing.create(self._ring_records)
            offer = shm_offer(self._ring.name, self._ring.capacity_bytes)
        try:
            client = ServiceClient(
                self.address, session_id=self._session_id, shm=offer
            )
        except Exception:
            if self._ring is not None:
                self._ring.unlink()
                self._ring = None
            raise
        if offer is not None and not client.shm_accepted:
            # Daemon declined (stale segment, remote host, old daemon):
            # fall back to EVENTS frames on the socket for this
            # connection; the next reconnect offers a fresh ring again.
            self._ring.unlink()
            self._ring = None
        self._client = client
        self._session_id = client.session_id
        if client.resumed:
            # The server's cursor is authoritative: anything past it
            # was lost in flight and must be resent from the master.
            self._shipped = min(self._shipped, client.server_received)
            self._reconnects += 1
        # A fresh session (e.g. the old one was reaped) starts at zero.
        elif self._shipped:
            self._shipped = 0
        self._registered_sent = 0
        self._backoff.note_success()
        self._down_since = None
        self._flush_registrations()

    def _disconnect(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            client.close()

    def _note_failure(self, exc: Exception | None = None) -> None:
        """Failure bookkeeping: back off (honoring a server-mandated
        RETRY-AFTER delay) and track how long the link has been down
        for the give-up deadline."""
        min_delay = exc.retry_after if isinstance(exc, RetryAfterError) else 0.0
        self._backoff.note_failure(min_delay)
        now = self._clock.monotonic()
        if self._down_since is None:
            self._down_since = now
        if (
            self._give_up_after is not None
            and now - self._down_since >= self._give_up_after
        ):
            self._gave_up = True

    def _ship(self, batch: list[RawEvent]) -> None:  # noqa: ARG002
        """Sink hook: forward everything harvested but not yet shipped.

        Works from the master buffer rather than the batch argument so
        a failed send is automatically retried by the next harvest."""
        with self._ship_lock:
            self._ship_pending()

    def _ship_pending(self, force: bool = False) -> None:
        if self._gave_up:
            return
        if self._client is None:
            if not force and not self._backoff.ready():
                return  # inside the backoff delay; skip this harvest
            try:
                self._connect()
            except (OSError, ProtocolError) as exc:
                self._note_failure(exc)
                return  # still down; retry after the backoff delay
        pending = self._master[self._shipped :]
        if not pending:
            return
        ring = self._ring
        if ring is not None:
            # Zero-syscall path: pack straight into the shared ring.
            # Partial fit is backpressure, not failure — the daemon's
            # consumer frees space and the next harvest ships the rest.
            room = ring.free // RECORD_SIZE
            if room <= 0:
                self.ring_full += 1
                return
            chunk = pending[:room]
            written = ring.write(b"".join(map(pack_record, chunk)))
            self._shipped += written // RECORD_SIZE
            if written // RECORD_SIZE < len(pending):
                self.ring_full += 1
            return
        try:
            self._client.send_events(self._shipped, pending)
            self._shipped += len(pending)
        except (OSError, ProtocolError) as exc:
            self._disconnect()
            self._note_failure(exc)

    def _heartbeat_loop(self, interval: float) -> None:
        # Cadence goes through the clock so tests can trigger (or
        # suppress) heartbeats deterministically with a SimClock.
        while not self._clock.wait(self._hb_stop, interval):
            with self._ship_lock:
                client = self._client
                if client is None:
                    continue
                try:
                    client.heartbeat()
                except (OSError, ProtocolError) as exc:
                    self._disconnect()
                    self._note_failure(exc)

    # -- lifecycle -------------------------------------------------------

    def _after_fork_child(self, policy: str) -> None:
        """Reinitialize in a fork child.

        The child inherits a *copy* of the parent's socket file
        descriptor: writing even one byte would interleave with the
        parent's length-prefixed frames and corrupt the stream for
        both.  The fd copy is closed without any protocol traffic
        (closing a duplicate sends no FIN — the parent still holds its
        own descriptor, so its connection is untouched).

        ``policy`` then picks the child's posture:

        ``"disable"``
            The channel gives up shipping permanently; recording
            continues into the child's local buffers.

        ``"resession"``
            The session id is cleared so the next harvest opens a
            *fresh* daemon session, re-sending the instance
            registrations (the structures live on in the child); the
            heartbeat thread is restarted.
        """
        sock = self._client._sock if self._client is not None else None
        self._client = None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        if self._ring is not None:
            # Detach only: the segment (and the daemon conversation it
            # belongs to) is the parent's.  A resession child creates
            # its own ring at its first connect.
            self._ring.close()
            self._ring = None
        self.ring_full = 0
        self._ship_lock = threading.Lock()
        self._shipped = 0
        self._registered_sent = 0
        self._down_since = None
        self.final_ack = None
        # The fallback spill path belongs to the parent; the child
        # writing it would clobber the parent's residue.
        self._fallback_spill = None
        super()._after_fork_child(policy)
        if policy == "resession" and not self._gave_up:
            self._session_id = None
            self._hb_stop = threading.Event()
            self._hb_thread = threading.Thread(
                target=self._heartbeat_loop,
                args=(self._heartbeat_interval,),
                name="dsspy-remote-heartbeat",
                daemon=True,
            )
            self._hb_thread.start()
        else:
            self._gave_up = True

    @property
    def session_id(self) -> str | None:
        return self._session_id

    @property
    def proto_version(self) -> int | None:
        """Wire-protocol version negotiated with the daemon on the
        current connection (None while disconnected)."""
        client = self._client
        return client.proto_version if client is not None else None

    @property
    def reconnects(self) -> int:
        return self._reconnects

    @property
    def gave_up(self) -> bool:
        """True once the give-up deadline expired with the link down;
        unshipped events go to the fallback spill at drain time."""
        return self._gave_up

    def drain(self) -> list[RawEvent]:
        """Final harvest + final ship + FIN.  Returns the locally
        retained events (so in-process analysis still works), with the
        server's report available in :attr:`final_ack`.

        When the daemon stayed unreachable past the give-up deadline,
        the unshipped tail is written to the fallback spill file
        (:attr:`spill_path`) instead of being dropped — ``dsspy
        analyze`` reads the residue with the ordinary spill tooling."""
        master = super().drain()
        self._hb_stop.set()
        self._hb_thread.join(timeout=5.0)
        with self._ship_lock:
            # Stall-bounded final ship: iterations that move the cursor
            # are free (a small ring legitimately needs many refills),
            # only consecutive no-progress rounds count against the
            # budget — a dead daemon exhausts it quickly.
            max_stalls = 50 if self._transport == "shm" else 3
            stalls_left = max_stalls
            while stalls_left > 0:
                before = self._shipped
                self._ship_pending(force=True)
                if self._client is not None and self._shipped == len(master):
                    break
                if self._shipped == before:
                    stalls_left -= 1
                    if self._ring is not None and stalls_left > 0:
                        # Ring full: give the daemon's consumer a moment
                        # to free space before packing the remainder.
                        time.sleep(0.01)
                else:
                    stalls_left = max_stalls
            for _ in range(2):
                client = self._client
                if client is None:
                    break
                try:
                    self.final_ack = client.fin()
                    break
                except (OSError, ProtocolError):
                    # The shm path exercises the socket so rarely that a
                    # long-dead connection may only surface here:
                    # reconnect (resuming the session), re-ship whatever
                    # the server lost, and try the FIN once more.
                    self.final_ack = None
                    self._disconnect()
                    self._ship_pending(force=True)
            self._disconnect()
            if self._ring is not None:
                # FIN (or its failure) ends this ring's conversation;
                # the daemon has already detached its side.
                self._ring.unlink()
                self._ring = None
            if self._shipped < len(master) and self._fallback_spill is not None:
                with SpillWriter(self._fallback_spill) as writer:
                    writer.write_batch(master[self._shipped :])
                self.spill_path = self._fallback_spill
        return master
