"""Length-prefixed binary wire protocol of the profiling service.

A conversation is a sequence of *frames*, each::

    4 bytes   big-endian uint32: frame length = 1 + len(payload)
    1 byte    message type (:class:`MessageType`)
    N bytes   payload

Control frames (HELLO, ACK, REGISTER, HEARTBEAT, FIN, STATS, ERROR)
carry UTF-8 JSON payloads — they are rare, so readability beats
compactness.  EVENTS frames carry the hot data and reuse the spill
file's fixed-width record packing (:func:`~repro.events.spill.pack_record`)
verbatim::

    8 bytes   big-endian uint64: stream index of the first event
    4 bytes   big-endian uint32: record count
    N * 39    spill records (little-endian, as on disk)

The stream index is the client's cumulative event counter; together
with the server's ``received`` high-water mark it makes retransmission
after a reconnect idempotent — the server skips the overlap instead of
double-counting.

Framing is deliberately strict: a declared length of zero (no type
byte) or beyond :data:`MAX_FRAME_BYTES` is a protocol error, not a
huge allocation.  :class:`FrameDecoder` is a plain incremental byte
feeder so it can sit on top of any transport and is trivially
property-testable against partial reads.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Iterable

from ..events.event import RawEvent
from ..events.spill import RECORD_SIZE, pack_record, record_is_plausible, unpack_record


class ProtocolError(Exception):
    """A malformed frame or an out-of-protocol message sequence."""


class RetryAfterError(ProtocolError):
    """The server is shedding load: come back in ``retry_after`` sec.

    A subclass of :class:`ProtocolError` so every existing recovery
    path (reconnect-and-retransmit) treats it as a transient failure;
    backoff-aware callers additionally honor the server's delay."""

    def __init__(self, retry_after: float, message: str | None = None) -> None:
        super().__init__(
            message or f"server shedding load; retry after {retry_after}s"
        )
        self.retry_after = retry_after


class MessageType:
    """Frame type codes.  An ``IntEnum`` in spirit; plain ints on the
    wire (one byte) and in decoder output, named constants here."""

    HELLO = 1
    ACK = 2
    REGISTER = 3
    EVENTS = 4
    HEARTBEAT = 5
    FIN = 6
    STATS = 7
    ERROR = 8
    RETRY_AFTER = 9
    JOURNALED = 10
    SNAPSHOT = 11

    _NAMES = {
        1: "HELLO",
        2: "ACK",
        3: "REGISTER",
        4: "EVENTS",
        5: "HEARTBEAT",
        6: "FIN",
        7: "STATS",
        8: "ERROR",
        9: "RETRY_AFTER",
        10: "JOURNALED",
        11: "SNAPSHOT",
    }

    @classmethod
    def name(cls, code: int) -> str:
        return cls._NAMES.get(code, f"UNKNOWN({code})")


_LENGTH = struct.Struct("!I")
_EVENTS_HEADER = struct.Struct("!QI")

#: Hard ceiling on one frame (length prefix value).  Big enough for the
#: largest EVENTS batch a client ships, small enough that a corrupt or
#: hostile length prefix cannot trigger a giant allocation.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Largest EVENTS batch that fits one frame.
MAX_EVENTS_PER_FRAME = (MAX_FRAME_BYTES - 1 - _EVENTS_HEADER.size) // RECORD_SIZE


def encode_frame(mtype: int, payload: bytes = b"") -> bytes:
    """One wire frame: length prefix + type byte + payload."""
    length = 1 + len(payload)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    return _LENGTH.pack(length) + bytes((mtype,)) + payload


class FrameDecoder:
    """Incremental frame reassembly from an arbitrary byte stream.

    ``feed`` accepts any chunking — single bytes, half frames, many
    frames at once — and returns every frame completed so far.  State
    between calls is just the undigested byte tail.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[tuple[int, bytes]]:
        """Absorb ``data``; return all newly completed ``(type, payload)``."""
        self._buffer += data
        frames: list[tuple[int, bytes]] = []
        buf = self._buffer
        while True:
            if len(buf) < _LENGTH.size:
                break
            (length,) = _LENGTH.unpack_from(buf)
            if length < 1:
                raise ProtocolError("frame length prefix < 1 (no type byte)")
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame length prefix {length} exceeds "
                    f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
                )
            end = _LENGTH.size + length
            if len(buf) < end:
                break
            mtype = buf[_LENGTH.size]
            payload = bytes(buf[_LENGTH.size + 1 : end])
            del buf[:end]
            frames.append((mtype, payload))
        return frames


# -- JSON control payloads ---------------------------------------------------


def encode_json(mtype: int, obj: dict[str, Any]) -> bytes:
    return encode_frame(mtype, json.dumps(obj, separators=(",", ":")).encode("utf-8"))


def decode_json(payload: bytes) -> dict[str, Any]:
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON control payload: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("control payload must be a JSON object")
    return obj


# -- protocol version negotiation --------------------------------------------

#: Current wire-protocol version of this build.  Version 1 is the
#: pre-negotiation protocol (no version keys in HELLO/ACK at all);
#: version 2 added explicit negotiation, the feature-flag set, and
#: skip-and-count handling of unknown frame types.  Bump this (and add
#: an entry to the compatibility table in ``docs/architecture.md``)
#: whenever a frame type or payload schema changes.
PROTOCOL_VERSION = 2

#: Oldest peer version this build still speaks.  Raising this drops
#: compatibility with old clients/daemons — a fleet must finish its
#: rolling upgrade through every intermediate version first.
PROTOCOL_MIN_SUPPORTED = 1

#: Optional features this build implements, advertised in HELLO/ACK
#: alongside the version range.  Both sides use the *intersection*;
#: a feature missing on either side is silently not used (graceful
#: degradation), never an error.
PROTOCOL_FEATURES = frozenset({"shm", "snapshot", "journaled", "retry-after"})


def version_offer() -> dict[str, Any]:
    """HELLO/ACK payload fragment advertising this build's versions.

    Merged into the HELLO (client side) and echoed, with the
    *negotiated* version, in the ACK (daemon side).  Version-1 peers
    ignore the unknown keys, which is exactly the degradation we want.
    """
    return {
        "proto": PROTOCOL_VERSION,
        "proto_min": PROTOCOL_MIN_SUPPORTED,
        "features": sorted(PROTOCOL_FEATURES),
    }


def parse_version_offer(obj: dict[str, Any]) -> tuple[int, int, frozenset[str]]:
    """Extract ``(min, max, features)`` from a HELLO or ACK payload.

    A payload without version keys is a version-1 peer (the protocol
    predating negotiation); its feature set is inferred from the
    legacy capability keys it *did* send (an old client offering
    ``shm`` still gets its ring).  Malformed version keys raise
    :class:`ProtocolError` — a peer that speaks the schema but gets it
    wrong is a bug, not a legacy peer.
    """
    proto = obj.get("proto")
    if proto is None:
        features = {"shm"} if SHM_CAPABILITY in obj else set()
        return 1, 1, frozenset(features)
    if not isinstance(proto, int) or proto < 1:
        raise ProtocolError("HELLO 'proto' must be a positive integer")
    proto_min = obj.get("proto_min", 1)
    if not isinstance(proto_min, int) or not 1 <= proto_min <= proto:
        raise ProtocolError("HELLO 'proto_min' must be an int in [1, proto]")
    raw_features = obj.get("features", [])
    if not isinstance(raw_features, list) or not all(
        isinstance(f, str) for f in raw_features
    ):
        raise ProtocolError("HELLO 'features' must be a list of strings")
    return proto_min, proto, frozenset(raw_features)


def negotiate_version(
    peer_min: int,
    peer_max: int,
    *,
    local_min: int = PROTOCOL_MIN_SUPPORTED,
    local_max: int = PROTOCOL_VERSION,
) -> int | None:
    """Highest version both ranges contain, or ``None`` when the
    ranges are disjoint (the caller reports a clear error — there is
    no safe fallback once a peer's *minimum* is above our maximum)."""
    high = min(peer_max, local_max)
    if high < max(peer_min, local_min):
        return None
    return high


# -- HELLO capabilities ------------------------------------------------------

#: HELLO payload key under which a client offers the shared-memory ring
#: transport (:mod:`repro.service.shm`).  The daemon answers with the
#: same key in its ACK: ``true`` when it attached the ring (EVENTS move
#: off the socket entirely), ``false``/absent when the client must keep
#: shipping EVENTS frames.  Control traffic (REGISTER, HEARTBEAT, FIN,
#: STATS) stays on the socket either way.
SHM_CAPABILITY = "shm"


def shm_offer(name: str, capacity_bytes: int) -> dict[str, Any]:
    """HELLO capability value offering a shared-memory ring."""
    return {"name": name, "capacity": int(capacity_bytes)}


def parse_shm_offer(obj: dict[str, Any]) -> tuple[str, int] | None:
    """Extract a well-formed shm offer from a HELLO payload.

    Returns ``(segment_name, capacity_bytes)`` or ``None`` when the
    client offered nothing.  A *malformed* offer raises
    :class:`ProtocolError` — the client spoke the capability but got
    the schema wrong, which is a bug worth surfacing, not a reason to
    silently fall back to the socket.
    """
    offer = obj.get(SHM_CAPABILITY)
    if offer is None:
        return None
    if not isinstance(offer, dict) or not isinstance(offer.get("name"), str):
        raise ProtocolError("HELLO 'shm' capability must be {name, capacity}")
    capacity = offer.get("capacity", 0)
    if not isinstance(capacity, int) or capacity <= 0:
        raise ProtocolError("HELLO 'shm' capacity must be a positive integer")
    return offer["name"], capacity


# -- EVENTS payloads ---------------------------------------------------------


def encode_events(start: int, raws: Iterable[RawEvent]) -> bytes:
    """EVENTS frame for ``raws`` starting at stream index ``start``."""
    body = bytearray()
    count = 0
    for raw in raws:
        body += pack_record(raw)
        count += 1
    if count > MAX_EVENTS_PER_FRAME:
        raise ProtocolError(
            f"{count} events exceed MAX_EVENTS_PER_FRAME ({MAX_EVENTS_PER_FRAME})"
        )
    return encode_frame(
        MessageType.EVENTS, _EVENTS_HEADER.pack(start, count) + bytes(body)
    )


def decode_events(payload: bytes, validate: bool = False) -> tuple[int, list[RawEvent]]:
    """Inverse of :func:`encode_events`: ``(start, raw event tuples)``.

    With ``validate=True`` every record is screened with
    :func:`~repro.events.spill.record_is_plausible` and a frame
    carrying any implausible record is rejected whole with a
    :class:`ProtocolError`.  The daemon decodes with validation on:
    rejecting the frame tears down the connection, the client
    reconnects and retransmits from the server's ``received`` cursor,
    and the corrupted window is replaced by a clean copy — whereas
    silently folding garbage records would corrupt the analysis, and
    silently *skipping* them would desynchronize the stream-index
    cursor both sides use for exact resume.
    """
    if len(payload) < _EVENTS_HEADER.size:
        raise ProtocolError("EVENTS payload shorter than its header")
    start, count = _EVENTS_HEADER.unpack_from(payload)
    body = payload[_EVENTS_HEADER.size :]
    if len(body) != count * RECORD_SIZE:
        raise ProtocolError(
            f"EVENTS payload declares {count} records but carries "
            f"{len(body)} body bytes (expected {count * RECORD_SIZE})"
        )
    if validate:
        bad = sum(
            1
            for offset in range(0, len(body), RECORD_SIZE)
            if not record_is_plausible(body[offset : offset + RECORD_SIZE])
        )
        if bad:
            raise ProtocolError(
                f"EVENTS frame at stream index {start} carries {bad} "
                f"implausible record(s) of {count}; rejecting the frame "
                "for retransmission"
            )
    return start, [
        unpack_record(body[offset : offset + RECORD_SIZE])
        for offset in range(0, len(body), RECORD_SIZE)
    ]


# -- blocking socket transport ----------------------------------------------


def send_frame(sock: socket.socket, mtype: int, payload: bytes = b"") -> None:
    sock.sendall(encode_frame(mtype, payload))


def send_raw_frame(sock: socket.socket, frame: bytes) -> None:
    sock.sendall(frame)


def _recv_exact(sock: socket.socket, n: int, *, at_boundary: bool) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF before the first
    byte of a frame, :class:`ProtocolError` on EOF mid-frame."""
    chunks = bytearray()
    while len(chunks) < n:
        chunk = sock.recv(n - len(chunks))
        if not chunk:
            if at_boundary and not chunks:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks += chunk
    return bytes(chunks)


def recv_frame(sock: socket.socket) -> tuple[int, bytes] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _LENGTH.size, at_boundary=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length < 1:
        raise ProtocolError("frame length prefix < 1 (no type byte)")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length prefix {length} exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    body = _recv_exact(sock, length, at_boundary=False)
    assert body is not None
    return body[0], body[1:]
