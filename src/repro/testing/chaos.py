"""Chaos soak harness: randomized fault schedules vs. a no-silent-loss ledger.

The differential oracle (:mod:`~repro.testing.oracle`) answers "does one
trial converge to batch semantics under *network* faults".  This module
answers the operational question PR 9 cares about: does the service stay
*accountable* when everything misbehaves at once — workers SIGKILLed
mid-window, the disk returning ENOSPC/EIO, fsync stalling, and extra
producers storming the ingest port — for hours, across hundreds of
seeded trials?

Every trial runs a seeded fault schedule against a fresh daemon (or a
whole :class:`~repro.service.fleet.FleetSupervisor`) and then asserts
the **no-silent-loss ledger** via :class:`InvariantMonitor`:

1. every event the producer generated was acknowledged (FIN
   ``received`` equals the trace length);
2. the recovered report is *exactly* the batch engine's report —
   crash-recovery may cost duplicates, never data or phantom flags;
3. every refusal the client observed (RETRY-AFTER frames) appears in
   some server-side counter (``refused_windows`` on the governor,
   shed windows on the admission ladder, ``refused_hellos``) — load
   may be shed, but only *with accounting*;
4. recovery after a kill is time-bounded;
5. the state directory the trial leaves behind passes
   :func:`~repro.service.fsck.fsck_state_dir` with zero problems.

A deliberately broken rung — e.g. patching
:class:`~repro.service.governor.ResourceGovernor.note_refused` into a
no-op — violates invariant 3 within a few dozen seeded trials; that
detection test is the harness's own smoke alarm.

Disk faults use :class:`~repro.testing.faults.FaultFS`.  An exhausted
ENOSPC budget would starve a trial forever, so the ship loop plays the
operator: after :attr:`ChaosSoak.relieve_after` consecutive refusals it
calls ``fs.relieve()`` ("disk freed") and lets the governor's pressure
decay bring the daemon back — which exercises exactly the
degrade-then-recover path the ladder exists for.

The ``upgrade`` fault (:attr:`ChaosSoak.upgrade_rate`) replays a
version-skewed deploy mid-trial.  Inproc: the daemon generation is
parked (drain + checkpoint), its state dir regressed to the previous
on-disk format, ``migrate`` run — often first under a hostile FaultFS
that dies mid-rewrite, the stand-in for SIGKILL during ``dsspy
migrate`` — then finished clean, and the next generation boots on the
migrated state.  Fleet: a real :meth:`FleetSupervisor.rolling_upgrade`
runs while sessions stream.  Either way the ledger must balance.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..service.client import ServiceClient, fetch_stats
from ..service.daemon import ProfilingDaemon
from ..service.fleet import FleetSupervisor
from ..service.fsck import fsck_state_dir
from ..service.migrate import migrate_state_dir
from ..service.protocol import ProtocolError, RetryAfterError
from .faults import FAULT_KINDS, FaultFS, FaultPlan, FaultProxy
from .oracle import (
    FAULT_SEED_SALT,
    diff_summaries,
    run_batch_path,
    summarize_report,
)
from .traces import Trace, generate_trace

#: Mixed into the trial seed to derive the disk-fault seed, so the
#: FaultFS schedule varies independently of trace and network faults.
DISK_SEED_SALT = 0xD15C_0BAD

#: Mixed into the trial seed for storm-producer traces.
STORM_SEED_SALT = 0x57012_AB

#: Mixed into the trial seed for the upgrade fault's own randomness
#: (mid-migration fault profile), independent of the other schedules.
UPGRADE_SEED_SALT = 0x06_AD_E5


def regress_state_dir_to_v1(root: str | Path) -> int:
    """TEST SCAFFOLDING: rewrite a state directory the way the
    previous (v1) dsspy generation left it — v1 segment magics and v1
    checkpoints without the ``format`` block.  Real old builds write
    this shape natively; the chaos ``upgrade`` fault regresses fresh
    state so every soak trial hands ``migrate`` genuinely old input.
    Returns the number of files rewritten."""
    from ..service.durability import (
        _CHECKPOINT_NAME,
        _MAGIC_LEN,
        _SEGMENT_GLOB,
        journal_magic,
        parse_journal_magic,
    )
    from ..service.fleet import scan_fleet_state_dir

    root = Path(root)
    if any(root.glob(_SEGMENT_GLOB)) or (root / _CHECKPOINT_NAME).exists():
        session_dirs = [root]
    else:
        session_dirs = scan_fleet_state_dir(root)
    rewritten = 0
    for directory in session_dirs:
        for segment in sorted(directory.glob(_SEGMENT_GLOB)):
            data = segment.read_bytes()
            try:
                version = parse_journal_magic(data[:_MAGIC_LEN])
            except ValueError:
                continue  # damaged header stays damaged
            if version <= 1:
                continue
            segment.write_bytes(journal_magic(1) + data[_MAGIC_LEN:])
            rewritten += 1
        ckpt = directory / _CHECKPOINT_NAME
        if ckpt.exists():
            try:
                state = json.loads(ckpt.read_text())
            except (OSError, ValueError):
                continue
            if isinstance(state, dict) and state.get("version", 1) != 1:
                state["version"] = 1
                state.pop("format", None)
                ckpt.write_text(json.dumps(state, separators=(",", ":")))
                rewritten += 1
    return rewritten


def _accounted_refusals(stats: dict[str, Any]) -> int:
    """Total refusals the server's ledger accounts for, from a STATS
    payload: governor-refused windows + admission-shed windows +
    refused HELLOs.  Tolerates either stats shape (admission present
    or governor alone)."""
    admission = stats.get("admission") or {}
    governor = admission.get("governor") or stats.get("governor") or {}
    shed = (admission.get("windows_by_stage") or {}).get("shed", 0)
    return (
        int(governor.get("refused_windows", 0))
        + int(shed)
        + int(admission.get("refused_hellos", 0))
    )


def _offline_replay_notes(state_dir: Path, batch: dict[str, Any]) -> list[str]:
    """Autopsy aid, run when a trial violates: replay every surviving
    session journal offline and diff the replayed report against the
    batch summary.  A replay that *matches* batch while the live
    report diverged pins the bug on the live fold path; a replay that
    diverges the same way pins it on the journal itself.  The lines
    are labelled ``diagnostic:`` and ride along with the violations in
    the trial ledger — they never flip a passing trial."""
    notes: list[str] = []
    try:
        from ..service.durability import recover_session_dir, scan_state_dir
        from ..usecases.json_export import report_to_dict

        for directory in scan_state_dir(state_dir):
            rec = recover_session_dir(directory)
            summary = summarize_report(report_to_dict(rec.engine.report()))
            diff = diff_summaries("batch", batch, "replay", summary)
            verdict = "matches batch" if not diff else "; ".join(diff)[:600]
            notes.append(
                f"diagnostic: offline replay of {directory.name} "
                f"(received={rec.received}, replayed={rec.events_replayed}, "
                f"notes={rec.notes!r}): {verdict}"
            )
    except Exception as exc:  # diagnostics must never mask the violation
        notes.append(f"diagnostic: offline replay failed: {exc!r}")
    return notes


@dataclass
class InvariantMonitor:
    """The no-silent-loss ledger, as five independent checks.

    Each ``check_*`` returns a list of violation strings (empty when
    the invariant holds); :meth:`check` runs them all.  Kept as small
    composable methods so the fleet backend can run the per-session
    report check many times but the ledger check once per trial.
    """

    #: Max seconds a single crash-recovery may take.
    recovery_bound: float = 15.0

    def check_counts(self, total_events: int, final_received: int) -> list[str]:
        if final_received != total_events:
            return [
                f"event loss: daemon acknowledged {final_received} of "
                f"{total_events} events"
            ]
        return []

    def check_reports(self, batch: dict[str, Any], daemon: dict[str, Any]) -> list[str]:
        return diff_summaries("batch", batch, "chaos-daemon", daemon)

    def check_ledger(self, observed: int, accounted: int) -> list[str]:
        if observed > accounted:
            return [
                f"silent shed: client observed {observed} RETRY-AFTER "
                f"refusals but the server ledger accounts for only "
                f"{accounted}"
            ]
        return []

    def check_recovery(self, recovery_times: list[float]) -> list[str]:
        slow = [t for t in recovery_times if t > self.recovery_bound]
        if slow:
            return [
                f"recovery bound exceeded: {len(slow)} recoveries above "
                f"{self.recovery_bound:.1f}s (worst {max(slow):.2f}s)"
            ]
        return []

    def check_fsck(self, report: dict[str, Any] | None) -> list[str]:
        if report is None or report.get("ok", False):
            return []
        problems = [
            f"{s.get('session', '?')}: {p}"
            for s in report.get("sessions", [])
            for p in s.get("problems", [])
        ]
        problems.extend(str(p) for p in report.get("problems", []))
        return ["fsck found damage in the surviving state dir: " + "; ".join(problems)]

    def check(
        self,
        *,
        total_events: int,
        final_received: int,
        batch: dict[str, Any],
        daemon: dict[str, Any],
        observed_refusals: int,
        accounted_refusals: int,
        recovery_times: list[float],
        fsck_report: dict[str, Any] | None,
    ) -> list[str]:
        out = self.check_counts(total_events, final_received)
        out += self.check_reports(batch, daemon)
        out += self.check_ledger(observed_refusals, accounted_refusals)
        out += self.check_recovery(recovery_times)
        out += self.check_fsck(fsck_report)
        return out


@dataclass
class ChaosTrialResult:
    """Outcome of one seeded chaos trial — everything the ledger saw."""

    seed: int
    backend: str
    ok: bool
    violations: list[str] = field(default_factory=list)
    events: int = 0
    sessions: int = 1
    faults_injected: int = 0
    kills: int = 0
    upgrades: int = 0
    refusals_observed: int = 0
    refusals_accounted: int = 0
    recovery_times: list[float] = field(default_factory=list)
    disk_faults: dict[str, Any] | None = None
    elapsed: float = 0.0
    #: Path to the trial's state dir when it was preserved for autopsy
    #: (violating trial under ``preserve_evidence=True``).
    state_dir: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "backend": self.backend,
            "ok": self.ok,
            "violations": self.violations,
            "events": self.events,
            "sessions": self.sessions,
            "faults_injected": self.faults_injected,
            "kills": self.kills,
            "upgrades": self.upgrades,
            "refusals_observed": self.refusals_observed,
            "refusals_accounted": self.refusals_accounted,
            "recovery_times": [round(t, 4) for t in self.recovery_times],
            "disk_faults": self.disk_faults,
            "elapsed": round(self.elapsed, 4),
            "state_dir": self.state_dir,
        }

    def describe(self) -> str:
        status = "ok" if self.ok else "VIOLATION"
        lines = [
            f"trial seed={self.seed}: {status} ({self.events} events, "
            f"{self.faults_injected} faults, {self.kills} kills, "
            f"{self.upgrades} upgrades, "
            f"{self.refusals_observed} refusals, {self.elapsed:.2f}s)"
        ]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


class ChaosSoak:
    """Time-boxed randomized soak of the profiling service.

    ``backend="inproc"`` (default): each trial builds a fresh
    :class:`ProfilingDaemon` on its own state dir, optionally with a
    seeded :class:`FaultFS` underneath, fronted by a
    :class:`FaultProxy` whose ``kill`` fault crashes the daemon
    in-process and times the recovery.  Cheap enough for
    hundreds-of-trials soaks.

    ``backend="fleet"``: each trial starts a real
    :class:`FleetSupervisor` (router + worker subprocesses), ships
    several sessions concurrently through the proxy, SIGKILLs random
    workers mid-stream, and additionally asserts that the fleet
    coordinator's *merged* report equals the union of the per-session
    batch reports.  Slower; meant for short smokes and nightlies.

    Use as a context manager or call :meth:`close` — the soak owns a
    temp root that every trial's state dir lives under.
    """

    def __init__(
        self,
        *,
        backend: str = "inproc",
        window: int = 48,
        fault_intensity: float = 0.3,
        fault_kinds: tuple[str, ...] = FAULT_KINDS,
        max_faults: int = 6,
        checkpoint_every: int = 128,
        retry_after: float = 0.05,
        disk_fault_rate: float = 0.6,
        storm_rate: float = 0.3,
        upgrade_rate: float = 0.0,
        max_storm_producers: int = 3,
        relieve_after: int = 3,
        state_budget: int | None = None,
        fault_fs_factory: Callable[[int], FaultFS | None] | None = None,
        fleet_workers: int = 3,
        fleet_sessions: int = 3,
        fleet_fault_fs_spec: str | None = None,
        trace_kwargs: dict[str, Any] | None = None,
        monitor: InvariantMonitor | None = None,
        preserve_evidence: bool = False,
    ) -> None:
        if backend not in ("inproc", "fleet"):
            raise ValueError(f"backend must be 'inproc' or 'fleet', got {backend!r}")
        self.backend = backend
        self.window = window
        self.fault_intensity = fault_intensity
        self.fault_kinds = fault_kinds
        self.max_faults = max_faults
        self.checkpoint_every = checkpoint_every
        self.retry_after = retry_after
        self.disk_fault_rate = disk_fault_rate
        self.storm_rate = storm_rate
        self.upgrade_rate = upgrade_rate
        self.max_storm_producers = max_storm_producers
        self.relieve_after = relieve_after
        self.state_budget = state_budget
        self.fault_fs_factory = fault_fs_factory or self._default_fault_fs
        self.fleet_workers = fleet_workers
        self.fleet_sessions = fleet_sessions
        self.fleet_fault_fs_spec = fleet_fault_fs_spec
        self.trace_kwargs = dict(trace_kwargs or {})
        self.monitor = monitor or InvariantMonitor()
        #: Keep a violating trial's state dir (under the soak root, so
        #: it lives until :meth:`close`) instead of deleting it, and
        #: record its path on the trial result.  Off by default: the
        #: broken-rung sensitivity test violates on purpose and must
        #: not litter.
        self.preserve_evidence = preserve_evidence
        #: State dirs preserved so far (violating trials only).
        self.preserved: list[str] = []
        self.kills = 0
        self._root = Path(tempfile.mkdtemp(prefix="dsspy-chaos-"))

    # -- seeded ingredients ----------------------------------------------

    def _default_fault_fs(self, seed: int) -> FaultFS | None:
        """Seeded disk-fault profile.  Budgets are sized against chaos
        trial journals (tens of KiB), not :meth:`FaultFS.from_seed`'s
        MiB-scale default, so a good fraction of trials actually hit
        ENOSPC mid-stream and exercise the refusal ledger."""
        rng = random.Random(seed ^ DISK_SEED_SALT)
        if rng.random() >= self.disk_fault_rate:
            return None
        intensity = max(self.fault_intensity, 0.3)
        return FaultFS(
            enospc_after_bytes=(
                rng.randrange(256, 16_384) if rng.random() < 0.7 else None
            ),
            partial_writes=rng.random() < 0.5,
            eio_every_reads=(
                rng.randrange(5, 50) if rng.random() < intensity * 0.5 else None
            ),
            fsync_stall_seconds=(
                rng.uniform(0.001, 0.01) if rng.random() < intensity * 0.3 else 0.0
            ),
        )

    def build_plan(self, seed: int) -> FaultPlan:
        if self.fault_intensity <= 0:
            return FaultPlan.transparent()
        return FaultPlan.from_seed(
            seed ^ FAULT_SEED_SALT,
            intensity=self.fault_intensity,
            max_faults=self.max_faults,
            kinds=self.fault_kinds,
        )

    # -- the counting ship loop ------------------------------------------

    def _ship(
        self,
        trace: Trace,
        address: str,
        *,
        fs: FaultFS | None = None,
        window: int | None = None,
        max_attempts: int = 600,
        retry_delay: float = 0.0,
        recovery_log: list[float] | None = None,
    ) -> tuple[dict[str, Any], int, int]:
        """:func:`~repro.testing.oracle.run_daemon_path` with a ledger:
        returns ``(report, refusals_observed, final_received)``.

        RETRY-AFTER frames are counted (that count is later compared
        against the server's own refusal counters) and, after
        :attr:`relieve_after` consecutive refusals, the injected
        ``fs`` is relieved — the seeded stand-in for an operator
        freeing disk space.  ``recovery_log`` (fleet backend) records
        the span from the first transport error to the next successful
        send, i.e. client-observed recovery time.
        """
        window = window or self.window
        total = len(trace.events)
        registrations = [inst.registration() for inst in trace.instances]
        events = trace.events
        client: ServiceClient | None = None
        session_id: str | None = None
        sent = 0
        observed = 0
        consecutive = 0
        outage_start: float | None = None
        for _attempt in range(max_attempts):
            try:
                if client is None:
                    client = ServiceClient(address, session_id=session_id)
                    session_id = client.session_id
                    sent = min(sent, client.server_received) if client.resumed else 0
                    client.register_instances(registrations)
                while sent < total:
                    n = min(window, total - sent)
                    client.send_events(sent, events[sent : sent + n])
                    sent += n
                    if outage_start is not None:
                        if recovery_log is not None:
                            recovery_log.append(time.monotonic() - outage_start)
                        outage_start = None
                ack = client.fin()
                client.close()
                if ack.get("received") != total:
                    raise AssertionError(
                        f"daemon acknowledged {ack.get('received')} of {total} events"
                    )
                return ack["report"], observed, int(ack.get("received", 0))
            except RetryAfterError as exc:
                # An accounted refusal, not an outage: count it, give
                # the server the breather it asked for, and eventually
                # play the operator and free disk.
                observed += 1
                consecutive += 1
                if client is not None:
                    client.close()
                    client = None
                if fs is not None and consecutive >= self.relieve_after:
                    fs.relieve()
                time.sleep(min(max(exc.retry_after, 0.01), 0.25))
            except (OSError, ProtocolError):
                if outage_start is None:
                    outage_start = time.monotonic()
                consecutive = 0
                if client is not None:
                    client.close()
                    client = None
                if retry_delay:
                    time.sleep(retry_delay)
        raise RuntimeError(
            f"chaos ship did not converge after {max_attempts} attempts "
            f"(session {session_id}, {sent}/{total} shipped, "
            f"{observed} refusals observed)"
        )

    # -- trials -----------------------------------------------------------

    def run_trial(self, seed: int) -> ChaosTrialResult:
        if self.backend == "fleet":
            return self._run_trial_fleet(seed)
        return self._run_trial_inproc(seed)

    def _run_trial_inproc(self, seed: int) -> ChaosTrialResult:
        t_start = time.monotonic()
        rng = random.Random(seed)
        trace = generate_trace(seed, **self.trace_kwargs)
        batch = summarize_report(run_batch_path(trace))
        fs = self.fault_fs_factory(seed)
        state_dir = self._root / f"trial-{seed:08d}"
        plan = self.build_plan(seed)

        recovery_times: list[float] = []
        kills = 0
        daemon_box: dict[str, ProfilingDaemon] = {}
        #: Every daemon generation ever started, dead or alive.  The
        #: refusal counters live on per-daemon admission/governor
        #: objects that survive crash(), so the trial sums the ledger
        #: across *all* generations at the end instead of snapshotting
        #: at kill time — a snapshot race cannot under-account, and no
        #: generation can escape the sum.
        generations: list[ProfilingDaemon] = []
        kill_lock = threading.Lock()

        def make_daemon() -> ProfilingDaemon:
            daemon = ProfilingDaemon(
                port=0,
                heartbeat_timeout=3600.0,
                session_linger=3600.0,
                state_dir=state_dir,
                checkpoint_every=self.checkpoint_every,
                retry_after=self.retry_after,
                fs=fs,
            )
            generations.append(daemon)
            return daemon

        recovery_failures: list[str] = []

        def on_kill() -> str:
            # SIGKILL semantics: crash the current generation and
            # recover a replacement on the same state dir.  The lock is
            # load-bearing: kill faults fire on per-connection proxy
            # threads, and two concurrent kills would both crash the
            # same generation and then each start a replacement — one
            # of the two replacements ends up orphaned (clients talk to
            # it, but the trial's final stats read the other), and both
            # would recover from and append to the same state dir at
            # once.
            nonlocal kills
            with kill_lock:
                daemon_box["d"].crash()
                t0 = time.monotonic()
                try:
                    daemon_box["d"] = make_daemon()
                except Exception as exc:
                    # Recovery refusing to come up is itself a ledger
                    # violation — record it loudly instead of letting
                    # the proxy thread die and the trial stall to
                    # timeout.
                    recovery_failures.append(
                        f"daemon failed to recover after kill: {exc!r}"
                    )
                    raise
                recovery_times.append(time.monotonic() - t0)
                kills += 1
                self.kills += 1
                return daemon_box["d"].address

        daemon_box["d"] = make_daemon()
        violations: list[str] = []
        storm_violations: list[str] = []
        storm_observed = [0]
        fsck_report: dict[str, Any] | None = None
        observed = 0
        received = 0
        accounted = 0
        # No rng draws unless the fault is enabled: upgrade_rate=0 must
        # leave the seeded fault/storm stream byte-identical to builds
        # that predate the upgrade fault.
        want_upgrade = self.upgrade_rate > 0 and rng.random() < self.upgrade_rate
        upgrade_delay = rng.uniform(0.05, 0.4) if self.upgrade_rate > 0 else 0.0
        upgrades = [0]
        upgrade_violations: list[str] = []
        try:
            with FaultProxy(
                daemon_box["d"].address, plan, on_kill=on_kill
            ) as proxy:
                upgrade_thread: threading.Thread | None = None
                if want_upgrade:

                    def do_upgrade() -> None:
                        # Inproc flavor of a rolling upgrade: park the
                        # running generation, regress its state dir to
                        # the previous format (stand-in for "the old
                        # build wrote this"), migrate — often first
                        # under a hostile FaultFS that dies mid-rewrite,
                        # like SIGKILL during `dsspy migrate` — then
                        # finish the migration clean and boot the next
                        # generation on the result.  The kill lock
                        # serializes against kill faults: nothing else
                        # may crash or replace the generation while the
                        # state dir is mid-surgery.
                        time.sleep(upgrade_delay)
                        with kill_lock:
                            old = daemon_box["d"]
                            try:
                                old.park()
                            except Exception:
                                old.crash()  # journal is the truth
                            try:
                                regress_state_dir_to_v1(state_dir)
                                urng = random.Random(seed ^ UPGRADE_SEED_SALT)
                                if urng.random() < 0.6:
                                    hostile = FaultFS(
                                        enospc_after_bytes=urng.randrange(64, 4096),
                                        partial_writes=urng.random() < 0.7,
                                    )
                                    try:
                                        migrate_state_dir(state_dir, fs=hostile)
                                    except OSError:
                                        pass  # the killed-mid-migration half
                                migrate_state_dir(state_dir)
                            except Exception as exc:
                                upgrade_violations.append(
                                    f"upgrade migration failed: {exc!r}"
                                )
                            t0 = time.monotonic()
                            try:
                                daemon_box["d"] = make_daemon()
                            except Exception as exc:
                                upgrade_violations.append(
                                    f"post-upgrade generation failed to boot: {exc!r}"
                                )
                                return
                            proxy.upstream_address = daemon_box["d"].address
                            recovery_times.append(time.monotonic() - t0)
                            upgrades[0] += 1

                    upgrade_thread = threading.Thread(target=do_upgrade, daemon=True)
                    upgrade_thread.start()
                storm_threads: list[threading.Thread] = []
                if rng.random() < self.storm_rate:
                    for i in range(rng.randint(1, self.max_storm_producers)):
                        storm_seed = (seed * 1_000_003 + i + 1) ^ STORM_SEED_SALT
                        storm_trace = generate_trace(
                            storm_seed,
                            max_instances=2,
                            max_segments=2,
                            max_segment_events=40,
                        )
                        storm_batch = summarize_report(run_batch_path(storm_trace))

                        def storm(i=i, st=storm_trace, sb=storm_batch) -> None:
                            try:
                                rep, obs, _ = self._ship(
                                    st, proxy.address, fs=fs, window=16
                                )
                                storm_observed[0] += obs
                                storm_violations.extend(
                                    diff_summaries(
                                        "batch", sb, f"storm-{i}", summarize_report(rep)
                                    )
                                )
                            except Exception as exc:
                                storm_violations.append(
                                    f"storm producer {i} did not converge: {exc!r}"
                                )

                        th = threading.Thread(target=storm, daemon=True)
                        th.start()
                        storm_threads.append(th)

                report, observed, received = self._ship(trace, proxy.address, fs=fs)
                for th in storm_threads:
                    th.join(timeout=60.0)
                    if th.is_alive():
                        storm_violations.append("storm producer still running")
                if upgrade_thread is not None:
                    # The upgrade may outlive the ship (short traces):
                    # wait for it so the final ledger sum, fsck, and
                    # cleanup see a settled state dir.
                    upgrade_thread.join(timeout=60.0)
                    if upgrade_thread.is_alive():
                        upgrade_violations.append("upgrade fault still running")

            # Ship threads have joined, so every observed refusal's
            # counter increment (which strictly precedes the RETRY-AFTER
            # send) is already visible in its generation's ledger.
            accounted = sum(
                _accounted_refusals(d.stats()) for d in generations
            )
            fsck_report = fsck_state_dir(state_dir)
            violations = self.monitor.check(
                total_events=len(trace.events),
                final_received=received,
                batch=batch,
                daemon=summarize_report(report),
                observed_refusals=observed + storm_observed[0],
                accounted_refusals=accounted,
                recovery_times=recovery_times,
                fsck_report=fsck_report,
            )
            violations += storm_violations
            violations += upgrade_violations
        except Exception as exc:
            violations.append(f"trial aborted: {exc!r}")
        finally:
            violations += recovery_failures
            preserved: str | None = None
            if violations:
                # Freeze the evidence first — crash(), not close(), so
                # no flush or checkpoint rewrites the state dir — then
                # record the offline-replay verdict next to the
                # violations.
                try:
                    daemon_box["d"].crash()
                except Exception:
                    pass
                violations += _offline_replay_notes(state_dir, batch)
                if self.preserve_evidence:
                    # Move the evidence aside under a unique name: the
                    # trial dir is keyed by seed, and a later trial of
                    # the same seed must start on a clean slate, not
                    # recover this trial's leftovers.
                    target = state_dir.with_name(
                        f"{state_dir.name}-violation-{len(self.preserved)}"
                    )
                    try:
                        os.replace(state_dir, target)
                        preserved = str(target)
                    except OSError:
                        preserved = str(state_dir)
                    self.preserved.append(preserved)
            if preserved is None:
                try:
                    daemon_box["d"].purge_sessions()
                    daemon_box["d"].close()
                except Exception:
                    pass
                shutil.rmtree(state_dir, ignore_errors=True)

        return ChaosTrialResult(
            seed=seed,
            backend="inproc",
            ok=not violations,
            violations=violations,
            events=len(trace.events),
            sessions=1,
            faults_injected=len(plan.injected),
            kills=kills,
            upgrades=upgrades[0],
            refusals_observed=observed + storm_observed[0],
            refusals_accounted=accounted,
            recovery_times=recovery_times,
            disk_faults=fs.stats() if fs is not None else None,
            elapsed=time.monotonic() - t_start,
            state_dir=preserved,
        )

    def _run_trial_fleet(self, seed: int) -> ChaosTrialResult:
        t_start = time.monotonic()
        rng = random.Random(seed)
        traces = [
            generate_trace((seed * 7919 + i) & 0x7FFFFFFF, **self.trace_kwargs)
            for i in range(self.fleet_sessions)
        ]
        batches = [summarize_report(run_batch_path(t)) for t in traces]
        state_dir = self._root / f"fleet-{seed:08d}"
        serve_args: list[str] = []
        if self.fleet_fault_fs_spec:
            serve_args += ["--fault-fs", self.fleet_fault_fs_spec]
        plan = self.build_plan(seed)
        recovery_log: list[float] = []
        accounted_carry = [0]
        kills = [0]

        sup = FleetSupervisor(
            self.fleet_workers,
            state_dir,
            checkpoint_every=self.checkpoint_every,
            heartbeat_timeout=3600.0,
            linger=3600.0,
            serve_args=serve_args,
        )
        sup.start()
        kill_lock = threading.Lock()

        def on_kill() -> None:
            # SIGKILL a random worker; the supervisor monitor restarts
            # it on the same shard dir.  Snapshot its ledger first
            # (best effort — a refusal may land between snapshot and
            # kill, which is why the fleet ledger check is advisory
            # when kills occurred).  The lock serializes kill faults
            # firing from different proxy connection threads: the rng
            # and the carry are not thread-safe, and overlapping kills
            # of the same worker would double-snapshot its ledger.
            # Returning None keeps the proxy pointed at the router,
            # whose address never changes.
            with kill_lock:
                idx = rng.randrange(self.fleet_workers)
                try:
                    accounted_carry[0] += _accounted_refusals(
                        fetch_stats(sup.worker_addresses()[idx])
                    )
                except Exception:
                    pass
                sup.kill_worker(idx)
                kills[0] += 1
                self.kills += 1
                return None

        violations: list[str] = []
        observed_total = [0]
        received_total = [0]
        total_events = sum(len(t.events) for t in traces)
        accounted = 0
        fsck_report: dict[str, Any] | None = None
        merged: dict[str, Any] | None = None
        # As in the inproc trial: zero rng draws when disabled.
        want_upgrade = self.upgrade_rate > 0 and rng.random() < self.upgrade_rate
        upgrade_delay = rng.uniform(0.1, 0.6) if self.upgrade_rate > 0 else 0.0
        upgrades = [0]
        upgrade_violations: list[str] = []
        try:
            with FaultProxy(sup.address, plan, on_kill=on_kill) as proxy:
                session_violations: list[str] = []
                lock = threading.Lock()

                def ship_one(i: int) -> None:
                    try:
                        rep, obs, recv = self._ship(
                            traces[i],
                            proxy.address,
                            max_attempts=400,
                            retry_delay=0.05,
                            recovery_log=recovery_log,
                        )
                        diffs = self.monitor.check_reports(
                            batches[i], summarize_report(rep)
                        )
                        with lock:
                            observed_total[0] += obs
                            received_total[0] += recv
                            session_violations.extend(
                                f"session {i}: {d}" for d in diffs
                            )
                    except Exception as exc:
                        with lock:
                            session_violations.append(
                                f"session {i} did not converge: {exc!r}"
                            )

                threads = [
                    threading.Thread(target=ship_one, args=(i,), daemon=True)
                    for i in range(self.fleet_sessions)
                ]
                for th in threads:
                    th.start()
                upgrade_thread: threading.Thread | None = None
                if want_upgrade:

                    def do_upgrade() -> None:
                        # A real rolling upgrade mid-storm.  Each
                        # worker's ledger dies with its process, so
                        # snapshot every worker's accounted refusals
                        # first (same carry as the kill path).  The
                        # kill lock keeps kill faults from SIGKILLing
                        # a worker the supervisor is mid-upgrade on.
                        time.sleep(upgrade_delay)
                        with kill_lock:
                            for addr in sup.worker_addresses():
                                try:
                                    accounted_carry[0] += _accounted_refusals(
                                        fetch_stats(addr)
                                    )
                                except Exception:
                                    pass
                            try:
                                results = sup.rolling_upgrade(drain_timeout=10.0)
                            except Exception as exc:
                                upgrade_violations.append(
                                    f"rolling upgrade failed: {exc!r}"
                                )
                            else:
                                upgrades[0] += len(results)

                    upgrade_thread = threading.Thread(target=do_upgrade, daemon=True)
                    upgrade_thread.start()
                for th in threads:
                    th.join(timeout=120.0)
                    if th.is_alive():
                        session_violations.append("fleet session still running")
                if upgrade_thread is not None:
                    upgrade_thread.join(timeout=120.0)
                    if upgrade_thread.is_alive():
                        upgrade_violations.append("rolling upgrade still running")
                violations += session_violations
                violations += upgrade_violations
                # A kill near the end of shipping may leave the worker
                # mid-restart; the merge must see the whole fleet, so
                # wait (bounded) for every worker to answer STATS.
                not_back = self._await_workers(sup, self.monitor.recovery_bound)
                if not_back:
                    violations += [
                        f"worker not back within "
                        f"{self.monitor.recovery_bound:.1f}s of kill: {p}"
                        for p in not_back
                    ]
                merged = sup.coordinator().collect()

            for addr in sup.worker_addresses():
                try:
                    accounted += _accounted_refusals(fetch_stats(addr))
                except Exception:
                    pass
            accounted += accounted_carry[0]
            # Drain refusals (RETRY_AFTER for a draining shard) are
            # accounted on the router, not any worker.
            try:
                accounted += int(fetch_stats(sup.address).get("drain_refusals", 0))
            except Exception:
                pass

            violations += self.monitor.check_counts(total_events, received_total[0])
            # The coordinator merges *lingering* sessions.  A rolling
            # upgrade evicts finished-and-lingering sessions exactly
            # like linger expiry does (their reports were delivered at
            # FIN — the per-session report check above already proved
            # them), so the cross-session merge is only checkable when
            # no upgrade ran.
            if upgrades[0] == 0:
                violations += self._check_merged(batches, merged)
            # Refusal ledger is advisory once workers were SIGKILLed or
            # upgraded: refusals landing between the pre-kill/pre-drain
            # snapshot and the process exit are legitimately lost with
            # the process.
            if kills[0] == 0 and upgrades[0] == 0:
                violations += self.monitor.check_ledger(observed_total[0], accounted)
            violations += self.monitor.check_recovery(recovery_log)

            sup.stop(graceful=True)
            fsck_report = fsck_state_dir(state_dir)
            violations += self.monitor.check_fsck(fsck_report)
        except Exception as exc:
            violations.append(f"trial aborted: {exc!r}")
        finally:
            try:
                sup.stop(graceful=False)
            except Exception:
                pass
            preserved: str | None = None
            if violations and self.preserve_evidence:
                preserved = str(state_dir)
                self.preserved.append(preserved)
            else:
                shutil.rmtree(state_dir, ignore_errors=True)

        return ChaosTrialResult(
            seed=seed,
            backend="fleet",
            ok=not violations,
            violations=violations,
            events=total_events,
            sessions=self.fleet_sessions,
            faults_injected=len(plan.injected),
            kills=kills[0],
            upgrades=upgrades[0],
            refusals_observed=observed_total[0],
            refusals_accounted=accounted,
            recovery_times=recovery_log,
            disk_faults=None,
            elapsed=time.monotonic() - t_start,
            state_dir=preserved,
        )

    @staticmethod
    def _await_workers(sup: FleetSupervisor, timeout: float) -> list[str]:
        """Poll until every worker answers STATS (addresses re-read
        each round — a restarted worker comes back on a new port).
        Returns the unreachable ones after ``timeout``."""
        deadline = time.monotonic() + timeout
        problems: list[str] = []
        while True:
            problems = []
            for addr in sup.worker_addresses():
                try:
                    fetch_stats(addr)
                except Exception as exc:
                    problems.append(f"{addr}: {exc}")
            if not problems or time.monotonic() >= deadline:
                return problems
            time.sleep(0.1)

    @staticmethod
    def _check_merged(
        batches: list[dict[str, Any]], merged: dict[str, Any] | None
    ) -> list[str]:
        """The fleet coordinator's merged report must equal the union
        of the per-session batch reports.  The coordinator remaps
        instance ids densely, so the comparison is id-free: the
        multiset of ``(abbreviation, evidence)`` pairs plus the total
        instance count."""
        if merged is None:
            return ["fleet merge produced no result"]
        if not merged.get("complete", False):
            return [
                "fleet merge incomplete: "
                + "; ".join(str(e) for e in merged.get("errors", []))
            ]
        report = merged.get("report")
        if report is None:
            return ["fleet merge returned no report"]
        want_instances = sum(b["instances_analyzed"] for b in batches)
        out: list[str] = []
        if report.get("instances_analyzed") != want_instances:
            out.append(
                f"merged instances_analyzed={report.get('instances_analyzed')} "
                f"!= union batch {want_instances}"
            )

        def flags_multiset(pairs):
            return sorted(
                (abbr, json.dumps(ev, sort_keys=True)) for abbr, ev in pairs
            )

        want = flags_multiset(
            (key[1], ev) for b in batches for key, ev in b["flagged"].items()
        )
        got = flags_multiset(
            (uc["abbreviation"], uc["evidence"]) for uc in report["use_cases"]
        )
        if want != got:
            out.append(
                f"merged flag multiset differs from union batch: "
                f"merged={got} batch={want}"
            )
        return out

    # -- the soak ---------------------------------------------------------

    def run(
        self,
        *,
        trials: int | None = None,
        duration: float | None = None,
        base_seed: int = 0,
        ledger_path: str | Path | None = None,
        progress: Callable[[ChaosTrialResult], None] | None = None,
        stop_on_violation: bool = False,
    ) -> dict[str, Any]:
        """Run seeded trials until the count or the time box runs out
        (at least one trial always runs).  Each trial appends one JSON
        line to ``ledger_path`` (if given); the returned summary is
        the soak-level ledger."""
        if trials is None and duration is None:
            trials = 100
        t0 = time.monotonic()
        ledger = None
        if ledger_path is not None:
            ledger = open(ledger_path, "a", encoding="utf-8")
        results: list[ChaosTrialResult] = []
        bad_seeds: list[int] = []
        try:
            i = 0
            while True:
                if trials is not None and i >= trials:
                    break
                if (
                    duration is not None
                    and i > 0
                    and time.monotonic() - t0 >= duration
                ):
                    break
                result = self.run_trial(base_seed + i)
                results.append(result)
                if not result.ok:
                    bad_seeds.append(result.seed)
                if ledger is not None:
                    ledger.write(json.dumps(result.to_dict()) + "\n")
                    ledger.flush()
                if progress is not None:
                    progress(result)
                if not result.ok and stop_on_violation:
                    break
                i += 1
        finally:
            if ledger is not None:
                ledger.close()
        elapsed = time.monotonic() - t0
        return {
            "backend": self.backend,
            "trials": len(results),
            "violations": sum(len(r.violations) for r in results),
            "seeds_with_violations": bad_seeds,
            "events": sum(r.events for r in results),
            "faults_injected": sum(r.faults_injected for r in results),
            "kills": sum(r.kills for r in results),
            "upgrades": sum(r.upgrades for r in results),
            "refusals_observed": sum(r.refusals_observed for r in results),
            "refusals_accounted": sum(r.refusals_accounted for r in results),
            "max_recovery": round(
                max((t for r in results for t in r.recovery_times), default=0.0), 4
            ),
            "elapsed": round(elapsed, 3),
            "ok": not bad_seeds,
        }

    def close(self) -> None:
        shutil.rmtree(self._root, ignore_errors=True)

    def __enter__(self) -> "ChaosSoak":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = [
    "DISK_SEED_SALT",
    "STORM_SEED_SALT",
    "UPGRADE_SEED_SALT",
    "ChaosSoak",
    "ChaosTrialResult",
    "InvariantMonitor",
    "regress_state_dir_to_v1",
]
